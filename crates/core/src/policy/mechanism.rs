//! Choosing *which* power-control mechanism to apply (§4.1): when CPU
//! throttling or diurnal load reduces the IO request rate, is it cheaper to
//! reshape IO on every device, or to consolidate onto fewer devices and put
//! the rest in standby?
//!
//! The paper predicts redirection+standby wins at low demand (devices can
//! stay asleep longer) and capping+shaping wins near saturation (every
//! device is needed anyway). [`choose_mechanism`] quantifies the crossover
//! from a measured power-throughput model.

use std::fmt;

use powadapt_model::{pareto_frontier, PowerThroughputModel};

/// The §4 mechanism families compared here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Keep every device active; select the cheapest configuration (power
    /// cap + IO shape) that serves its share of the demand.
    CapAndShape,
    /// Serve the demand from as few devices as possible (each at its peak
    /// efficiency) and put the rest in standby.
    RedirectAndStandby,
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mechanism::CapAndShape => write!(f, "cap+shape"),
            Mechanism::RedirectAndStandby => write!(f, "redirect+standby"),
        }
    }
}

/// The outcome of the comparison at one demand level.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismChoice {
    /// The cheaper mechanism.
    pub preferred: Mechanism,
    /// Estimated fleet power under cap+shape, in watts (`None` if the
    /// demand cannot be served that way).
    pub cap_shape_w: Option<f64>,
    /// Estimated fleet power under redirect+standby, in watts (`None` if
    /// the demand exceeds the fleet's capacity).
    pub redirect_w: Option<f64>,
    /// Active devices under the redirect plan.
    pub redirect_active: usize,
}

impl MechanismChoice {
    /// Power saved by the preferred mechanism over the other, in watts
    /// (0 when only one is feasible).
    pub fn advantage_w(&self) -> f64 {
        match (self.cap_shape_w, self.redirect_w) {
            (Some(a), Some(b)) => (a - b).abs(),
            _ => 0.0,
        }
    }
}

/// Compares the two mechanism families for a fleet of `n` identical devices
/// described by `model`, serving `demand_bps` total, where a sleeping
/// device draws `standby_w`.
///
/// Both estimates pick points from the model's Pareto frontier:
///
/// - **cap+shape**: all `n` devices active, each at the cheapest frontier
///   point serving `demand/n`;
/// - **redirect+standby**: the smallest `k` whose per-device share fits the
///   frontier, each active device at the cheapest point serving
///   `demand/k`, plus `n − k` devices at `standby_w`.
///
/// # Panics
///
/// Panics if `n` is zero or inputs are not finite/non-negative.
pub fn choose_mechanism(
    model: &PowerThroughputModel,
    n: usize,
    demand_bps: f64,
    standby_w: f64,
) -> MechanismChoice {
    assert!(n > 0, "fleet must be non-empty");
    assert!(
        demand_bps.is_finite() && demand_bps >= 0.0,
        "bad demand {demand_bps}"
    );
    assert!(standby_w >= 0.0, "bad standby power {standby_w}");

    let frontier = pareto_frontier(model.points());
    let cheapest_serving = |share_bps: f64| -> Option<f64> {
        frontier
            .iter()
            .find(|p| p.throughput_bps() >= share_bps)
            .map(powadapt_model::ConfigPoint::power_w)
    };

    let cap_shape_w = cheapest_serving(demand_bps / n as f64).map(|p| p * n as f64);

    let mut redirect_w = None;
    let mut redirect_active = n;
    for k in 1..=n {
        if let Some(p) = cheapest_serving(demand_bps / k as f64) {
            redirect_w = Some(p * k as f64 + standby_w * (n - k) as f64);
            redirect_active = k;
            break;
        }
    }

    let preferred = match (cap_shape_w, redirect_w) {
        (Some(a), Some(b)) if b < a => Mechanism::RedirectAndStandby,
        (Some(_), _) => Mechanism::CapAndShape,
        (None, Some(_)) => Mechanism::RedirectAndStandby,
        (None, None) => Mechanism::CapAndShape, // nothing fits; report the default
    };
    MechanismChoice {
        preferred,
        cap_shape_w,
        redirect_w,
        redirect_active,
    }
}

/// The demand level (as a fraction of fleet peak throughput) below which
/// redirect+standby becomes cheaper, found by bisection over
/// [`choose_mechanism`]. Returns 0 if shaping always wins and 1 if
/// redirection always wins.
pub fn redirect_crossover_fraction(model: &PowerThroughputModel, n: usize, standby_w: f64) -> f64 {
    let peak = model.max_throughput_bps() * n as f64;
    let prefers_redirect = |frac: f64| {
        choose_mechanism(model, n, peak * frac, standby_w).preferred
            == Mechanism::RedirectAndStandby
    };
    if !prefers_redirect(0.01) {
        return 0.0;
    }
    if prefers_redirect(0.99) {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.01, 0.99);
    for _ in 0..30 {
        let mid = (lo + hi) / 2.0;
        if prefers_redirect(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{PowerStateId, KIB};
    use powadapt_io::Workload;
    use powadapt_model::ConfigPoint;

    /// A model with a realistic shape: a high idle floor and diminishing
    /// power returns at low throughput (which is what makes consolidation
    /// pay off).
    fn model() -> PowerThroughputModel {
        let pts = vec![
            pt(1, 5.5, 0.2e9),
            pt(4, 6.5, 1.0e9),
            pt(16, 8.0, 2.2e9),
            pt(64, 10.0, 3.0e9),
        ];
        PowerThroughputModel::from_points("D", pts).unwrap()
    }

    fn pt(depth: usize, power: f64, thr: f64) -> ConfigPoint {
        ConfigPoint::new(
            "D",
            Workload::RandWrite,
            PowerStateId(0),
            64 * KIB,
            depth,
            power,
            thr,
        )
    }

    #[test]
    fn low_demand_prefers_redirection() {
        // 4 devices, demand far below one device's capacity.
        let c = choose_mechanism(&model(), 4, 0.5e9, 1.0);
        assert_eq!(c.preferred, Mechanism::RedirectAndStandby);
        assert_eq!(c.redirect_active, 1);
        // cap+shape: 4 × 5.5 = 22 W; redirect: 6.5 + 3 × 1 = 9.5 W.
        assert!((c.cap_shape_w.unwrap() - 22.0).abs() < 1e-9);
        assert!((c.redirect_w.unwrap() - 9.5).abs() < 1e-9);
        assert!(c.advantage_w() > 10.0);
    }

    #[test]
    fn high_demand_prefers_shaping() {
        // Demand near fleet peak: every device is needed, and shaping lets
        // each run a cheaper point than the forced-peak redirect plan.
        let c = choose_mechanism(&model(), 4, 10.0e9, 1.0);
        assert_eq!(c.preferred, Mechanism::CapAndShape);
        assert_eq!(c.redirect_active, 4);
        // Both serve 2.5 GB/s per device at the 10 W point — equal power,
        // shaping wins the tie (no standby transitions to risk).
        assert_eq!(c.cap_shape_w, c.redirect_w);
    }

    #[test]
    fn infeasible_demand_reports_none() {
        let c = choose_mechanism(&model(), 2, 100.0e9, 1.0);
        assert!(c.cap_shape_w.is_none());
        assert!(c.redirect_w.is_none());
        assert_eq!(c.advantage_w(), 0.0);
    }

    #[test]
    fn crossover_is_interior_for_realistic_models() {
        let f = redirect_crossover_fraction(&model(), 8, 1.0);
        assert!(
            (0.05..0.95).contains(&f),
            "crossover fraction {f} should be interior"
        );
        // Below the crossover, redirection is preferred.
        let peak = model().max_throughput_bps() * 8.0;
        let below = choose_mechanism(&model(), 8, peak * (f - 0.04), 1.0);
        assert_eq!(below.preferred, Mechanism::RedirectAndStandby);
    }

    #[test]
    fn zero_demand_parks_everything_but_one() {
        let c = choose_mechanism(&model(), 4, 0.0, 1.0);
        assert_eq!(c.redirect_active, 1);
        assert_eq!(c.preferred, Mechanism::RedirectAndStandby);
    }

    #[test]
    fn display_names() {
        assert_eq!(Mechanism::CapAndShape.to_string(), "cap+shape");
        assert_eq!(
            Mechanism::RedirectAndStandby.to_string(),
            "redirect+standby"
        );
    }
}
