//! Routers that plug the §4 policies into the fleet simulator
//! ([`powadapt_io::run_fleet`]): measured — not estimated — policy
//! evaluation.

use powadapt_device::{IoKind, PowerStateId, StandbyState};
use powadapt_io::{Arrival, DeviceCommand, DeviceStatus, Route, Router};
use powadapt_sim::SimTime;

use crate::policy::redirection::{RedirectionConfig, RedirectionPolicy};

/// Least-loaded pick among `indices`, rotating from `cursor` through ties.
fn pick_least_loaded(
    fleet: &[DeviceStatus],
    indices: impl Iterator<Item = usize> + Clone,
    cursor: &mut usize,
) -> usize {
    let candidates: Vec<usize> = indices.collect();
    assert!(!candidates.is_empty(), "router has no candidate devices");
    let min = candidates
        .iter()
        .map(|&i| fleet[i].inflight)
        .min()
        // powadapt-lint: allow(D5, reason = "guarded by the assert above: candidates is non-empty")
        .expect("non-empty");
    let n = candidates.len();
    let mut pick = candidates[*cursor % n];
    for off in 0..n {
        let i = candidates[(*cursor + off) % n];
        if fleet[i].inflight == min {
            pick = i;
            *cursor = (*cursor + off + 1) % n;
            break;
        }
    }
    pick
}

/// SRCMap-style consolidation as a live router: periodically re-estimates
/// demand from observed arrivals, steps the [`RedirectionPolicy`], and
/// issues standby/wake commands so only the active prefix of the fleet
/// serves IO.
///
/// Devices that do not support standby are left active but unused when
/// outside the active prefix.
#[derive(Debug)]
pub struct ConsolidatingRouter {
    policy: RedirectionPolicy,
    bytes_since_control: u64,
    last_control: SimTime,
    cursor: usize,
}

impl ConsolidatingRouter {
    /// Creates the router for `total` devices.
    ///
    /// # Errors
    ///
    /// Returns the policy configuration problem, if any.
    pub fn new(total: usize, cfg: RedirectionConfig) -> Result<Self, String> {
        Ok(ConsolidatingRouter {
            policy: RedirectionPolicy::new(total, cfg)?,
            bytes_since_control: 0,
            last_control: SimTime::ZERO,
            cursor: 0,
        })
    }

    /// Devices currently designated active.
    pub fn active(&self) -> usize {
        self.policy.active()
    }
}

impl Router for ConsolidatingRouter {
    fn route(&mut self, arrival: &Arrival, fleet: &[DeviceStatus]) -> Route {
        self.bytes_since_control += arrival.len;
        let active = self.policy.active().min(fleet.len()).max(1);
        Route::Device(pick_least_loaded(fleet, 0..active, &mut self.cursor))
    }

    fn control(&mut self, now: SimTime, fleet: &[DeviceStatus]) -> Vec<DeviceCommand> {
        let window = now.saturating_duration_since(self.last_control);
        self.last_control = now;
        if window.is_zero() {
            return Vec::new();
        }
        let demand_bps = self.bytes_since_control as f64 / window.as_secs_f64();
        self.bytes_since_control = 0;
        let decision = self.policy.step(demand_bps);

        let mut cmds = Vec::new();
        for (i, d) in fleet.iter().enumerate() {
            if i < decision.active {
                if d.standby != StandbyState::Active {
                    cmds.push(DeviceCommand::Wake { device: i });
                }
            } else if d.supports_standby && d.standby == StandbyState::Active && d.inflight == 0 {
                cmds.push(DeviceCommand::Standby { device: i });
            }
        }
        cmds
    }
}

/// The §4 "leveraging asymmetric IO" policy as a live router: writes go to
/// a small uncapped prefix of the fleet, reads to the capped remainder.
#[derive(Debug)]
pub struct WriteSegregationRouter {
    write_devices: usize,
    read_cap: PowerStateId,
    configured: bool,
    w_cursor: usize,
    r_cursor: usize,
}

impl WriteSegregationRouter {
    /// Creates the router: devices `0..write_devices` take writes uncapped;
    /// the rest serve reads in power state `read_cap`.
    ///
    /// # Panics
    ///
    /// Panics if `write_devices` is zero (writes must not be capped; give
    /// them at least one device).
    pub fn new(write_devices: usize, read_cap: PowerStateId) -> Self {
        assert!(write_devices > 0, "need at least one write device");
        WriteSegregationRouter {
            write_devices,
            read_cap,
            configured: false,
            w_cursor: 0,
            r_cursor: 0,
        }
    }
}

impl Router for WriteSegregationRouter {
    fn route(&mut self, arrival: &Arrival, fleet: &[DeviceStatus]) -> Route {
        let w = self.write_devices.min(fleet.len());
        Route::Device(match arrival.kind {
            IoKind::Write => pick_least_loaded(fleet, 0..w, &mut self.w_cursor),
            IoKind::Read => {
                if w >= fleet.len() {
                    pick_least_loaded(fleet, 0..fleet.len(), &mut self.r_cursor)
                } else {
                    pick_least_loaded(fleet, w..fleet.len(), &mut self.r_cursor)
                }
            }
        })
    }

    fn control(&mut self, _now: SimTime, fleet: &[DeviceStatus]) -> Vec<DeviceCommand> {
        if self.configured {
            return Vec::new();
        }
        self.configured = true;
        (self.write_devices.min(fleet.len())..fleet.len())
            .map(|device| DeviceCommand::SetPowerState {
                device,
                ps: self.read_cap,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{catalog, StorageDevice, GIB, KIB};
    use powadapt_io::{run_fleet, AccessPattern, Arrivals, LeastLoadedRouter, OpenLoopSpec};
    use powadapt_sim::SimDuration;

    fn evo_fleet(n: usize) -> Vec<Box<dyn StorageDevice>> {
        (0..n)
            .map(|i| Box::new(catalog::evo_860(300 + i as u64)) as Box<dyn StorageDevice>)
            .collect()
    }

    fn light_stream(read_fraction: f64) -> OpenLoopSpec {
        OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: 800.0 },
            block_size: 64 * KIB,
            read_fraction,
            pattern: AccessPattern::Random,
            region: (0, 4 * GIB),
            duration: SimDuration::from_millis(1500),
            seed: 77,
            zipf_theta: None,
        }
    }

    fn redirection_cfg() -> RedirectionConfig {
        RedirectionConfig {
            per_device_capacity_bps: 0.4e9,
            active_power_w: 2.0,
            standby_power_w: 0.17,
            wake_latency: SimDuration::from_millis(400),
            grow_threshold: 0.85,
            shrink_threshold: 0.6,
        }
    }

    #[test]
    fn consolidation_saves_measured_energy_at_low_load() {
        let spec = light_stream(0.7);
        let interval = SimDuration::from_millis(100);

        let baseline = {
            let mut devices = evo_fleet(4);
            let mut router = LeastLoadedRouter::default();
            run_fleet(&mut devices, &mut router, &spec, interval).expect("baseline runs")
        };
        let consolidated = {
            let mut devices = evo_fleet(4);
            let mut router = ConsolidatingRouter::new(4, redirection_cfg()).expect("valid");
            run_fleet(&mut devices, &mut router, &spec, interval).expect("policy runs")
        };

        assert_eq!(baseline.total.ios(), consolidated.total.ios(), "same work");
        assert!(
            consolidated.energy_j < baseline.energy_j * 0.9,
            "consolidation should save >10% energy: {:.2} J vs {:.2} J",
            consolidated.energy_j,
            baseline.energy_j
        );
    }

    #[test]
    fn consolidation_keeps_latency_bounded() {
        let spec = light_stream(1.0);
        let mut devices = evo_fleet(4);
        let mut router = ConsolidatingRouter::new(4, redirection_cfg()).expect("valid");
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(100),
        )
        .expect("policy runs");
        // Requests routed to the active subset never hit a sleeping device,
        // so only p99.9-class wake events may appear. Median must stay low.
        let lat = r.total.latency_summary().expect("has latencies");
        assert!(
            lat.median() < 3_000.0,
            "median latency {} us should be unaffected",
            lat.median()
        );
    }

    #[test]
    fn consolidating_router_actually_sleeps_devices() {
        let spec = light_stream(0.5);
        let mut devices = evo_fleet(4);
        let mut router = ConsolidatingRouter::new(4, redirection_cfg()).expect("valid");
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(100),
        )
        .expect("policy runs");
        // The tail devices served almost nothing.
        let tail: u64 = r.per_device[2..].iter().map(|d| d.routed).sum();
        assert!(
            tail * 10 < r.total.ios(),
            "tail devices should be nearly unused: {tail} of {}",
            r.total.ios()
        );
        assert!(router.active() <= 3);
    }

    #[test]
    fn write_segregation_separates_traffic_and_caps_readers() {
        let mut devices: Vec<Box<dyn StorageDevice>> = (0..4)
            .map(|i| Box::new(catalog::ssd2_d7_p5510(400 + i)) as Box<dyn StorageDevice>)
            .collect();
        let mut router = WriteSegregationRouter::new(1, PowerStateId(2));
        let spec = OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: 3_000.0 },
            block_size: 256 * KIB,
            read_fraction: 0.75,
            pattern: AccessPattern::Random,
            region: (0, 8 * GIB),
            duration: SimDuration::from_millis(800),
            seed: 5,
            zipf_theta: None,
        };
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(50),
        )
        .expect("policy runs");

        // Device 0 took all the writes; devices 1..4 only reads.
        assert!(r.per_device[0].routed > 0);
        for d in &r.per_device[1..] {
            assert!(d.routed > 0, "readers serve traffic");
        }
        // Readers were capped.
        for dev in &devices[1..] {
            assert_eq!(dev.power_state(), PowerStateId(2));
        }
        assert_eq!(devices[0].power_state(), PowerStateId(0));
    }

    #[test]
    fn write_segregation_preserves_write_qos_under_caps() {
        // The §4 claim: when the fleet must be power-capped, capping
        // *everything* tanks write QoS (caps crush writes); segregating the
        // writes onto a few uncapped devices and capping only the
        // read-serving remainder keeps write latency intact at a similar
        // fleet power.
        // Write-heavy enough that each uniformly capped device takes more
        // write traffic (1.75 GB/s) than its capped drain rate (~1.5 GB/s):
        // buffers fill and write latency collapses. Segregated, three
        // uncapped writers take 2.3 GB/s each — well within their 3.5 GB/s.
        let spec = OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: 4_096.0 },
            block_size: 2048 * KIB,
            read_fraction: 0.18,
            pattern: AccessPattern::Random,
            region: (0, 8 * GIB),
            duration: SimDuration::from_millis(1200),
            seed: 6,
            zipf_theta: None,
        };
        let interval = SimDuration::from_millis(50);
        let fleet = || -> Vec<Box<dyn StorageDevice>> {
            (0..4)
                .map(|i| Box::new(catalog::ssd2_d7_p5510(500 + i)) as Box<dyn StorageDevice>)
                .collect()
        };

        // Baseline: everything capped to ps2, traffic mixed everywhere.
        #[derive(Debug, Default)]
        struct AllCapped(LeastLoadedRouter, bool);
        impl Router for AllCapped {
            fn route(&mut self, a: &Arrival, f: &[DeviceStatus]) -> Route {
                self.0.route(a, f)
            }
            fn control(&mut self, _n: SimTime, f: &[DeviceStatus]) -> Vec<DeviceCommand> {
                if self.1 {
                    return Vec::new();
                }
                self.1 = true;
                (0..f.len())
                    .map(|device| DeviceCommand::SetPowerState {
                        device,
                        ps: PowerStateId(2),
                    })
                    .collect()
            }
        }

        let uniform = {
            let mut devices = fleet();
            let mut router = AllCapped::default();
            run_fleet(&mut devices, &mut router, &spec, interval).expect("runs")
        };
        let segregated = {
            let mut devices = fleet();
            let mut router = WriteSegregationRouter::new(3, PowerStateId(2));
            run_fleet(&mut devices, &mut router, &spec, interval).expect("runs")
        };

        assert_eq!(
            uniform.total.ios(),
            segregated.total.ios(),
            "same offered work"
        );
        let u_p99 = uniform.writes.p99_latency_us();
        let s_p99 = segregated.writes.p99_latency_us();
        assert!(
            s_p99 < u_p99 * 0.6,
            "segregated write p99 {s_p99:.0} us should beat all-capped {u_p99:.0} us"
        );
        // Fleet power stays in the same ballpark — the win is QoS, not
        // spending more power.
        let (u_w, s_w) = (uniform.avg_power_w(), segregated.avg_power_w());
        assert!(
            s_w < u_w * 1.25,
            "segregated power {s_w:.1} W vs all-capped {u_w:.1} W"
        );
        // Reads are not hurt by capping the read devices.
        let u_read = uniform.reads.avg_latency_us();
        let s_read = segregated.reads.avg_latency_us();
        assert!(
            s_read < u_read * 1.3,
            "segregated read avg {s_read:.0} us vs {u_read:.0} us"
        );
    }

    #[test]
    #[should_panic(expected = "at least one write device")]
    fn segregation_requires_a_write_device() {
        let _ = WriteSegregationRouter::new(0, PowerStateId(1));
    }
}
