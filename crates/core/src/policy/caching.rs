//! Power-aware caching (§4, cf. EXCES): an LRU cache in front of the fleet
//! absorbs reads of hot blocks so devices in standby are not woken, masking
//! read latency and extending standby residency.

use std::collections::{BTreeMap, VecDeque};

use powadapt_device::IoKind;
use powadapt_io::{Arrival, DeviceCommand, DeviceStatus, Route, Router};
use powadapt_sim::{SimDuration, SimTime};

/// A block-granular LRU set (lazy eviction: the queue holds tick-stamped
/// entries, and an entry is authoritative only if its tick matches the
/// block's latest touch).
#[derive(Debug)]
struct LruBlocks {
    capacity: usize,
    order: VecDeque<(u64, u64)>,
    /// Block -> tick of its most recent touch.
    live: BTreeMap<u64, u64>,
    tick: u64,
}

impl LruBlocks {
    fn new(capacity: usize) -> Self {
        LruBlocks {
            capacity,
            order: VecDeque::new(),
            live: BTreeMap::new(),
            tick: 0,
        }
    }

    fn contains(&self, block: u64) -> bool {
        self.live.contains_key(&block)
    }

    fn touch(&mut self, block: u64) {
        self.tick += 1;
        self.live.insert(block, self.tick);
        self.order.push_back((block, self.tick));
        while self.live.len() > self.capacity {
            match self.order.pop_front() {
                Some((old, t)) => {
                    // Stale queue entries (the block was touched again
                    // later) are skipped; the fresh entry is further back.
                    if self.live.get(&old) == Some(&t) {
                        self.live.remove(&old);
                    }
                }
                None => break,
            }
        }
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

/// An EXCES-style caching layer wrapped around any inner router.
///
/// Reads that hit the cache are absorbed ([`Route::Absorbed`]) with a DRAM
/// service latency; misses (and all writes, which are written through and
/// cached) go to the inner router. The cache is block-granular over the
/// workload's logical space.
///
/// # Examples
///
/// ```
/// use powadapt_core::ExcesCachingRouter;
/// use powadapt_io::LeastLoadedRouter;
/// use powadapt_sim::SimDuration;
///
/// let router = ExcesCachingRouter::new(
///     LeastLoadedRouter::default(),
///     4096,          // block size
///     10_000,        // cached blocks (~40 MiB)
///     SimDuration::from_micros(5),
/// );
/// assert_eq!(router.hits(), 0);
/// ```
#[derive(Debug)]
pub struct ExcesCachingRouter<R: Router> {
    inner: R,
    block_size: u64,
    cache: LruBlocks,
    hit_latency: SimDuration,
    hits: u64,
    misses: u64,
}

impl<R: Router> ExcesCachingRouter<R> {
    /// Creates the caching layer.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` or `capacity_blocks` is zero.
    pub fn new(
        inner: R,
        block_size: u64,
        capacity_blocks: usize,
        hit_latency: SimDuration,
    ) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        assert!(capacity_blocks > 0, "cache must hold at least one block");
        ExcesCachingRouter {
            inner,
            block_size,
            cache: LruBlocks::new(capacity_blocks),
            hit_latency,
            hits: 0,
            misses: 0,
        }
    }

    /// Read hits absorbed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Read misses forwarded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over reads seen so far (0 when no reads yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Blocks currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.cache.len()
    }

    /// The wrapped router.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    fn blocks_of(&self, a: &Arrival) -> (u64, u64) {
        let first = a.offset / self.block_size;
        let last = (a.offset + a.len - 1) / self.block_size;
        (first, last)
    }
}

impl<R: Router> Router for ExcesCachingRouter<R> {
    fn route(&mut self, arrival: &Arrival, fleet: &[DeviceStatus]) -> Route {
        let (first, last) = self.blocks_of(arrival);
        match arrival.kind {
            IoKind::Read => {
                let all_cached = (first..=last).all(|b| self.cache.contains(b));
                if all_cached {
                    for b in first..=last {
                        self.cache.touch(b);
                    }
                    self.hits += 1;
                    return Route::Absorbed {
                        latency: self.hit_latency,
                    };
                }
                self.misses += 1;
                // Fill on miss.
                for b in first..=last {
                    self.cache.touch(b);
                }
                self.inner.route(arrival, fleet)
            }
            IoKind::Write => {
                // Write-through: update the cache, forward to the device.
                for b in first..=last {
                    self.cache.touch(b);
                }
                self.inner.route(arrival, fleet)
            }
        }
    }

    fn control(&mut self, now: SimTime, fleet: &[DeviceStatus]) -> Vec<DeviceCommand> {
        self.inner.control(now, fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{catalog, StandbyState, StorageDevice, KIB};
    use powadapt_io::{
        run_fleet_arrivals, AccessPattern, ArrivalGen, Arrivals, LeastLoadedRouter, OpenLoopSpec,
    };

    fn read_at(ms: u64, offset: u64) -> Arrival {
        Arrival {
            at: powadapt_sim::SimTime::from_millis(ms),
            kind: IoKind::Read,
            offset,
            len: 4096,
        }
    }

    #[test]
    fn repeated_reads_hit_after_the_first_miss() {
        let mut r = ExcesCachingRouter::new(
            LeastLoadedRouter::default(),
            4096,
            100,
            SimDuration::from_micros(5),
        );
        let fleet = vec![DeviceStatus {
            label: "D".into(),
            inflight: 0,
            standby: StandbyState::Active,
            power_state: powadapt_device::PowerStateId(0),
            supports_standby: false,
        }];
        assert!(matches!(
            r.route(&read_at(0, 8192), &fleet),
            Route::Device(0)
        ));
        assert!(matches!(
            r.route(&read_at(1, 8192), &fleet),
            Route::Absorbed { .. }
        ));
        assert_eq!(r.hits(), 1);
        assert_eq!(r.misses(), 1);
        assert!((r.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_cold_blocks() {
        let mut r = ExcesCachingRouter::new(
            LeastLoadedRouter::default(),
            4096,
            4,
            SimDuration::from_micros(5),
        );
        let fleet = vec![DeviceStatus {
            label: "D".into(),
            inflight: 0,
            standby: StandbyState::Active,
            power_state: powadapt_device::PowerStateId(0),
            supports_standby: false,
        }];
        // Fill far beyond capacity.
        for i in 0..32u64 {
            let _ = r.route(&read_at(i, i * 4096), &fleet);
        }
        assert!(r.cached_blocks() <= 4 + 1, "{}", r.cached_blocks());
        // The earliest block is long gone: reading it misses again.
        let before = r.misses();
        let _ = r.route(&read_at(100, 0), &fleet);
        assert_eq!(r.misses(), before + 1);
    }

    #[test]
    fn writes_fill_the_cache_write_through() {
        let mut r = ExcesCachingRouter::new(
            LeastLoadedRouter::default(),
            4096,
            100,
            SimDuration::from_micros(5),
        );
        let fleet = vec![DeviceStatus {
            label: "D".into(),
            inflight: 0,
            standby: StandbyState::Active,
            power_state: powadapt_device::PowerStateId(0),
            supports_standby: false,
        }];
        let w = Arrival {
            at: powadapt_sim::SimTime::ZERO,
            kind: IoKind::Write,
            offset: 0,
            len: 4096,
        };
        // Writes always reach the device...
        assert!(matches!(r.route(&w, &fleet), Route::Device(0)));
        // ...but a subsequent read of the same block hits.
        assert!(matches!(
            r.route(&read_at(1, 0), &fleet),
            Route::Absorbed { .. }
        ));
    }

    #[test]
    fn caching_extends_hdd_standby_and_saves_energy() {
        // An HDD told to spin down serves a hot read set. Without the cache
        // the first read wakes the disk and keeps it awake; with it, the
        // whole run is absorbed and the disk completes its spin-down.
        let hot_spec = OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: 200.0 },
            block_size: 16 * KIB,
            read_fraction: 1.0,
            pattern: AccessPattern::Random,
            region: (0, 8 * 1024 * 1024), // 8 MiB hot set: 512 blocks
            duration: SimDuration::from_millis(4000),
            seed: 7,
            zipf_theta: None,
        };
        let run = |with_cache: bool| {
            let mut devices: Vec<Box<dyn StorageDevice>> =
                vec![Box::new(catalog::hdd_exos_7e2000(9))];
            #[derive(Debug, Default)]
            struct SleepFirst(LeastLoadedRouter, bool);
            impl Router for SleepFirst {
                fn route(&mut self, a: &Arrival, f: &[DeviceStatus]) -> Route {
                    self.0.route(a, f)
                }
                fn control(
                    &mut self,
                    _n: powadapt_sim::SimTime,
                    f: &[DeviceStatus],
                ) -> Vec<DeviceCommand> {
                    if self.1 || f[0].standby != StandbyState::Active {
                        return Vec::new();
                    }
                    self.1 = true;
                    vec![DeviceCommand::Standby { device: 0 }]
                }
            }
            let arrivals: Vec<Arrival> = ArrivalGen::new(&hot_spec)
                .unwrap()
                .map(|mut a| {
                    // Give the disk 50 ms to fall asleep first.
                    a.at += SimDuration::from_millis(50);
                    a
                })
                .collect();
            if with_cache {
                let mut router = ExcesCachingRouter::new(
                    SleepFirst::default(),
                    16 * KIB,
                    1024,
                    SimDuration::from_micros(5),
                );
                // Warm the cache: touch the whole hot set as writes-through
                // before the run (EXCES populates its cache from prior
                // activity).
                let fleet_view = vec![DeviceStatus {
                    label: "HDD".into(),
                    inflight: 0,
                    standby: StandbyState::Active,
                    power_state: powadapt_device::PowerStateId(0),
                    supports_standby: true,
                }];
                for b in 0..512u64 {
                    let _ = r_touch(&mut router, b * 16 * KIB, &fleet_view);
                }
                let r = run_fleet_arrivals(
                    &mut devices,
                    &mut router,
                    arrivals,
                    7,
                    SimDuration::from_millis(20),
                )
                .expect("runs");
                (r, devices[0].standby_state())
            } else {
                let mut router = SleepFirst::default();
                let r = run_fleet_arrivals(
                    &mut devices,
                    &mut router,
                    arrivals,
                    7,
                    SimDuration::from_millis(20),
                )
                .expect("runs");
                (r, devices[0].standby_state())
            }
        };

        let (uncached, state_uncached) = run(false);
        let (cached, state_cached) = run(true);
        // Without the cache, the first read wakes the disk.
        assert_eq!(state_uncached, StandbyState::Active);
        // With it, every read is absorbed and the disk stays asleep.
        assert_ne!(state_cached, StandbyState::Active);
        assert_eq!(cached.total.ios(), 0, "nothing reached the device");
        assert!(cached.absorbed.ios() > 0);
        assert!(
            cached.avg_power_w() < uncached.avg_power_w() * 0.6,
            "cached {:.2} W vs uncached {:.2} W",
            cached.avg_power_w(),
            uncached.avg_power_w()
        );
        // And the absorbed reads are serviced at DRAM latency.
        assert!(cached.absorbed.avg_latency_us() < 10.0);
    }

    #[test]
    fn zipfian_traffic_yields_high_hit_rates_with_a_small_cache() {
        // Zipf(1.1) over 64k blocks: a cache holding ~2% of blocks should
        // absorb well over half the reads.
        let spec = OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: 5_000.0 },
            block_size: 4 * KIB,
            read_fraction: 1.0,
            pattern: AccessPattern::Random,
            region: (0, 64 * 1024 * 4 * KIB),
            duration: SimDuration::from_millis(400),
            seed: 11,
            zipf_theta: Some(1.1),
        };
        let mut devices: Vec<Box<dyn StorageDevice>> = vec![Box::new(catalog::ssd3_d3_p4510(11))];
        let mut router = ExcesCachingRouter::new(
            LeastLoadedRouter::default(),
            4 * KIB,
            1300,
            SimDuration::from_micros(5),
        );
        let r = powadapt_io::run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(50),
        )
        .expect("runs");
        assert!(
            router.hit_rate() > 0.5,
            "hit rate {:.2} too low for Zipf(1.1)",
            router.hit_rate()
        );
        assert!(r.absorbed.ios() > r.total.ios(), "most reads absorbed");
    }

    /// Helper: warm one block into the cache through the Router interface.
    fn r_touch<R: Router>(
        router: &mut ExcesCachingRouter<R>,
        offset: u64,
        fleet: &[DeviceStatus],
    ) -> Route {
        router.route(
            &Arrival {
                at: powadapt_sim::SimTime::ZERO,
                kind: IoKind::Write,
                offset,
                len: 16 * KIB,
            },
            fleet,
        )
    }
}
