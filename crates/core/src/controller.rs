//! The adaptive control loop: given per-device power-throughput models and
//! a power budget, pick and apply a fleet configuration.
//!
//! The loop degrades gracefully when devices misbehave (the §4.1
//! transition-safety requirement): admin commands are retried under a
//! bounded [`RetryPolicy`], persistent refusers are quarantined for a few
//! control rounds, and the remaining budget is re-planned across the
//! compliant devices, so one broken drive cannot take the fleet out of
//! its power envelope.

use std::error::Error;
use std::fmt;

use powadapt_device::{DeviceError, StandbyState, StorageDevice};
use powadapt_model::{ConfigPoint, FleetModel, PowerThroughputModel};
use powadapt_obs::{emit, EventKind, RecorderHandle};

use crate::health::{Degradation, DeviceHealth, RetryPolicy};

/// Action applied to one device by the controller.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceAction {
    /// Operate in the given configuration (power state + advisory IO shape).
    Operate(ConfigPoint),
    /// Put the device into low-power standby.
    Standby {
        /// Expected standby power, in watts.
        power_w: f64,
    },
}

/// The plan the controller applied in response to a budget.
#[derive(Debug, Clone)]
pub struct AppliedPlan {
    /// `(device label, action)` per device that accepted an action, in
    /// controller order. Quarantined devices are absent here and listed in
    /// [`quarantined`](AppliedPlan::quarantined) instead.
    pub actions: Vec<(String, DeviceAction)>,
    /// Expected total power, in watts. Includes the measured draw of
    /// quarantined devices, so compliance is judged fleet-wide.
    pub expected_power_w: f64,
    /// Expected total throughput, in bytes/second (compliant devices
    /// only).
    pub expected_throughput_bps: f64,
    /// Devices that refused their planned action this round (retries
    /// exhausted), with the evidence.
    pub degraded: Vec<Degradation>,
    /// Labels of every device currently out of service — quarantined this
    /// round or still cooling down from an earlier one.
    pub quarantined: Vec<String>,
}

impl AppliedPlan {
    /// True when every device accepted its action.
    pub fn is_clean(&self) -> bool {
        self.degraded.is_empty() && self.quarantined.is_empty()
    }
}

impl fmt::Display for AppliedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan: {:.1} W expected, {:.0} MiB/s expected",
            self.expected_power_w,
            self.expected_throughput_bps / (1024.0 * 1024.0)
        )?;
        for (label, action) in &self.actions {
            match action {
                DeviceAction::Operate(p) => writeln!(f, "  {label}: operate [{p}]")?,
                DeviceAction::Standby { power_w } => {
                    writeln!(f, "  {label}: standby ({power_w:.2} W)")?;
                }
            }
        }
        for d in &self.degraded {
            writeln!(
                f,
                "  {}: DEGRADED after {} attempt(s): {}",
                d.device, d.attempts, d.error
            )?;
        }
        for label in &self.quarantined {
            writeln!(f, "  {label}: quarantined")?;
        }
        Ok(())
    }
}

/// Errors from the adaptive controller.
#[derive(Debug)]
#[non_exhaustive]
pub enum ControlError {
    /// Devices and models do not line up one-to-one by label.
    MismatchedModels,
    /// No fleet configuration fits the budget, even with standby.
    Infeasible {
        /// The budget that could not be met, in watts.
        budget_w: f64,
        /// The lowest achievable fleet power, in watts.
        floor_w: f64,
    },
    /// A device rejected a control operation.
    Device(DeviceError),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::MismatchedModels => {
                write!(f, "devices and models do not match one-to-one")
            }
            ControlError::Infeasible { budget_w, floor_w } => write!(
                f,
                "budget {budget_w:.1} W below the achievable floor {floor_w:.1} W"
            ),
            ControlError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for ControlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControlError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for ControlError {
    fn from(e: DeviceError) -> Self {
        ControlError::Device(e)
    }
}

/// Sentinel coordinates marking a synthetic "standby" configuration point.
fn is_standby_point(p: &ConfigPoint) -> bool {
    p.chunk() == 0 && p.depth() == 0
}

/// Plans the throughput-maximizing per-device actions under `budget_w`.
///
/// `standby_w[i]` is device `i`'s standby power (from
/// [`StorageDevice::standby_power_w`]), or `None` when it cannot sleep.
/// Returns `None` when no assignment fits the budget.
///
/// # Panics
///
/// Panics if `models` and `standby_w` differ in length or `models` is
/// empty.
pub fn plan_budget(
    models: &[PowerThroughputModel],
    standby_w: &[Option<f64>],
    budget_w: f64,
) -> Option<Vec<DeviceAction>> {
    assert_eq!(models.len(), standby_w.len(), "one standby entry per model");
    let augmented: Vec<PowerThroughputModel> = models
        .iter()
        .zip(standby_w)
        .map(|(m, sb)| {
            let mut points = m.points().to_vec();
            if let Some(sw) = sb {
                points.push(ConfigPoint::new(
                    m.device(),
                    points[0].workload(),
                    points[0].power_state(),
                    0,
                    0,
                    *sw,
                    0.0,
                ));
            }
            PowerThroughputModel::from_points(m.device(), points)
        })
        .collect::<Option<Vec<_>>>()?;
    let allocation = FleetModel::new(augmented).allocate(budget_w, 0.05)?;
    Some(
        allocation
            .choices
            .into_iter()
            .map(|p| {
                if is_standby_point(&p) {
                    DeviceAction::Standby {
                        power_w: p.power_w(),
                    }
                } else {
                    DeviceAction::Operate(p)
                }
            })
            .collect(),
    )
}

/// The adaptive controller: owns a fleet of devices plus the
/// power-throughput model measured for each, and translates power budgets
/// into device actions.
///
/// # Examples
///
/// ```no_run
/// use powadapt_core::AdaptiveController;
/// # use powadapt_device::{catalog, StorageDevice};
/// # use powadapt_model::PowerThroughputModel;
/// # fn models() -> Vec<PowerThroughputModel> { unimplemented!() }
/// let devices: Vec<Box<dyn StorageDevice>> = vec![
///     Box::new(catalog::ssd2_d7_p5510(1)),
///     Box::new(catalog::hdd_exos_7e2000(2)),
/// ];
/// let mut ctl = AdaptiveController::new(devices, models()).unwrap();
/// let plan = ctl.apply_budget(18.0).unwrap();
/// println!("{plan}");
/// ```
#[derive(Debug)]
pub struct AdaptiveController {
    devices: Vec<Box<dyn StorageDevice>>,
    // powadapt-lint: allow(d6, reason = "static power/throughput model tables; rebuilt from configuration")
    models: Vec<PowerThroughputModel>,
    // powadapt-lint: allow(d6, reason = "static retry policy configuration")
    retry: RetryPolicy,
    health: Vec<DeviceHealth>,
    /// Remaining cooldown rounds per device; non-zero = quarantined.
    quarantine: Vec<u32>,
    /// Devices pinned into standby by an external policy (the placement
    /// tier's spin-down consolidation): excluded from planning, always
    /// given a standby action, never woken by a budget.
    pinned: Vec<bool>,
    // powadapt-lint: allow(d6, reason = "telemetry sink; re-captured from the global slot at construction")
    rec: RecorderHandle,
}

impl AdaptiveController {
    /// Creates a controller. `models[i]` must describe `devices[i]` (same
    /// label).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::MismatchedModels`] on a length or label
    /// mismatch.
    pub fn new(
        devices: Vec<Box<dyn StorageDevice>>,
        models: Vec<PowerThroughputModel>,
    ) -> Result<Self, ControlError> {
        if devices.len() != models.len()
            || devices
                .iter()
                .zip(&models)
                .any(|(d, m)| d.spec().label() != m.device())
        {
            return Err(ControlError::MismatchedModels);
        }
        let n = devices.len();
        Ok(AdaptiveController {
            devices,
            models,
            retry: RetryPolicy::default(),
            health: vec![DeviceHealth::default(); n],
            quarantine: vec![0; n],
            pinned: vec![false; n],
            rec: powadapt_obs::current(),
        })
    }

    /// Attaches a telemetry recorder; each [`apply_budget`] outcome is
    /// emitted as an [`EventKind::ControllerDecision`] on the `controller`
    /// track. Recording is write-only — it never changes the plan.
    ///
    /// [`apply_budget`]: AdaptiveController::apply_budget
    pub fn set_recorder(&mut self, rec: RecorderHandle) {
        self.rec = rec;
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Health record of device `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn health(&self, i: usize) -> &DeviceHealth {
        &self.health[i]
    }

    /// True while device `i` is quarantined (sitting out control rounds).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_quarantined(&self, i: usize) -> bool {
        self.quarantine[i] > 0
    }

    /// Pins device `i` into standby (or releases the pin). Pinned devices
    /// sit out budget planning: every round plans them as standby at
    /// their advertised standby draw, and no budget — however generous —
    /// wakes them. Pinning a device that cannot sleep
    /// ([`StorageDevice::standby_power_w`] is `None`) is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_pinned_standby(&mut self, i: usize, pinned: bool) {
        self.pinned[i] = pinned && self.devices[i].standby_power_w().is_some();
    }

    /// True while device `i` is pinned into standby.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_pinned_standby(&self, i: usize) -> bool {
        self.pinned[i]
    }

    /// The managed devices.
    pub fn devices(&self) -> &[Box<dyn StorageDevice>] {
        &self.devices
    }

    /// Mutable access to one device (e.g. to run IO against it).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device_mut(&mut self, i: usize) -> &mut dyn StorageDevice {
        self.devices[i].as_mut()
    }

    /// Consumes the controller, returning the devices.
    pub fn into_devices(self) -> Vec<Box<dyn StorageDevice>> {
        self.devices
    }

    /// Sum of the devices' instantaneous power draws.
    pub fn measured_power_w(&self) -> f64 {
        self.devices.iter().map(|d| d.power_w()).sum()
    }

    /// Lowest achievable fleet power: each device at its cheapest option
    /// (standby where supported, otherwise its minimum-power
    /// configuration).
    pub fn floor_w(&self) -> f64 {
        self.devices
            .iter()
            .zip(&self.models)
            .map(|(d, m)| match d.standby_power_w() {
                Some(s) => s.min(m.min_power_w()),
                None => m.min_power_w(),
            })
            .sum()
    }

    /// Applies `action` to device `i`, retrying transient rejections up to
    /// the policy's attempt bound. Returns the final error and the number
    /// of attempts made on failure.
    fn apply_action(&mut self, i: usize, action: &DeviceAction) -> Result<(), (DeviceError, u32)> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let device = self.devices[i].as_mut();
            let result = match action {
                DeviceAction::Standby { .. } => match device.standby_state() {
                    StandbyState::Standby | StandbyState::EnteringStandby => Ok(()),
                    _ => device.request_standby(),
                },
                DeviceAction::Operate(point) => {
                    let woken = if device.standby_state() != StandbyState::Active {
                        device.request_wake()
                    } else {
                        Ok(())
                    };
                    woken.and_then(|()| device.set_power_state(point.power_state()))
                }
            };
            match result {
                Ok(()) => {
                    self.health[i].record(true);
                    return Ok(());
                }
                Err(e) => {
                    self.health[i].record(false);
                    if !e.is_transient() || attempts >= self.retry.max_attempts {
                        return Err((e, attempts));
                    }
                }
            }
        }
    }

    /// Picks the throughput-maximizing fleet configuration under
    /// `budget_w` (allowing standby for devices that support it) and
    /// applies it: power states are set, and devices chosen for standby are
    /// requested to sleep.
    ///
    /// Devices that refuse their action — transient errors are retried
    /// under the controller's [`RetryPolicy`] first — are quarantined for
    /// `quarantine_cooldown` rounds and the budget is re-planned across
    /// the compliant remainder, with the refuser's *measured* power draw
    /// reserved out of the budget. The outcome is a degraded but compliant
    /// plan; its [`degraded`](AppliedPlan::degraded) and
    /// [`quarantined`](AppliedPlan::quarantined) fields carry the
    /// evidence. Quarantined devices are probed again once their cooldown
    /// expires.
    ///
    /// The returned plan carries the advisory IO shape per operating device;
    /// the workload layer is responsible for issuing IO in that shape.
    ///
    /// # Errors
    ///
    /// [`ControlError::Infeasible`] when the budget is below the floor of
    /// the devices still in service, or [`ControlError::Device`] when no
    /// device accepted an action (the last device error is returned).
    pub fn apply_budget(&mut self, budget_w: f64) -> Result<AppliedPlan, ControlError> {
        // Tick quarantine cooldowns: a device whose cooldown expires this
        // round re-enters planning as a probe.
        for q in &mut self.quarantine {
            *q = q.saturating_sub(1);
        }
        let mut excluded: Vec<bool> = (0..self.devices.len())
            .map(|i| self.quarantine[i] > 0 || self.pinned[i])
            .collect();
        let mut degraded: Vec<Degradation> = Vec::new();
        let mut last_err: Option<DeviceError> = None;

        // Pinned devices are planned unconditionally: standby at their
        // advertised draw, outside the knapsack, regardless of budget.
        let mut pinned_actions: Vec<(usize, DeviceAction)> = Vec::new();
        for i in 0..self.devices.len() {
            if !self.pinned[i] {
                continue;
            }
            let power_w = self.devices[i]
                .standby_power_w()
                .unwrap_or_else(|| self.devices[i].power_w());
            let action = DeviceAction::Standby { power_w };
            if let Err((e, attempts)) = self.apply_action(i, &action) {
                degraded.push(Degradation {
                    device: self.devices[i].spec().label().to_string(),
                    planned: action.clone(),
                    error: e,
                    attempts,
                });
            }
            pinned_actions.push((i, action));
        }

        loop {
            let included: Vec<usize> = (0..self.devices.len()).filter(|&i| !excluded[i]).collect();
            if included.is_empty() && pinned_actions.is_empty() {
                return Err(match last_err {
                    Some(e) => ControlError::Device(e),
                    None => ControlError::Infeasible {
                        budget_w,
                        floor_w: self.floor_w(),
                    },
                });
            }

            // Quarantined devices still draw their measured power and
            // pinned devices their standby draw; reserve both so the
            // compliant remainder plans inside what is left.
            let reserved_w: f64 = (0..self.devices.len())
                .filter(|&i| excluded[i])
                .map(|i| {
                    if self.pinned[i] {
                        self.devices[i]
                            .standby_power_w()
                            .unwrap_or_else(|| self.devices[i].power_w())
                    } else {
                        self.devices[i].power_w()
                    }
                })
                .sum();
            let planned = if included.is_empty() {
                Vec::new()
            } else {
                let models: Vec<PowerThroughputModel> =
                    included.iter().map(|&i| self.models[i].clone()).collect();
                let standby_w: Vec<Option<f64>> = included
                    .iter()
                    .map(|&i| self.devices[i].standby_power_w())
                    .collect();
                plan_budget(&models, &standby_w, budget_w - reserved_w).ok_or(
                    ControlError::Infeasible {
                        budget_w,
                        floor_w: self.floor_w(),
                    },
                )?
            };

            let mut refused: Option<(usize, DeviceError, u32, DeviceAction)> = None;
            for (&i, action) in included.iter().zip(&planned) {
                if let Err((e, attempts)) = self.apply_action(i, action) {
                    refused = Some((i, e, attempts, action.clone()));
                    break;
                }
            }

            match refused {
                Some((i, e, attempts, action)) => {
                    degraded.push(Degradation {
                        device: self.devices[i].spec().label().to_string(),
                        planned: action,
                        error: e.clone(),
                        attempts,
                    });
                    excluded[i] = true;
                    self.quarantine[i] = self.retry.quarantine_cooldown.max(1);
                    last_err = Some(e);
                    // Re-plan the remaining budget across compliant devices.
                }
                None => {
                    // The pinned standby draw is already inside reserved_w;
                    // their actions join the plan without re-counting it.
                    let mut indexed: Vec<(usize, DeviceAction)> =
                        Vec::with_capacity(included.len() + pinned_actions.len());
                    let mut expected_power_w = reserved_w;
                    let mut expected_throughput_bps = 0.0;
                    for (&i, action) in included.iter().zip(&planned) {
                        match action {
                            DeviceAction::Standby { power_w } => expected_power_w += power_w,
                            DeviceAction::Operate(point) => {
                                expected_power_w += point.power_w();
                                expected_throughput_bps += point.throughput_bps();
                            }
                        }
                        indexed.push((i, action.clone()));
                    }
                    indexed.extend(pinned_actions.iter().cloned());
                    indexed.sort_by_key(|&(i, _)| i);
                    let actions: Vec<(String, DeviceAction)> = indexed
                        .into_iter()
                        .map(|(i, a)| (self.devices[i].spec().label().to_string(), a))
                        .collect();
                    let quarantined: Vec<String> = (0..self.devices.len())
                        .filter(|&i| excluded[i] && !self.pinned[i])
                        .map(|i| self.devices[i].spec().label().to_string())
                        .collect();
                    emit!(
                        self.rec,
                        self.devices[0].now(),
                        "controller",
                        EventKind::ControllerDecision(Box::new(powadapt_obs::ControllerDecision {
                            budget_w,
                            measured_w: self.measured_power_w(),
                            expected_power_w,
                            expected_throughput_bps,
                            quarantined: quarantined.clone(),
                            degraded: degraded.iter().map(|d| d.device.clone()).collect(),
                        }))
                    );
                    return Ok(AppliedPlan {
                        actions,
                        expected_power_w,
                        expected_throughput_bps,
                        degraded,
                        quarantined,
                    });
                }
            }
        }
    }

    /// Serializes the controller's dynamic state: every device's state
    /// (via [`StorageDevice::write_state`]), health EWMAs, quarantine
    /// cooldowns, and standby pins. Models and retry policy are
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates any [`SnapError`](powadapt_snap::SnapError) from a
    /// device codec.
    pub fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        w.seq_len(self.devices.len());
        for d in &self.devices {
            d.write_state(w)?;
        }
        for h in &self.health {
            powadapt_snap::Snapshot::write_state(h, w)?;
        }
        for &q in &self.quarantine {
            w.u32(q);
        }
        for &p in &self.pinned {
            w.bool(p);
        }
        Ok(())
    }

    /// Overlays state written by [`AdaptiveController::write_state`] onto
    /// a controller freshly built with the same devices and models. Emits
    /// no observability events.
    ///
    /// # Errors
    ///
    /// [`SnapError::InvalidValue`](powadapt_snap::SnapError::InvalidValue)
    /// when the snapshot's fleet size differs from this controller's, or
    /// any error from a device codec.
    pub fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        let n = r.seq_len()?;
        if n != self.devices.len() {
            return Err(powadapt_snap::SnapError::InvalidValue(format!(
                "snapshot holds {n} devices, controller has {}",
                self.devices.len()
            )));
        }
        for d in &mut self.devices {
            d.read_state(r)?;
        }
        for h in &mut self.health {
            powadapt_snap::Restore::read_state(h, r)?;
        }
        for q in &mut self.quarantine {
            *q = r.u32()?;
        }
        for p in &mut self.pinned {
            *p = r.bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{catalog, PowerStateId, KIB};
    use powadapt_io::Workload;

    fn mk(device: &str, ps: u8, power: f64, thr: f64) -> ConfigPoint {
        ConfigPoint::new(
            device,
            Workload::RandWrite,
            PowerStateId(ps),
            256 * KIB,
            64,
            power,
            thr,
        )
    }

    fn ssd2_model() -> PowerThroughputModel {
        PowerThroughputModel::from_points(
            "SSD2",
            vec![
                mk("SSD2", 0, 15.0, 3.3e9),
                mk("SSD2", 1, 11.7, 2.3e9),
                mk("SSD2", 2, 9.7, 1.6e9),
            ],
        )
        .unwrap()
    }

    fn hdd_model() -> PowerThroughputModel {
        PowerThroughputModel::from_points("HDD", vec![mk("HDD", 0, 4.5, 130e6)]).unwrap()
    }

    fn controller() -> AdaptiveController {
        AdaptiveController::new(
            vec![
                Box::new(catalog::ssd2_d7_p5510(1)),
                Box::new(catalog::hdd_exos_7e2000(2)),
            ],
            vec![ssd2_model(), hdd_model()],
        )
        .unwrap()
    }

    #[test]
    fn mismatched_models_rejected() {
        let err =
            AdaptiveController::new(vec![Box::new(catalog::ssd2_d7_p5510(1))], vec![hdd_model()]);
        assert!(matches!(err, Err(ControlError::MismatchedModels)));
    }

    #[test]
    fn generous_budget_runs_everything_at_peak() {
        let mut ctl = controller();
        let plan = ctl.apply_budget(30.0).unwrap();
        assert_eq!(plan.actions.len(), 2);
        assert!(
            matches!(plan.actions[0].1, DeviceAction::Operate(ref p) if p.power_state() == PowerStateId(0))
        );
        assert!(plan.expected_throughput_bps > 3.0e9);
    }

    #[test]
    fn tight_budget_downshifts_power_state() {
        let mut ctl = controller();
        // 15 W: HDD can't sleep below 1.1 + SSD2 at 9.7 = 14.2, or HDD
        // standby (1.1) + SSD2 at 12-ish. Either way the SSD leaves ps0.
        let plan = ctl.apply_budget(15.0).unwrap();
        assert!(plan.expected_power_w <= 15.0);
        let ssd_action = &plan.actions[0].1;
        match ssd_action {
            DeviceAction::Operate(p) => assert_ne!(p.power_state(), PowerStateId(0)),
            DeviceAction::Standby { .. } => {}
        }
    }

    #[test]
    fn very_tight_budget_uses_standby() {
        let mut ctl = controller();
        // 11 W: best is SSD2 at ps2 (9.7) + HDD standby (1.1).
        let plan = ctl.apply_budget(11.0).unwrap();
        assert!(plan.expected_power_w <= 11.0);
        let hdd_action = &plan.actions[1].1;
        assert!(
            matches!(hdd_action, DeviceAction::Standby { .. }),
            "expected HDD standby, got {hdd_action:?}"
        );
        // The HDD device was actually asked to sleep.
        assert_ne!(ctl.devices()[1].standby_state(), StandbyState::Active);
    }

    #[test]
    fn infeasible_budget_reports_floor() {
        let mut ctl = controller();
        let err = ctl.apply_budget(3.0);
        match err {
            Err(ControlError::Infeasible { floor_w, .. }) => {
                // Floor: SSD2 min 9.7 (no standby) + HDD standby 1.1.
                assert!((floor_w - 10.8).abs() < 0.2, "floor {floor_w}");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn budget_recovery_wakes_devices() {
        let mut ctl = controller();
        ctl.apply_budget(11.0).unwrap();
        assert_ne!(ctl.devices()[1].standby_state(), StandbyState::Active);
        let plan = ctl.apply_budget(30.0).unwrap();
        assert!(matches!(plan.actions[1].1, DeviceAction::Operate(_)));
        // Drive the HDD through its pending transitions: it finishes the
        // spin-down it had started, then honors the wake and spins back up.
        let hdd = ctl.device_mut(1);
        while let Some(t) = hdd.next_event() {
            hdd.advance_to(t);
        }
        assert_eq!(ctl.devices()[1].standby_state(), StandbyState::Active);
    }

    #[test]
    fn pinned_device_stays_in_standby_under_generous_budget() {
        let mut ctl = controller();
        ctl.set_pinned_standby(1, true);
        assert!(ctl.is_pinned_standby(1));
        let plan = ctl.apply_budget(30.0).unwrap();
        assert_eq!(plan.actions.len(), 2);
        assert!(
            matches!(plan.actions[1].1, DeviceAction::Standby { .. }),
            "pinned HDD must be planned standby, got {:?}",
            plan.actions[1].1
        );
        // Not quarantined: the pin is policy, not a fault.
        assert!(plan.quarantined.is_empty());
        assert_ne!(ctl.devices()[1].standby_state(), StandbyState::Active);
        // Expected power counts the HDD at its standby draw.
        assert!(
            plan.expected_power_w <= 15.0 + 1.2,
            "{}",
            plan.expected_power_w
        );
    }

    #[test]
    fn unpinning_lets_the_budget_wake_the_device() {
        let mut ctl = controller();
        ctl.set_pinned_standby(1, true);
        ctl.apply_budget(30.0).unwrap();
        ctl.set_pinned_standby(1, false);
        let plan = ctl.apply_budget(30.0).unwrap();
        assert!(matches!(plan.actions[1].1, DeviceAction::Operate(_)));
        let hdd = ctl.device_mut(1);
        while let Some(t) = hdd.next_event() {
            hdd.advance_to(t);
        }
        assert_eq!(ctl.devices()[1].standby_state(), StandbyState::Active);
    }

    #[test]
    fn pinning_a_sleepless_device_is_ignored() {
        let mut ctl = controller();
        // SSD2 advertises no standby support.
        ctl.set_pinned_standby(0, true);
        assert!(!ctl.is_pinned_standby(0));
        let plan = ctl.apply_budget(30.0).unwrap();
        assert!(matches!(plan.actions[0].1, DeviceAction::Operate(_)));
    }

    #[test]
    fn pins_survive_a_snapshot_roundtrip() {
        let mut ctl = controller();
        ctl.set_pinned_standby(1, true);
        ctl.apply_budget(30.0).unwrap();
        let mut w = powadapt_snap::SnapWriter::new();
        ctl.write_state(&mut w).unwrap();
        let payload = w.into_payload();
        let mut fresh = controller();
        let mut r = powadapt_snap::SnapReader::new(&payload);
        fresh.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert!(fresh.is_pinned_standby(1));
        assert!(!fresh.is_pinned_standby(0));
    }

    #[test]
    fn measured_power_sums_devices() {
        let ctl = controller();
        // Both devices idle: 5.0 + 3.76.
        assert!((ctl.measured_power_w() - 8.76).abs() < 0.01);
    }

    #[test]
    fn plan_display_lists_devices() {
        let mut ctl = controller();
        let s = ctl.apply_budget(30.0).unwrap().to_string();
        assert!(s.contains("SSD2") && s.contains("HDD"));
    }
}
