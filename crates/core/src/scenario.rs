//! Closed-loop scenarios: a budget schedule driving live device control
//! while a workload runs — the whole paper, end to end, in one simulation.
//!
//! [`AdaptiveScenarioRouter`] plugs into [`powadapt_io::run_fleet`]: on
//! every control tick it reads the [`BudgetSchedule`], re-plans the fleet
//! with [`plan_budget`](crate::plan_budget) when the budget changes, issues
//! the device commands, and routes arrivals only to devices planned to
//! operate.

use powadapt_io::{Arrival, DeviceCommand, DeviceStatus, Route, Router};
use powadapt_model::PowerThroughputModel;
use powadapt_sim::SimTime;

use crate::budget::BudgetSchedule;
use crate::controller::{plan_budget, DeviceAction};

/// A router that follows a power-budget schedule.
///
/// Construction takes the per-device power-throughput models (label order
/// must match the fleet) and each device's standby power (`None` for
/// devices that cannot sleep). Budgets the planner cannot satisfy are
/// counted in [`AdaptiveScenarioRouter::infeasible_events`] and leave the
/// previous plan in force — mirroring the paper's §4.1 concern that a
/// failure to shed power must be observable.
#[derive(Debug)]
pub struct AdaptiveScenarioRouter {
    schedule: BudgetSchedule,
    models: Vec<PowerThroughputModel>,
    standby_w: Vec<Option<f64>>,
    applied_budget: Option<f64>,
    operate: Vec<bool>,
    cursor: usize,
    infeasible_events: u32,
    replans: u32,
}

impl AdaptiveScenarioRouter {
    /// Creates the router.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or lengths mismatch.
    pub fn new(
        schedule: BudgetSchedule,
        models: Vec<PowerThroughputModel>,
        standby_w: Vec<Option<f64>>,
    ) -> Self {
        assert!(!models.is_empty(), "need at least one device model");
        assert_eq!(models.len(), standby_w.len(), "one standby entry per model");
        let n = models.len();
        AdaptiveScenarioRouter {
            schedule,
            models,
            standby_w,
            applied_budget: None,
            operate: vec![true; n],
            cursor: 0,
            infeasible_events: 0,
            replans: 0,
        }
    }

    /// Budget events the planner could not satisfy.
    pub fn infeasible_events(&self) -> u32 {
        self.infeasible_events
    }

    /// Number of times the fleet was re-planned.
    pub fn replans(&self) -> u32 {
        self.replans
    }
}

impl Router for AdaptiveScenarioRouter {
    fn route(&mut self, _arrival: &Arrival, fleet: &[DeviceStatus]) -> Route {
        let n = fleet.len();
        // Least-loaded among devices planned to operate. If the plan parked
        // the whole fleet, serve from already-awake devices first (waking a
        // sleeper is the costliest option), pinning to one device so the
        // rest stay parked.
        let any_operating = self.operate.iter().take(n).any(|&o| o);
        if any_operating {
            let min = (0..n)
                .filter(|&i| self.operate[i])
                .map(|i| fleet[i].inflight)
                .min()
                // powadapt-lint: allow(D5, reason = "any_operating just confirmed the filtered iterator is non-empty")
                .expect("fleet non-empty");
            for off in 0..n {
                let i = (self.cursor + off) % n;
                if self.operate[i] && fleet[i].inflight == min {
                    self.cursor = (i + 1) % n;
                    return Route::Device(i);
                }
            }
        }
        Route::Device(
            fleet
                .iter()
                .position(|d| d.standby == powadapt_device::StandbyState::Active)
                .unwrap_or(0),
        )
    }

    fn control(&mut self, now: SimTime, fleet: &[DeviceStatus]) -> Vec<DeviceCommand> {
        let budget = self.schedule.budget_at(now);
        if self.applied_budget == Some(budget) {
            return Vec::new();
        }
        let Some(actions) = plan_budget(&self.models, &self.standby_w, budget) else {
            self.infeasible_events += 1;
            self.applied_budget = Some(budget);
            return Vec::new();
        };
        self.applied_budget = Some(budget);
        self.replans += 1;

        let mut cmds = Vec::new();
        for (i, action) in actions.iter().enumerate().take(fleet.len()) {
            match action {
                DeviceAction::Operate(p) => {
                    self.operate[i] = true;
                    if fleet[i].standby != powadapt_device::StandbyState::Active {
                        cmds.push(DeviceCommand::Wake { device: i });
                    }
                    if fleet[i].power_state != p.power_state() {
                        cmds.push(DeviceCommand::SetPowerState {
                            device: i,
                            ps: p.power_state(),
                        });
                    }
                }
                DeviceAction::Standby { .. } => {
                    self.operate[i] = false;
                    if fleet[i].standby == powadapt_device::StandbyState::Active {
                        cmds.push(DeviceCommand::Standby { device: i });
                    }
                }
            }
        }
        cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::PowerEventCause;
    use powadapt_device::{catalog, PowerStateId, StorageDevice, GIB, KIB};
    use powadapt_io::{full_sweep, SweepScale};
    use powadapt_io::{run_fleet, AccessPattern, Arrivals, JobSpec, OpenLoopSpec, Workload};
    use powadapt_sim::SimDuration;

    fn model_for(label: &str) -> PowerThroughputModel {
        let factory = || catalog::by_label(label, 61).expect("known label");
        let states: Vec<_> = factory().power_states().iter().map(|d| d.id).collect();
        let sweep = full_sweep(
            factory,
            &[Workload::RandWrite],
            &[256 * KIB],
            &[1, 64],
            &states,
            SweepScale {
                runtime: SimDuration::from_millis(300),
                size_limit: GIB,
                ramp: SimDuration::from_millis(80),
            },
            61,
        )
        .expect("sweep runs");
        PowerThroughputModel::from_sweep(&sweep)
            .into_iter()
            .next()
            .expect("single model")
    }

    #[test]
    fn scenario_tracks_a_budget_dip_with_measured_power() {
        // Fleet: two SSD2s. Budget: 32 W, dipping to 21 W at t=500 ms.
        let mut schedule = BudgetSchedule::new(32.0);
        schedule.push(
            SimTime::from_millis(500),
            21.0,
            PowerEventCause::DemandResponse,
        );
        let ssd2_model = model_for("SSD2");
        let mut router = AdaptiveScenarioRouter::new(
            schedule,
            vec![ssd2_model.clone(), ssd2_model],
            vec![None, None],
        );
        let mut devices: Vec<Box<dyn StorageDevice>> = vec![
            Box::new(catalog::ssd2_d7_p5510(71)),
            Box::new(catalog::ssd2_d7_p5510(72)),
        ];
        let spec = OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: 6_000.0 },
            block_size: 256 * KIB,
            read_fraction: 0.0,
            pattern: AccessPattern::Random,
            region: (0, 8 * GIB),
            duration: SimDuration::from_millis(1200),
            seed: 71,
            zipf_theta: None,
        };
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(50),
        )
        .expect("scenario runs");

        assert_eq!(router.infeasible_events(), 0);
        assert!(router.replans() >= 2, "initial plan + dip");

        // Before the dip the fleet may draw up to ~30 W; after it (with a
        // settling margin) the measured average must respect 21 W.
        let after = r
            .power
            .between(SimTime::from_millis(650), SimTime::from_millis(1200));
        assert!(!after.is_empty());
        assert!(
            after.mean() <= 21.0 * 1.05,
            "post-dip fleet power {:.1} W exceeds the 21 W budget",
            after.mean()
        );
        // Devices were down-shifted, not turned off: work still completes.
        assert!(r.total.ios() > 0);
        for d in &devices {
            assert_ne!(d.power_state(), PowerStateId(0));
        }
    }

    #[test]
    fn infeasible_budget_is_counted_not_fatal() {
        let mut schedule = BudgetSchedule::new(30.0);
        schedule.push(SimTime::from_millis(200), 2.0, PowerEventCause::RailFailure);
        let m = model_for("SSD2");
        let mut router = AdaptiveScenarioRouter::new(schedule, vec![m], vec![None]);
        let mut devices: Vec<Box<dyn StorageDevice>> = vec![Box::new(catalog::ssd2_d7_p5510(73))];
        let spec = OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: 500.0 },
            block_size: 64 * KIB,
            read_fraction: 1.0,
            pattern: AccessPattern::Random,
            region: (0, 4 * GIB),
            duration: SimDuration::from_millis(500),
            seed: 73,
            zipf_theta: None,
        };
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(50),
        )
        .expect("scenario survives");
        assert!(router.infeasible_events() >= 1);
        assert!(r.total.ios() > 0, "service continues on the old plan");
    }

    #[test]
    fn standby_capable_devices_park_under_deep_dips() {
        // Three EVOs; a deep dip leaves budget for only one to operate. A
        // trickle of reads keeps running throughout so the scenario spans
        // the dip; the router must route it to the one operating device and
        // park the others.
        let mut schedule = BudgetSchedule::new(10.0);
        schedule.push(
            SimTime::from_millis(300),
            1.2,
            PowerEventCause::Oversubscription,
        );
        let m = model_for("860EVO");
        let mut router = AdaptiveScenarioRouter::new(
            schedule,
            vec![m.clone(), m.clone(), m],
            vec![Some(0.17); 3],
        );
        let mut devices: Vec<Box<dyn StorageDevice>> = vec![
            Box::new(catalog::evo_860(81)),
            Box::new(catalog::evo_860(82)),
            Box::new(catalog::evo_860(83)),
        ];
        let spec = OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: 100.0 },
            block_size: 16 * KIB,
            read_fraction: 1.0,
            pattern: AccessPattern::Random,
            region: (0, GIB),
            duration: SimDuration::from_millis(1500),
            seed: 81,
            zipf_theta: None,
        };
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(50),
        )
        .expect("scenario runs");
        assert!(r.total.ios() > 0, "service continued through the dip");
        let sleeping = devices
            .iter()
            .filter(|d| d.standby_state() != powadapt_device::StandbyState::Active)
            .count();
        assert!(sleeping >= 1, "a 1.2 W budget forces standby");
        // Fleet power after the dip settles at the parked level.
        let tail = r
            .power
            .between(SimTime::from_millis(1200), SimTime::from_millis(1500));
        assert!(
            tail.mean() <= 1.2 * 1.2,
            "post-dip fleet power {:.2} W exceeds the 1.2 W budget",
            tail.mean()
        );
    }

    #[test]
    fn jobspec_reuse_for_scenarios_is_unaffected() {
        // Guard: the scenario machinery must not disturb the classic runner.
        let mut dev = catalog::ssd2_d7_p5510(91);
        let job = JobSpec::new(Workload::RandRead)
            .block_size(4 * KIB)
            .io_depth(4)
            .runtime(SimDuration::from_millis(50))
            .size_limit(GIB);
        let r = powadapt_io::run_experiment(&mut dev, &job).expect("runs");
        assert!(r.io.ios() > 0);
    }
}
