//! Data-center power-domain hierarchy and the §4.1 incremental-rollout
//! safety rules.
//!
//! The paper argues power-adaptive storage must be deployed below the
//! lowest tier of the power hierarchy (sub-rack), so a local failure to
//! shed power trips at most a rack-level breaker; and that test
//! deployments must be spread across domains so coordinated failures
//! cannot overwhelm any single breaker.

use std::fmt;

/// A node in the power-delivery hierarchy (datacenter → row → rack →
/// sub-rack), with a breaker limit and attached storage devices.
#[derive(Debug, Clone)]
pub struct PowerDomain {
    name: String,
    breaker_limit_w: f64,
    children: Vec<PowerDomain>,
    /// Worst-case (peak) power of each directly attached device, in watts,
    /// tagged with whether the device participates in the power-adaptive
    /// deployment.
    devices: Vec<AttachedDevice>,
}

/// A device attached directly to a domain.
#[derive(Debug, Clone, PartialEq)]
pub struct AttachedDevice {
    /// Device label.
    pub label: String,
    /// Worst-case power draw, in watts.
    pub peak_w: f64,
    /// Whether this device is managed by the power-adaptive system.
    pub adaptive: bool,
}

/// A violation found by [`PowerDomain::check_safety`].
#[derive(Debug, Clone, PartialEq)]
pub enum SafetyViolation {
    /// A domain's worst-case attached power exceeds its breaker limit.
    BreakerOvercommit {
        /// Domain name.
        domain: String,
        /// Worst-case power.
        peak_w: f64,
        /// Breaker limit.
        limit_w: f64,
    },
    /// Too large a fraction of the adaptive deployment sits in one domain.
    ConcentratedDeployment {
        /// Domain name.
        domain: String,
        /// Fraction of adaptive peak power in this domain.
        fraction: f64,
        /// The allowed fraction.
        allowed: f64,
    },
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyViolation::BreakerOvercommit {
                domain,
                peak_w,
                limit_w,
            } => write!(
                f,
                "domain {domain}: worst-case {peak_w:.0} W exceeds breaker {limit_w:.0} W"
            ),
            SafetyViolation::ConcentratedDeployment {
                domain,
                fraction,
                allowed,
            } => write!(
                f,
                "domain {domain}: holds {:.0}% of the adaptive deployment (> {:.0}%)",
                100.0 * fraction,
                100.0 * allowed
            ),
        }
    }
}

impl PowerDomain {
    /// Creates a leaf domain.
    ///
    /// # Panics
    ///
    /// Panics if `breaker_limit_w` is not positive.
    pub fn new(name: impl Into<String>, breaker_limit_w: f64) -> Self {
        assert!(breaker_limit_w > 0.0, "breaker limit must be positive");
        PowerDomain {
            name: name.into(),
            breaker_limit_w,
            children: Vec::new(),
            devices: Vec::new(),
        }
    }

    /// Adds a child domain, returning `self` for chaining.
    pub fn child(mut self, child: PowerDomain) -> Self {
        self.children.push(child);
        self
    }

    /// Attaches a device, returning `self` for chaining.
    pub fn device(mut self, label: impl Into<String>, peak_w: f64, adaptive: bool) -> Self {
        self.devices.push(AttachedDevice {
            label: label.into(),
            peak_w,
            adaptive,
        });
        self
    }

    /// Domain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Breaker limit in watts.
    pub fn breaker_limit_w(&self) -> f64 {
        self.breaker_limit_w
    }

    /// Child domains.
    pub fn children(&self) -> &[PowerDomain] {
        &self.children
    }

    /// Directly attached devices.
    pub fn devices(&self) -> &[AttachedDevice] {
        &self.devices
    }

    /// Worst-case power of this domain: directly attached devices plus all
    /// children (assuming every device peaks simultaneously — the
    /// conservative breaker-sizing assumption).
    pub fn worst_case_w(&self) -> f64 {
        self.devices.iter().map(|d| d.peak_w).sum::<f64>()
            + self
                .children
                .iter()
                .map(PowerDomain::worst_case_w)
                .sum::<f64>()
    }

    /// Worst-case power of adaptive devices in this subtree.
    pub fn adaptive_peak_w(&self) -> f64 {
        self.devices
            .iter()
            .filter(|d| d.adaptive)
            .map(|d| d.peak_w)
            .sum::<f64>()
            + self
                .children
                .iter()
                .map(PowerDomain::adaptive_peak_w)
                .sum::<f64>()
    }

    /// Checks the §4.1 deployment rules against this hierarchy:
    ///
    /// 1. every domain's worst case fits its breaker (a failed power-adaptive
    ///    controller must not be able to trip anything), and
    /// 2. no immediate child of the root holds more than
    ///    `max_domain_fraction` of the adaptive deployment (coordinated
    ///    failures stay contained).
    ///
    /// Returns all violations found (empty = safe).
    ///
    /// # Panics
    ///
    /// Panics if `max_domain_fraction` is not in `(0, 1]`.
    pub fn check_safety(&self, max_domain_fraction: f64) -> Vec<SafetyViolation> {
        assert!(
            max_domain_fraction > 0.0 && max_domain_fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let mut out = Vec::new();
        self.check_breakers(&mut out);
        let total_adaptive = self.adaptive_peak_w();
        if total_adaptive > 0.0 {
            for c in &self.children {
                let fraction = c.adaptive_peak_w() / total_adaptive;
                if fraction > max_domain_fraction + 1e-12 {
                    out.push(SafetyViolation::ConcentratedDeployment {
                        domain: c.name.clone(),
                        fraction,
                        allowed: max_domain_fraction,
                    });
                }
            }
        }
        out
    }

    fn check_breakers(&self, out: &mut Vec<SafetyViolation>) {
        let peak = self.worst_case_w();
        if peak > self.breaker_limit_w {
            out.push(SafetyViolation::BreakerOvercommit {
                domain: self.name.clone(),
                peak_w: peak,
                limit_w: self.breaker_limit_w,
            });
        }
        for c in &self.children {
            c.check_breakers(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rack(name: &str, adaptive: bool) -> PowerDomain {
        let mut d = PowerDomain::new(name, 100.0);
        for i in 0..4 {
            d = d.device(format!("{name}-ssd{i}"), 15.0, adaptive);
        }
        d
    }

    #[test]
    fn worst_case_sums_subtree() {
        let row = PowerDomain::new("row", 1000.0)
            .child(rack("r1", true))
            .child(rack("r2", false));
        assert_eq!(row.worst_case_w(), 120.0);
        assert_eq!(row.adaptive_peak_w(), 60.0);
    }

    #[test]
    fn safe_hierarchy_has_no_violations() {
        let row = PowerDomain::new("row", 1000.0)
            .child(rack("r1", true))
            .child(rack("r2", true));
        assert!(row.check_safety(0.5).is_empty());
    }

    #[test]
    fn breaker_overcommit_detected() {
        let rack = PowerDomain::new("hot-rack", 50.0)
            .device("a", 30.0, true)
            .device("b", 30.0, true);
        let violations = rack.check_safety(1.0);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            SafetyViolation::BreakerOvercommit { .. }
        ));
        assert!(violations[0].to_string().contains("breaker"));
    }

    #[test]
    fn concentrated_deployment_detected() {
        // All adaptive devices in one rack: violates a 50 % spread rule.
        let row = PowerDomain::new("row", 1000.0)
            .child(rack("r1", true))
            .child(rack("r2", false));
        let violations = row.check_safety(0.5);
        assert_eq!(violations.len(), 1);
        match &violations[0] {
            SafetyViolation::ConcentratedDeployment {
                domain, fraction, ..
            } => {
                assert_eq!(domain, "r1");
                assert!((*fraction - 1.0).abs() < 1e-12);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn no_adaptive_devices_means_no_concentration_issue() {
        let row = PowerDomain::new("row", 1000.0)
            .child(rack("r1", false))
            .child(rack("r2", false));
        assert!(row.check_safety(0.1).is_empty());
    }

    #[test]
    fn nested_breaker_checks_recurse() {
        let inner = PowerDomain::new("sub", 10.0).device("d", 20.0, false);
        let outer = PowerDomain::new("rack", 1000.0).child(inner);
        let violations = outer.check_safety(1.0);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("sub"));
    }

    #[test]
    fn accessors() {
        let d = PowerDomain::new("x", 5.0).device("dev", 1.0, true);
        assert_eq!(d.name(), "x");
        assert_eq!(d.breaker_limit_w(), 5.0);
        assert_eq!(d.devices().len(), 1);
        assert!(d.children().is_empty());
    }
}
