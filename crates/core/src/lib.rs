//! The power-adaptive storage system layer — the design §4 of the paper
//! sketches, built on the measured power-throughput models of §3.3.
//!
//! - [`BudgetSchedule`] expresses time-varying power availability
//!   (oversubscription, rail failures, renewable dips, demand response),
//! - [`Slo`] expresses the performance guarantees that bound adaptation,
//! - the [`policy`] module implements the paper's four mechanisms:
//!   capping+shaping ([`choose_config`]), power-aware IO redirection
//!   ([`RedirectionPolicy`]), asymmetric IO ([`plan_asymmetric`]), and
//!   tiered standby masking ([`TieringPolicy`]),
//! - [`PowerDomain`] encodes the §4.1 incremental-rollout safety rules,
//! - [`AdaptiveController`] closes the loop: budget in, device actions out —
//!   retrying refused admin commands under a [`RetryPolicy`], tracking
//!   per-device [`DeviceHealth`], and re-planning around quarantined
//!   devices so a broken drive cannot break the budget.
//!
//! # Examples
//!
//! ```
//! use powadapt_core::{BudgetSchedule, PowerEventCause, Slo};
//! use powadapt_sim::SimTime;
//!
//! let mut schedule = BudgetSchedule::new(100.0);
//! schedule.push(SimTime::from_secs(30), 70.0, PowerEventCause::DemandResponse);
//! let slo = Slo::new().max_p99_latency_us(5_000.0);
//! assert_eq!(schedule.budget_at(SimTime::from_secs(40)), 70.0);
//! assert!(slo.max_p99_latency().is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Tests assert on exact expected values: unwraps and bit-exact float
// comparisons are the point there, not a hazard (see workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod budget;
mod controller;
mod domain;
mod health;
pub mod policy;
mod scenario;
mod slo;

pub use budget::{BudgetSchedule, PowerEvent, PowerEventCause};
pub use controller::{plan_budget, AdaptiveController, AppliedPlan, ControlError, DeviceAction};
pub use domain::{AttachedDevice, PowerDomain, SafetyViolation};
pub use health::{Degradation, DeviceHealth, RetryPolicy};
pub use policy::asymmetric::{plan_asymmetric, AsymmetricPlan, AsymmetricProfile};
pub use policy::caching::ExcesCachingRouter;
pub use policy::mechanism::{
    choose_mechanism, redirect_crossover_fraction, Mechanism, MechanismChoice,
};
pub use policy::redirection::{RedirectionConfig, RedirectionDecision, RedirectionPolicy};
pub use policy::routing::{ConsolidatingRouter, WriteSegregationRouter};
pub use policy::shaping::{choose_config, required_curtailment_bps};
pub use policy::tiering::{AbsorptionProfile, SpinProfile, TieringPolicy};
pub use scenario::AdaptiveScenarioRouter;
pub use slo::{Slo, SloWindow};
