//! Per-device health tracking and retry policy for the fault-tolerant
//! control loop.
//!
//! The §4.1 transition-safety argument assumes the control plane can tell
//! a transiently-failing device from a persistently-broken one. The
//! controller does that with two pieces of state per device:
//!
//! - a bounded, deterministic [`RetryPolicy`] applied to every admin
//!   command, and
//! - a [`DeviceHealth`] record keeping an error-rate EWMA across all admin
//!   commands ever issued to the device.
//!
//! When retries are exhausted the device is quarantined for a fixed number
//! of control rounds and the budget is re-planned across the compliant
//! remainder; the quarantine decision and its evidence are surfaced as
//! [`Degradation`] records on the applied plan.

use powadapt_device::DeviceError;

use crate::controller::DeviceAction;

/// Bounded deterministic retry behavior for admin commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per admin command within one `apply_budget` call (≥ 1).
    /// Only transient errors ([`DeviceError::is_transient`]) are retried;
    /// wiring errors fail fast.
    pub max_attempts: u32,
    /// Number of subsequent `apply_budget` calls a quarantined device sits
    /// out before it is probed again.
    pub quarantine_cooldown: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            quarantine_cooldown: 2,
        }
    }
}

impl RetryPolicy {
    /// Policy with the given attempt bound and default cooldown.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn with_max_attempts(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }
}

/// EWMA smoothing factor for [`DeviceHealth`]: high enough that a burst of
/// failures is visible within a few commands, low enough that one blip
/// does not dominate.
const HEALTH_ALPHA: f64 = 0.3;

/// Error-rate history of one device's admin command stream.
#[derive(Debug, Clone, Default)]
pub struct DeviceHealth {
    ewma: f64,
    commands: u64,
    failures: u64,
}

impl DeviceHealth {
    /// Records the outcome of one admin command attempt.
    pub fn record(&mut self, success: bool) {
        self.commands += 1;
        let fail = if success { 0.0 } else { 1.0 };
        self.failures += (!success) as u64;
        self.ewma = HEALTH_ALPHA * fail + (1.0 - HEALTH_ALPHA) * self.ewma;
    }

    /// Exponentially-weighted error rate in `[0, 1]` (0 = healthy).
    pub fn error_rate(&self) -> f64 {
        self.ewma
    }

    /// Total admin command attempts recorded.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Total failed attempts recorded.
    pub fn failures(&self) -> u64 {
        self.failures
    }
}

impl powadapt_snap::Snapshot for DeviceHealth {
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        w.f64(self.ewma);
        w.u64(self.commands);
        w.u64(self.failures);
        Ok(())
    }
}

impl powadapt_snap::Restore for DeviceHealth {
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        self.ewma = r.f64()?;
        let commands = r.u64()?;
        let failures = r.u64()?;
        if failures > commands {
            return Err(powadapt_snap::SnapError::InvalidValue(format!(
                "{failures} failures exceed {commands} commands"
            )));
        }
        self.commands = commands;
        self.failures = failures;
        Ok(())
    }
}

/// Evidence that a device refused its planned action and was routed
/// around: attached to the [`AppliedPlan`](crate::AppliedPlan) that the
/// degraded control round produced.
#[derive(Debug, Clone)]
pub struct Degradation {
    /// Label of the refusing device.
    pub device: String,
    /// The action the plan wanted to apply.
    pub planned: DeviceAction,
    /// The error that exhausted the retry budget (or failed fast).
    pub error: DeviceError,
    /// Attempts made before giving up.
    pub attempts: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_rises_on_failures_and_decays_on_successes() {
        let mut h = DeviceHealth::default();
        assert_eq!(h.error_rate(), 0.0);
        for _ in 0..5 {
            h.record(false);
        }
        let peak = h.error_rate();
        assert!(peak > 0.5, "sustained failures dominate: {peak}");
        for _ in 0..10 {
            h.record(true);
        }
        assert!(h.error_rate() < 0.1, "successes decay the rate");
        assert_eq!(h.commands(), 15);
        assert_eq!(h.failures(), 5);
    }

    #[test]
    fn retry_policy_default_is_bounded() {
        let p = RetryPolicy::default();
        assert!(p.max_attempts >= 1);
        assert!(p.quarantine_cooldown >= 1);
        assert_eq!(RetryPolicy::with_max_attempts(5).max_attempts, 5);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = RetryPolicy::with_max_attempts(0);
    }
}
