//! Property-based tests of the policy layer.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use proptest::prelude::*;

use powadapt_core::{
    choose_mechanism, plan_budget, AbsorptionProfile, Mechanism, PowerDomain, RedirectionConfig,
    RedirectionPolicy, SpinProfile, TieringPolicy,
};
use powadapt_device::{PowerStateId, KIB};
use powadapt_io::Workload;
use powadapt_model::{ConfigPoint, PowerThroughputModel};
use powadapt_sim::SimDuration;

fn redirection_cfg() -> RedirectionConfig {
    RedirectionConfig {
        per_device_capacity_bps: 1e9,
        active_power_w: 10.0,
        standby_power_w: 1.0,
        wake_latency: SimDuration::from_millis(1),
        grow_threshold: 0.8,
        shrink_threshold: 0.5,
    }
}

fn pt(device: &str, power: f64, thr: f64) -> ConfigPoint {
    ConfigPoint::new(
        device,
        Workload::RandWrite,
        PowerStateId(0),
        4 * KIB,
        1,
        power,
        thr,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The redirection policy's active count always stays within [1, total]
    /// and its reported power matches the closed form, for any demand
    /// sequence.
    #[test]
    fn redirection_invariants_hold_for_any_demand_sequence(
        total in 1usize..24,
        demands in prop::collection::vec(0.0f64..30e9, 1..60),
    ) {
        let cfg = redirection_cfg();
        let mut p = RedirectionPolicy::new(total, cfg).unwrap();
        for &d in &demands {
            let decision = p.step(d);
            prop_assert!((1..=total).contains(&decision.active));
            let expected = decision.active as f64 * cfg.active_power_w
                + (total - decision.active) as f64 * cfg.standby_power_w;
            prop_assert!((decision.power_w - expected).abs() < 1e-9);
            prop_assert_eq!(decision.active, p.active());
            // Wakes and sleeps cannot both happen in one step.
            prop_assert!(decision.woken == 0 || decision.slept == 0);
        }
    }

    /// Constant demand never causes flapping: after the first step, the
    /// active count is stable.
    #[test]
    fn redirection_is_stable_under_constant_demand(
        total in 1usize..16,
        demand in 0.0f64..20e9,
    ) {
        let mut p = RedirectionPolicy::new(total, redirection_cfg()).unwrap();
        let first = p.step(demand).active;
        for _ in 0..20 {
            let d = p.step(demand);
            prop_assert_eq!(d.active, first, "active count flapped");
            prop_assert_eq!(d.woken + d.slept, 0, "spurious transitions");
        }
    }

    /// Serving capacity at the grow threshold always covers the demand when
    /// enough devices exist.
    #[test]
    fn redirection_capacity_covers_demand(
        total in 1usize..32,
        demand in 0.0f64..40e9,
    ) {
        let cfg = redirection_cfg();
        let mut p = RedirectionPolicy::new(total, cfg).unwrap();
        let d = p.step(demand);
        let fleet_capacity = total as f64 * cfg.per_device_capacity_bps * cfg.grow_threshold;
        if demand <= fleet_capacity {
            let serving = d.active as f64 * cfg.per_device_capacity_bps * cfg.grow_threshold;
            prop_assert!(
                serving + 1e-6 >= demand,
                "active {} serves {} < demand {}",
                d.active, serving, demand
            );
        } else {
            prop_assert_eq!(d.active, total, "overload must activate everything");
        }
    }

    /// Tiering energetics: savings are monotone in the idle period, and the
    /// break-even point is exactly where savings change sign.
    #[test]
    fn tiering_savings_are_monotone_and_break_even_is_a_zero(
        idle_w in 2.0f64..10.0,
        standby_w in 0.1f64..1.9,
        up_secs in 1u64..15,
    ) {
        let spin = SpinProfile {
            idle_w,
            standby_w,
            down: SimDuration::from_millis(1500),
            down_w: idle_w * 0.7,
            up: SimDuration::from_secs(up_secs),
            up_w: idle_w * 1.4,
        };
        let policy = TieringPolicy::new(
            spin,
            AbsorptionProfile { absorb_bw_bps: 1e9, absorb_capacity_bytes: 1 << 30 },
        ).unwrap();
        let be = policy.break_even();
        // Just below break-even: not worth it; just above: worth it.
        let eps = SimDuration::from_millis(200);
        if be > eps {
            prop_assert!(policy.savings_j(be.saturating_sub(eps)) <= 0.15);
        }
        prop_assert!(policy.savings_j(be + eps) >= -0.15);
        // Monotonicity.
        let mut last = policy.savings_j(SimDuration::from_secs(1));
        for secs in [5u64, 20, 60, 300] {
            let s = policy.savings_j(SimDuration::from_secs(secs));
            prop_assert!(s + 1e-9 >= last);
            last = s;
        }
    }

    /// Mechanism choice: the redirect estimate never exceeds cap+shape when
    /// a single active device can serve the whole demand (consolidation can
    /// only help there).
    #[test]
    fn redirect_wins_when_one_device_suffices(
        idle_power in 2.0f64..8.0,
        n in 2usize..16,
        demand_frac in 0.01f64..0.99,
    ) {
        let points = vec![
            pt("D", idle_power, 0.3e9),
            pt("D", idle_power + 2.0, 1.0e9),
            pt("D", idle_power + 4.0, 2.0e9),
        ];
        let model = PowerThroughputModel::from_points("D", points).unwrap();
        let demand = 2.0e9 * demand_frac; // within one device's peak
        let c = choose_mechanism(&model, n, demand, 0.2);
        prop_assert!(c.redirect_w.is_some());
        prop_assert!(c.cap_shape_w.is_some());
        prop_assert!(
            c.redirect_w.unwrap() <= c.cap_shape_w.unwrap() + 1e-9,
            "redirect {} > shape {}",
            c.redirect_w.unwrap(), c.cap_shape_w.unwrap()
        );
        prop_assert_eq!(c.preferred, Mechanism::RedirectAndStandby);
    }

    /// Fleet budget planning: the plan's expected power sums within budget,
    /// and every device receives exactly one action.
    #[test]
    fn plan_budget_respects_the_budget(
        powers in prop::collection::vec(1.0f64..12.0, 2..6),
        budget in 3.0f64..60.0,
    ) {
        let models: Vec<PowerThroughputModel> = powers
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let name = format!("D{i}");
                PowerThroughputModel::from_points(
                    name.clone(),
                    vec![pt(&name, p, p * 1e8), pt(&name, p + 3.0, (p + 3.0) * 1e8)],
                )
                .unwrap()
            })
            .collect();
        let standby: Vec<Option<f64>> = powers.iter().map(|_| Some(0.5)).collect();
        if let Some(actions) = plan_budget(&models, &standby, budget) {
            prop_assert_eq!(actions.len(), models.len());
            let total: f64 = actions
                .iter()
                .map(|a| match a {
                    powadapt_core::DeviceAction::Operate(p) => p.power_w(),
                    powadapt_core::DeviceAction::Standby { power_w } => *power_w,
                })
                .sum();
            prop_assert!(total <= budget + 1e-9, "plan {total} exceeds {budget}");
        } else {
            // Only infeasible when even all-standby exceeds the budget.
            prop_assert!(0.5 * powers.len() as f64 > budget - 0.3);
        }
    }

    /// Power-domain accounting: the worst case equals the sum of all device
    /// peaks regardless of tree shape.
    #[test]
    fn domain_worst_case_is_shape_independent(
        peaks in prop::collection::vec(1.0f64..20.0, 1..12),
        split in 1usize..11,
    ) {
        let total: f64 = peaks.iter().sum();
        // Flat: all devices on one domain.
        let mut flat = PowerDomain::new("flat", 10_000.0);
        for (i, &p) in peaks.iter().enumerate() {
            flat = flat.device(format!("d{i}"), p, i % 2 == 0);
        }
        // Nested: split across two children.
        let k = split.min(peaks.len());
        let mut left = PowerDomain::new("left", 10_000.0);
        for (i, &p) in peaks[..k].iter().enumerate() {
            left = left.device(format!("l{i}"), p, i % 2 == 0);
        }
        let mut right = PowerDomain::new("right", 10_000.0);
        for (i, &p) in peaks[k..].iter().enumerate() {
            right = right.device(format!("r{i}"), p, (i + k) % 2 == 0);
        }
        let nested = PowerDomain::new("root", 10_000.0).child(left).child(right);
        prop_assert!((flat.worst_case_w() - total).abs() < 1e-9);
        prop_assert!((nested.worst_case_w() - total).abs() < 1e-9);
        prop_assert!(
            (flat.adaptive_peak_w() - nested.adaptive_peak_w()).abs() < 1e-9
        );
    }
}
