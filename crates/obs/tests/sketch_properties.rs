//! Property tests for the mergeable quantile sketch: the algebraic laws
//! the sharded recorder's determinism rests on (merge is associative,
//! commutative, with the empty sketch as identity — all up to *byte
//! equality* of the canonical snapshot form), the advertised relative
//! error bound against exact sample percentiles, and byte-stability of
//! the snapshot round trip.

// Property tests assert on exact expected values.
#![allow(clippy::unwrap_used)]

use powadapt_obs::sketch::RELATIVE_ERROR;
use powadapt_obs::Sketch;
use powadapt_sim::Summary;
use powadapt_snap::{Restore, SnapReader, SnapWriter, Snapshot};
use proptest::prelude::*;

/// Canonical byte form of a sketch: the snapshot payload. Two sketches
/// with identical payloads are indistinguishable to every consumer
/// (percentiles, merges, snapshots), so the laws are asserted on bytes.
fn bytes(s: &Sketch) -> Vec<u8> {
    let mut w = SnapWriter::new();
    s.write_state(&mut w).unwrap();
    w.into_payload()
}

fn sketch_of(values: &[f64]) -> Sketch {
    let mut s = Sketch::new();
    for &v in values {
        s.observe(v);
    }
    s
}

/// Positive finite values inside the sketch's representable range
/// (`[2^-26, 2^45)`), the domain the γ bound is advertised for —
/// latencies in ns, powers in W, byte counts.
fn in_range_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-6f64..1e12, 1..200)
}

/// Arbitrary value streams including zero, negatives, and extremes that
/// clamp into edge buckets — merges must stay lawful even off-range.
fn any_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        (
            proptest::sample::select(vec![0usize, 1, 2, 3, 4]),
            1e-6f64..1e12,
        )
            .prop_map(|(class, v)| match class {
                0 => 0.0,
                1 => -1.0,
                2 => 1e300,
                3 => 1e-300,
                _ => v,
            }),
        0..100,
    )
}

proptest! {
    #[test]
    fn merge_is_commutative(a in any_values(), b in any_values()) {
        let (sa, sb) = (sketch_of(&a), sketch_of(&b));
        let mut ab = sa.clone();
        ab.merge_from(&sb);
        let mut ba = sb.clone();
        ba.merge_from(&sa);
        prop_assert_eq!(bytes(&ab), bytes(&ba));
    }

    #[test]
    fn merge_is_associative(
        a in any_values(),
        b in any_values(),
        c in any_values(),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        // (a ⊔ b) ⊔ c
        let mut left = sa.clone();
        left.merge_from(&sb);
        left.merge_from(&sc);
        // a ⊔ (b ⊔ c)
        let mut bc = sb.clone();
        bc.merge_from(&sc);
        let mut right = sa.clone();
        right.merge_from(&bc);
        prop_assert_eq!(bytes(&left), bytes(&right));
    }

    #[test]
    fn empty_sketch_is_merge_identity(a in any_values()) {
        let sa = sketch_of(&a);
        let mut left = Sketch::new();
        left.merge_from(&sa);
        let mut right = sa.clone();
        right.merge_from(&Sketch::new());
        prop_assert_eq!(bytes(&left), bytes(&sa));
        prop_assert_eq!(bytes(&right), bytes(&sa));
    }

    #[test]
    fn merge_equals_observing_concatenation(a in any_values(), b in any_values()) {
        let mut merged = sketch_of(&a);
        merged.merge_from(&sketch_of(&b));
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        prop_assert_eq!(bytes(&merged), bytes(&sketch_of(&concat)));
    }

    #[test]
    fn percentiles_stay_within_relative_error(values in in_range_values()) {
        let s = sketch_of(&values);
        let summary = Summary::from_samples(&values).unwrap();
        for q in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let est = s.percentile(q).unwrap();
            let exact = summary.percentile(q);
            // Exact percentiles interpolate between two order statistics;
            // the sketch interpolates between those statistics' bucket
            // representatives, each within γ of its sample. The estimate
            // is therefore within γ of the interpolated exact value.
            let tol = RELATIVE_ERROR * exact.abs();
            prop_assert!(
                (est - exact).abs() <= tol,
                "p{}: estimate {} vs exact {} (tolerance {})",
                q, est, exact, tol
            );
        }
    }

    #[test]
    fn snapshot_round_trip_is_byte_stable(values in any_values()) {
        let s = sketch_of(&values);
        let payload = bytes(&s);
        let mut restored = Sketch::new();
        let mut r = SnapReader::new(&payload);
        restored.read_state(&mut r).unwrap();
        r.finish().unwrap();
        // Restoring and re-serializing reproduces identical bytes, and
        // the restored sketch answers identically.
        prop_assert_eq!(bytes(&restored), payload);
        prop_assert_eq!(restored.count(), s.count());
        if !s.is_empty() {
            prop_assert_eq!(restored.percentile(50.0), s.percentile(50.0));
        }
    }
}
