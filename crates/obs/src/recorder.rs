//! The [`Recorder`] sink trait, the cloneable [`RecorderHandle`] used at
//! emit sites, the process-global recorder slot, and the ring-buffered
//! [`EventLog`].
//!
//! Emit sites hold a `RecorderHandle` — a nullable `Arc` — and go through
//! the [`emit!`](crate::emit) macro, which checks [`RecorderHandle::
//! is_enabled`] *before* evaluating the event payload. With no recorder
//! installed the whole emit path is a branch on an `Option`, so tracing
//! support costs nothing when it is off.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use crate::event::{Event, EventKind};

/// A sink for telemetry events.
///
/// Recorders take `&self`: they are shared across threads (the parallel
/// sweep executor runs figure cells concurrently), so implementations
/// synchronize internally. Determinism contract: a recorder must not feed
/// anything back into the simulation — recording is strictly write-only
/// from the sim's point of view.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Record one event. Must not panic.
    fn record(&self, event: Event);
}

/// A cheap, cloneable, possibly-absent reference to a recorder.
///
/// The default handle is disabled; [`RecorderHandle::is_enabled`] is a
/// single `Option` check, which is what makes `emit!` free when tracing
/// is off.
#[derive(Debug, Clone, Default)]
pub struct RecorderHandle(Option<Arc<dyn Recorder>>);

impl RecorderHandle {
    /// A handle that records nothing.
    pub const fn disabled() -> Self {
        RecorderHandle(None)
    }

    /// A handle recording into `rec`.
    pub fn new(rec: Arc<dyn Recorder>) -> Self {
        RecorderHandle(Some(rec))
    }

    /// True when a recorder is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Forward an event to the recorder, if any.
    #[inline]
    pub fn record(&self, event: Event) {
        if let Some(r) = &self.0 {
            r.record(event);
        }
    }
}

/// The process-global recorder slot.
///
/// Devices and runners capture [`current()`] at construction, so installing
/// a recorder *before* building a figure traces the whole run without any
/// signature changes; explicit `set_recorder` calls override per component.
static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

fn read_global() -> Option<Arc<dyn Recorder>> {
    match GLOBAL.read() {
        Ok(g) => g.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    }
}

/// Install `rec` as the process-global recorder, returning the previous
/// one, if any.
pub fn install(rec: Arc<dyn Recorder>) -> Option<Arc<dyn Recorder>> {
    match GLOBAL.write() {
        Ok(mut g) => g.replace(rec),
        Err(poisoned) => poisoned.into_inner().replace(rec),
    }
}

/// Remove and return the process-global recorder.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    match GLOBAL.write() {
        Ok(mut g) => g.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    }
}

/// A handle to the currently installed global recorder (disabled when none
/// is installed). The handle snapshots the slot: later `install` calls do
/// not retarget handles already captured.
pub fn current() -> RecorderHandle {
    RecorderHandle(read_global())
}

#[derive(Debug)]
struct LogInner {
    events: VecDeque<Event>,
    /// Per-kind counters, dense by [`EventKind::index`]: the record hot
    /// path does one array add, never a keyed map lookup.
    counts: [u64; EventKind::COUNT],
    total: u64,
    dropped: u64,
}

impl LogInner {
    fn with_capacity(capacity: usize) -> Self {
        LogInner {
            // Reserved up front so a filling ring never pays reallocation
            // copies on the record path.
            events: VecDeque::with_capacity(capacity),
            counts: [0; EventKind::COUNT],
            total: 0,
            dropped: 0,
        }
    }
}

/// A bounded, thread-safe event ring buffer.
///
/// Holds the most recent `capacity` events; older events are dropped (and
/// counted) rather than growing without bound, so an `EventLog` can stay
/// attached to a long fleet run. Per-kind counts cover *all* events ever
/// recorded, including dropped ones — counting never saturates.
pub struct EventLog {
    inner: Mutex<LogInner>,
    // powadapt-lint: allow(d6, reason = "configured ring capacity; restore keeps the attached log's configuration")
    capacity: usize,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("EventLog")
            .field("capacity", &self.capacity)
            .field("len", &inner.events.len())
            .field("total", &inner.total)
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl EventLog {
    /// Default ring capacity: enough for a full `policy_eval` trace.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// An event log retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventLog {
            inner: Mutex::new(LogInner::with_capacity(capacity)),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, LogInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().events.iter().cloned().collect()
    }

    /// Per-kind event counts over everything ever recorded (sorted by
    /// kind name; kinds never recorded are omitted).
    pub fn counts(&self) -> Vec<(String, u64)> {
        let counts = self.lock().counts;
        let mut out: Vec<(String, u64)> = EventKind::NAMES
            .iter()
            .zip(counts)
            .filter(|&(_, n)| n > 0)
            .map(|(&k, n)| (k.to_string(), n))
            .collect();
        out.sort();
        out
    }

    /// Total events ever recorded (including dropped).
    pub fn total(&self) -> u64 {
        self.lock().total
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Discard all retained events and counts, keeping the allocated
    /// ring: a cleared log re-fills without re-faulting its pages, which
    /// is what lets the overhead bench warm a recorder untimed.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.events.clear();
        inner.counts = [0; EventKind::COUNT];
        inner.total = 0;
        inner.dropped = 0;
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(Self::DEFAULT_CAPACITY)
    }
}

impl powadapt_snap::Snapshot for EventLog {
    /// Serializes the durable accounting — per-kind counts, lifetime
    /// total, eviction count — not the retained ring, which is a bounded
    /// debugging window rather than run state.
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        let inner = self.lock();
        let mut counts: Vec<(&'static str, u64)> = EventKind::NAMES
            .iter()
            .zip(inner.counts)
            .filter(|&(_, n)| n > 0)
            .map(|(&k, n)| (k, n))
            .collect();
        counts.sort();
        w.u64(inner.total);
        w.u64(inner.dropped);
        w.seq_len(counts.len());
        for (k, v) in &counts {
            w.str(k);
            w.u64(*v);
        }
        Ok(())
    }
}

impl powadapt_snap::Restore for EventLog {
    /// Replaces this log's counters with the checkpointed ones, mapping
    /// each serialized kind name back to its dense index via
    /// [`EventKind::name_index`](crate::EventKind::name_index). Events
    /// recorded after the restore accumulate on top — no double-count, no
    /// reset.
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        let total = r.u64()?;
        let dropped = r.u64()?;
        let n = r.seq_len()?;
        let mut counts = [0u64; EventKind::COUNT];
        let mut seen = [false; EventKind::COUNT];
        let mut sum = 0u64;
        for _ in 0..n {
            let name = r.str()?;
            let idx = EventKind::name_index(&name).ok_or_else(|| {
                powadapt_snap::SnapError::InvalidValue(format!("unknown event kind {name:?}"))
            })?;
            let v = r.u64()?;
            if seen[idx] {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "duplicate event kind {name:?}"
                )));
            }
            seen[idx] = true;
            counts[idx] = v;
            sum += v;
        }
        if sum != total {
            return Err(powadapt_snap::SnapError::InvalidValue(format!(
                "per-kind counts sum to {sum}, total says {total}"
            )));
        }
        let mut inner = self.lock();
        inner.counts = counts;
        inner.total = total;
        inner.dropped = dropped;
        Ok(())
    }
}

impl Recorder for EventLog {
    fn record(&self, event: Event) {
        let kind = event.kind.index();
        let mut inner = self.lock();
        inner.counts[kind] += 1;
        inner.total += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use powadapt_sim::SimTime;

    fn ev(ns: u64) -> Event {
        Event {
            at: SimTime::from_nanos(ns),
            track: "t",
            kind: EventKind::SpinUp,
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = RecorderHandle::disabled();
        assert!(!h.is_enabled());
        h.record(ev(0)); // must not panic
    }

    #[test]
    fn ring_drops_oldest() {
        let log = EventLog::new(2);
        log.record(ev(1));
        log.record(ev(2));
        log.record(ev(3));
        let events: Vec<u64> = log.snapshot().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(events, vec![2, 3]);
        assert_eq!(log.total(), 3);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.counts(), vec![("spin_up".to_string(), 3)]);
    }

    #[test]
    fn handle_records_through_arc() {
        let log = Arc::new(EventLog::new(8));
        let h = RecorderHandle::new(log.clone());
        assert!(h.is_enabled());
        h.record(ev(7));
        assert_eq!(log.total(), 1);
    }

    #[test]
    fn event_log_counts_survive_snapshot_roundtrip() {
        use powadapt_snap::{Restore, SnapReader, SnapWriter, Snapshot};
        let log = EventLog::new(4);
        for _ in 0..3 {
            log.record(ev(1));
        }
        let mut w = SnapWriter::new();
        log.write_state(&mut w).unwrap();
        let payload = w.into_payload();

        let mut resumed = EventLog::new(4);
        let mut r = SnapReader::new(&payload);
        resumed.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(resumed.total(), 3);
        assert_eq!(resumed.counts(), log.counts());

        // New events accumulate on top of the restored counters.
        resumed.record(ev(9));
        assert_eq!(resumed.total(), 4);
        assert_eq!(resumed.counts(), vec![("spin_up".to_string(), 4)]);
    }

    #[test]
    fn event_log_restore_rejects_unknown_kind_and_bad_total() {
        use powadapt_snap::{Restore, SnapReader, SnapWriter};
        // Unknown kind name.
        let mut w = SnapWriter::new();
        w.u64(1);
        w.u64(0);
        w.seq_len(1);
        w.str("not_a_kind");
        w.u64(1);
        let payload = w.into_payload();
        let mut log = EventLog::new(4);
        let mut r = SnapReader::new(&payload);
        assert!(matches!(
            log.read_state(&mut r),
            Err(powadapt_snap::SnapError::InvalidValue(_))
        ));

        // Counts that do not sum to the recorded total.
        let mut w = SnapWriter::new();
        w.u64(5);
        w.u64(0);
        w.seq_len(1);
        w.str("spin_up");
        w.u64(2);
        let payload = w.into_payload();
        let mut r = SnapReader::new(&payload);
        assert!(matches!(
            log.read_state(&mut r),
            Err(powadapt_snap::SnapError::InvalidValue(_))
        ));
    }
}
