//! End-to-end tracing plumbing: the [`TraceRecorder`] (event log +
//! metrics in one sink), the `POWADAPT_TRACE`/`--trace-out` configuration
//! surface, and the [`TraceSession`] lifecycle used by binaries.
//!
//! ```text
//! POWADAPT_TRACE=events            # event-count summary on stderr
//! POWADAPT_TRACE=metrics           # metrics snapshot JSON on stderr
//! POWADAPT_TRACE=perfetto:out.json # Chrome trace -> out.json, plus
//!                                  # out.json.metrics.json,
//!                                  # out.json.events.jsonl (trace_query
//!                                  # input) and out.json.folded
//! --trace-out out.json             # CLI shorthand for perfetto:out.json
//! ```

use std::fmt;
use std::fs;
use std::io;
use std::sync::Arc;

use crate::event::{Event, EventKind};
use crate::export::{chrome_trace, events_jsonl};
use crate::metrics::{push_json_string, MetricsRegistry};
use crate::recorder::{EventLog, Recorder};
use crate::span::collapsed_stacks;

/// A recorder bundling an [`EventLog`] with a [`MetricsRegistry`]: every
/// event is logged, counted (`events.<kind>`), and folded into the
/// derived histograms (`io.latency_us`, `power.watts`).
#[derive(Debug, Default)]
pub struct TraceRecorder {
    log: EventLog,
    metrics: MetricsRegistry,
}

impl TraceRecorder {
    /// A trace recorder whose ring retains `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            log: EventLog::new(capacity),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The underlying event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The derived metrics.
    ///
    /// The `events.<kind>` counter family is synced from the event log's
    /// per-kind totals *here*, at read time — the record hot path never
    /// re-counts kinds into the registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        sync_event_counters(&self.log, &self.metrics);
        &self.metrics
    }

    /// Discard everything recorded so far, keeping the ring's allocation
    /// (see [`EventLog::clear`]) so a warmed recorder can be reset
    /// between measurement passes without re-faulting its pages.
    pub fn clear(&self) {
        self.log.clear();
        self.metrics.clear();
    }
}

/// Publishes the log's per-kind totals as `events.<kind>` counters.
/// Called at read time (snapshots, exports) so the record path pays for
/// one dense array add per event instead of a keyed counter update.
pub(crate) fn sync_event_counters(log: &EventLog, metrics: &MetricsRegistry) {
    for (name, n) in log.counts() {
        metrics.set_counter(&format!("events.{name}"), n);
    }
}

/// Folds one event into a registry: the derived histograms
/// (`io.latency_us`, `power.watts`), the IO byte counters, and the
/// controller gauges. Shared by [`TraceRecorder`] and the sharded
/// recorder so a merged shard view derives *exactly* what an unsharded
/// recorder would. The `events.<kind>` counters are *not* derived here —
/// they mirror the event log's totals and are synced lazily at read time
/// ([`sync_event_counters`]); most kinds therefore never touch the
/// registry on the hot path. Gauge-writing kinds must stay in sync with
/// [`gauge_writes`].
pub(crate) fn derive_event_metrics(metrics: &MetricsRegistry, event: &Event) {
    match &event.kind {
        EventKind::IoComplete {
            dir, len, latency, ..
        } => {
            metrics.observe("io.latency_us", event.at, latency.as_secs_f64() * 1e6);
            let counter = match dir {
                crate::IoDir::Read => "io.read_bytes",
                crate::IoDir::Write => "io.write_bytes",
            };
            metrics.inc(counter, *len);
        }
        EventKind::PowerSample { watts } => {
            metrics.observe("power.watts", event.at, *watts);
        }
        EventKind::EnergyAttributed(e) => {
            metrics.set_gauge(&format!("energy.stranded_w.{}", e.node), e.stranded_w);
        }
        EventKind::ControllerDecision(d) => {
            metrics.set_gauge("controller.budget_w", d.budget_w);
            metrics.set_gauge("controller.expected_power_w", d.expected_power_w);
            metrics.set_gauge("controller.quarantined", d.quarantined.len() as f64);
        }
        _ => {}
    }
}

/// The gauge writes the kind performs via [`derive_event_metrics`] — the
/// sharded recorder tracks last-writer-in-total-order metadata for
/// exactly these `(name, value)` pairs.
pub(crate) fn gauge_writes(kind: &EventKind) -> Vec<(String, f64)> {
    match kind {
        EventKind::ControllerDecision(d) => vec![
            ("controller.budget_w".to_string(), d.budget_w),
            (
                "controller.expected_power_w".to_string(),
                d.expected_power_w,
            ),
            (
                "controller.quarantined".to_string(),
                d.quarantined.len() as f64,
            ),
        ],
        EventKind::EnergyAttributed(e) => {
            vec![(format!("energy.stranded_w.{}", e.node), e.stranded_w)]
        }
        _ => Vec::new(),
    }
}

impl Recorder for TraceRecorder {
    fn record(&self, event: Event) {
        derive_event_metrics(&self.metrics, &event);
        self.log.record(event);
    }
}

/// What to collect and where to put it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No recorder installed; emit sites are no-ops.
    #[default]
    Off,
    /// Count events; summary to `--trace-out` or stderr at finish.
    Events,
    /// Full metrics snapshot JSON to `--trace-out` or stderr at finish.
    Metrics,
    /// Chrome trace JSON to the given path, plus `<path>.metrics.json`
    /// and `<path>.folded` (collapsed-stack flamegraph).
    Perfetto(String),
}

/// Parsed tracing configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Collection mode.
    pub mode: TraceMode,
    /// `--trace-out` destination override.
    pub out: Option<String>,
}

impl TraceConfig {
    /// Parses a `POWADAPT_TRACE` value.
    pub fn parse(spec: &str) -> Result<TraceConfig, String> {
        let mode = match spec {
            "" | "off" => TraceMode::Off,
            "events" => TraceMode::Events,
            "metrics" => TraceMode::Metrics,
            other => match other.strip_prefix("perfetto:") {
                Some(path) if !path.is_empty() => TraceMode::Perfetto(path.to_string()),
                _ => {
                    return Err(format!(
                        "unrecognized POWADAPT_TRACE `{spec}` \
                         (expected events | metrics | perfetto:<path>)"
                    ))
                }
            },
        };
        Ok(TraceConfig { mode, out: None })
    }

    /// Reads `POWADAPT_TRACE` and scans the process arguments for
    /// `--trace-out <path>` / `--trace-out=<path>`. `--trace-out` alone
    /// implies `perfetto:<path>`. Invalid specs are reported on stderr
    /// and treated as off, so a typo can never change results.
    pub fn from_env_and_cli() -> TraceConfig {
        // The trace destination is host configuration, not simulation
        // input: nothing read here feeds figure data.
        let spec = std::env::var("POWADAPT_TRACE").unwrap_or_default(); // powadapt-lint: allow(D1, reason = "trace sink selection is host configuration; recorded data never feeds back into results")
        let mut config = match TraceConfig::parse(&spec) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("powadapt-obs: {msg}; tracing disabled");
                TraceConfig::default()
            }
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if let Some(path) = arg.strip_prefix("--trace-out=") {
                config.out = Some(path.to_string());
            } else if arg == "--trace-out" {
                config.out = args.next();
            }
        }
        if let (TraceMode::Off, Some(path)) = (&config.mode, &config.out) {
            config.mode = TraceMode::Perfetto(path.clone());
        }
        config
    }
}

/// A tracing scope for a binary: installs a [`TraceRecorder`] as the
/// process-global recorder on `start`, exports everything on
/// [`finish`](TraceSession::finish).
#[derive(Debug)]
pub struct TraceSession {
    config: TraceConfig,
    recorder: Option<Arc<TraceRecorder>>,
}

impl TraceSession {
    /// Starts a session for `config`; a recorder is installed globally
    /// unless the mode is [`TraceMode::Off`].
    pub fn start(config: TraceConfig) -> TraceSession {
        let recorder = match config.mode {
            TraceMode::Off => None,
            _ => {
                let rec = Arc::new(TraceRecorder::new(EventLog::DEFAULT_CAPACITY));
                crate::install(rec.clone());
                Some(rec)
            }
        };
        TraceSession { config, recorder }
    }

    /// [`TraceSession::start`] with [`TraceConfig::from_env_and_cli`].
    pub fn from_env() -> TraceSession {
        TraceSession::start(TraceConfig::from_env_and_cli())
    }

    /// True when a recorder is installed.
    pub fn is_active(&self) -> bool {
        self.recorder.is_some()
    }

    /// The session's recorder, when active.
    pub fn recorder(&self) -> Option<&Arc<TraceRecorder>> {
        self.recorder.as_ref()
    }

    /// Uninstalls the recorder and writes the configured outputs.
    pub fn finish(self) -> io::Result<()> {
        let Some(rec) = self.recorder else {
            return Ok(());
        };
        crate::uninstall();
        match &self.config.mode {
            TraceMode::Off => Ok(()),
            TraceMode::Events => {
                write_or_stderr(self.config.out.as_deref(), &event_counts_json(&rec))
            }
            TraceMode::Metrics => write_or_stderr(
                self.config.out.as_deref(),
                &rec.metrics().snapshot().to_json(),
            ),
            TraceMode::Perfetto(path) => {
                let path = self.config.out.as_deref().unwrap_or(path);
                let events = rec.log().snapshot();
                fs::write(path, chrome_trace(&events))?;
                fs::write(
                    format!("{path}.metrics.json"),
                    rec.metrics().snapshot().to_json(),
                )?;
                fs::write(format!("{path}.events.jsonl"), events_jsonl(&events))?;
                let folded = collapsed_stacks(&events);
                if !folded.is_empty() {
                    fs::write(format!("{path}.folded"), folded)?;
                }
                eprintln!(
                    "powadapt-obs: wrote {} events to {path} (+ .metrics.json, \
                     .events.jsonl, .folded); open at https://ui.perfetto.dev",
                    events.len()
                );
                Ok(())
            }
        }
    }
}

/// Event-count summary as deterministic JSON (sorted kinds).
pub fn event_counts_json(rec: &TraceRecorder) -> String {
    let mut out = String::from("{\n  \"total\": ");
    out.push_str(&rec.log().total().to_string());
    out.push_str(",\n  \"dropped\": ");
    out.push_str(&rec.log().dropped().to_string());
    out.push_str(",\n  \"counts\": {");
    let counts = rec.log().counts();
    for (i, (name, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(&mut out, name);
        out.push_str(&format!(": {n}"));
    }
    if !counts.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

fn write_or_stderr(out: Option<&str>, content: &str) -> io::Result<()> {
    match out {
        Some(path) => fs::write(path, content),
        None => {
            eprintln!("{content}");
            Ok(())
        }
    }
}

impl fmt::Display for TraceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceMode::Off => f.write_str("off"),
            TraceMode::Events => f.write_str("events"),
            TraceMode::Metrics => f.write_str("metrics"),
            TraceMode::Perfetto(path) => write!(f, "perfetto:{path}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::IoDir;
    use powadapt_sim::{SimDuration, SimTime};

    #[test]
    fn parse_modes() {
        assert_eq!(TraceConfig::parse("").map(|c| c.mode), Ok(TraceMode::Off));
        assert_eq!(
            TraceConfig::parse("events").map(|c| c.mode),
            Ok(TraceMode::Events)
        );
        assert_eq!(
            TraceConfig::parse("metrics").map(|c| c.mode),
            Ok(TraceMode::Metrics)
        );
        assert_eq!(
            TraceConfig::parse("perfetto:x.json").map(|c| c.mode),
            Ok(TraceMode::Perfetto("x.json".into()))
        );
        assert!(TraceConfig::parse("perfetto:").is_err());
        assert!(TraceConfig::parse("nope").is_err());
    }

    #[test]
    fn trace_recorder_derives_metrics() {
        let rec = TraceRecorder::new(16);
        rec.record(Event {
            at: SimTime::from_micros(5),
            track: "device0",
            kind: EventKind::IoComplete {
                id: 1,
                dir: IoDir::Read,
                len: 4096,
                latency: SimDuration::from_micros(120),
            },
        });
        rec.record(Event {
            at: SimTime::from_micros(6),
            track: "meter",
            kind: EventKind::PowerSample { watts: 9.5 },
        });
        assert_eq!(rec.metrics().counter("events.io_complete"), 1);
        assert_eq!(rec.metrics().counter("io.read_bytes"), 4096);
        let snap = rec.metrics().snapshot();
        assert_eq!(snap.histograms.len(), 2);
        let json = event_counts_json(&rec);
        assert!(json.contains("\"io_complete\": 1"));
        assert!(json.contains("\"total\": 2"));
    }

    #[test]
    fn mode_display_round_trips() {
        for spec in ["events", "metrics", "perfetto:a.json"] {
            let cfg = TraceConfig::parse(spec).expect("valid spec");
            assert_eq!(cfg.mode.to_string(), spec);
        }
    }
}
