//! Chrome `trace_event` JSON export, loadable in Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`.
//!
//! Mapping:
//!
//! - every distinct `track` becomes a named thread row (pid 1, one tid per
//!   track, sorted, so the layout is stable run-to-run);
//! - [`EventKind::Span`] becomes a complete (`"ph": "X"`) slice with
//!   microsecond `ts`/`dur` rendered as exact decimal nanofractions;
//! - [`EventKind::PowerSample`] becomes a counter (`"ph": "C"`) track, so
//!   Perfetto draws the rig's power waveform alongside the IO slices —
//!   the paper's Figure 3/6 timeline view, reproduced from a simulation;
//! - everything else becomes an instant (`"ph": "i"`) with its payload in
//!   `args`.
//!
//! All numbers are rendered with `{:?}` (shortest round-trip float form)
//! or as integers, so the same events always produce byte-identical JSON.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::metrics::push_json_string;

/// Microsecond timestamp with exact sub-microsecond fraction: Chrome's
/// `ts` unit is µs but fractional values are allowed; dividing by 1000
/// in decimal keeps nanosecond precision without float rounding.
fn micros(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        whole.to_string()
    } else {
        format!("{whole}.{frac:03}")
    }
}

fn push_common(out: &mut String, name: &str, ph: char, ts_ns: u64, tid: usize) {
    out.push_str("{\"name\": ");
    push_json_string(out, name);
    out.push_str(&format!(
        ", \"ph\": \"{ph}\", \"ts\": {}, \"pid\": 1, \"tid\": {tid}",
        micros(ts_ns)
    ));
}

fn push_args(out: &mut String, args: &[(&str, String)]) {
    out.push_str(", \"args\": {");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_string(out, k);
        out.push_str(": ");
        out.push_str(v);
    }
    out.push('}');
}

fn jstr(s: &str) -> String {
    let mut out = String::new();
    push_json_string(&mut out, s);
    out
}

/// Renders `events` as a Chrome `trace_event` JSON document.
pub fn chrome_trace(events: &[Event]) -> String {
    // Stable tid assignment: sorted track names.
    let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
    for e in events {
        let next = tids.len();
        tids.entry(e.track).or_insert(next);
    }
    let mut tracks: Vec<&str> = tids.keys().copied().collect();
    tracks.sort_unstable();
    let tids: BTreeMap<&str, usize> = tracks.iter().enumerate().map(|(i, t)| (*t, i)).collect();

    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    let mut push_line = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&line);
    };

    // Thread-name metadata first, in tid order.
    for track in &tracks {
        let tid = tids[track];
        let mut line = String::new();
        line.push_str("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, ");
        line.push_str(&format!("\"tid\": {tid}, \"args\": {{\"name\": "));
        push_json_string(&mut line, track);
        line.push_str("}}");
        push_line(line, &mut out);
    }

    for e in events {
        let tid = tids[e.track];
        let ns = e.at.as_nanos();
        let mut line = String::new();
        match &e.kind {
            EventKind::Span { label, dur } => {
                push_common(&mut line, label, 'X', ns, tid);
                line.push_str(&format!(", \"dur\": {}}}", micros(dur.as_nanos())));
            }
            EventKind::PowerSample { watts } => {
                // One counter track per source; Perfetto renders it as a
                // stepped waveform.
                push_common(&mut line, &format!("{} power (W)", e.track), 'C', ns, tid);
                push_args(&mut line, &[("watts", format!("{watts:?}"))]);
                line.push('}');
            }
            kind => {
                push_common(&mut line, kind.name(), 'i', ns, tid);
                line.push_str(", \"s\": \"t\"");
                push_args(&mut line, &instant_args(kind));
                line.push('}');
            }
        }
        push_line(line, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Typed payload → `args` key/value pairs (values pre-rendered as JSON).
fn instant_args(kind: &EventKind) -> Vec<(&'static str, String)> {
    match kind {
        EventKind::IoSubmit { id, dir, len } => vec![
            ("id", id.to_string()),
            ("dir", jstr(dir.as_str())),
            ("len", len.to_string()),
        ],
        EventKind::IoComplete {
            id,
            dir,
            len,
            latency,
        } => vec![
            ("id", id.to_string()),
            ("dir", jstr(dir.as_str())),
            ("len", len.to_string()),
            ("latency_us", format!("{:?}", latency.as_secs_f64() * 1e6)),
        ],
        EventKind::IoError { id, error } => vec![("id", id.to_string()), ("error", jstr(error))],
        EventKind::ArrivalDropped { id } => vec![("id", id.to_string())],
        EventKind::PowerStateTransition { from, to } => {
            vec![("from", from.to_string()), ("to", to.to_string())]
        }
        EventKind::CapApplied { cap_w, power_w } => vec![
            ("cap_w", format!("{cap_w:?}")),
            ("power_w", format!("{power_w:?}")),
        ],
        EventKind::FaultInjected { fault } => vec![("fault", jstr(fault))],
        EventKind::ControllerDecision(d) => vec![
            ("budget_w", format!("{:?}", d.budget_w)),
            ("measured_w", format!("{:?}", d.measured_w)),
            ("expected_power_w", format!("{:?}", d.expected_power_w)),
            (
                "expected_throughput_bps",
                format!("{:?}", d.expected_throughput_bps),
            ),
            ("quarantined", jstr_list(&d.quarantined)),
            ("degraded", jstr_list(&d.degraded)),
        ],
        EventKind::BreakerTrip { node } | EventKind::BreakerRestore { node } => {
            vec![("node", jstr(node))]
        }
        EventKind::RebalanceDecision(d) => vec![
            ("node", jstr(&d.node)),
            ("cap_w", format!("{:?}", d.cap_w)),
            ("granted_w", format!("{:?}", d.granted_w)),
            ("demand_w", format!("{:?}", d.demand_w)),
        ],
        EventKind::EnergyAttributed(e) => vec![
            ("node", jstr(&e.node)),
            ("joules", format!("{:?}", e.joules)),
            ("stranded_w", format!("{:?}", e.stranded_w)),
        ],
        EventKind::ConservationViolation(v) => {
            vec![("node", jstr(&v.node)), ("detail", jstr(&v.detail))]
        }
        EventKind::SloBurnAlert { tenant, burn_rate } => vec![
            ("tenant", jstr(tenant)),
            ("burn_rate", format!("{burn_rate:?}")),
        ],
        EventKind::ShardMerged { shard, events } => {
            vec![("shard", shard.to_string()), ("events", events.to_string())]
        }
        EventKind::PlacementDecision {
            extent,
            primary,
            replicas,
        } => vec![
            ("extent", extent.to_string()),
            ("primary", primary.to_string()),
            ("replicas", replicas.to_string()),
        ],
        EventKind::MigrationStarted { extent, from, to }
        | EventKind::MigrationCompleted { extent, from, to } => vec![
            ("extent", extent.to_string()),
            ("from", from.to_string()),
            ("to", to.to_string()),
        ],
        EventKind::RoutedAround { id, skipped } => {
            vec![("id", id.to_string()), ("skipped", skipped.to_string())]
        }
        _ => Vec::new(),
    }
}

/// Renders `events` as deterministic JSON-lines: one object per event,
/// fixed key order (`at` in ns, `track`, `kind`, then the typed payload).
/// This is the machine-diffable companion to [`chrome_trace`] — the
/// `trace_query` CLI filters, summarizes, and diffs these files.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str("{\"at\": ");
        out.push_str(&e.at.as_nanos().to_string());
        out.push_str(", \"track\": ");
        push_json_string(&mut out, e.track);
        out.push_str(", \"kind\": ");
        push_json_string(&mut out, e.kind.name());
        for (k, v) in jsonl_args(&e.kind) {
            out.push_str(", ");
            push_json_string(&mut out, k);
            out.push_str(": ");
            out.push_str(&v);
        }
        out.push_str("}\n");
    }
    out
}

/// Payload args for the JSONL export: like [`instant_args`], plus the
/// kinds the Chrome export renders specially.
fn jsonl_args(kind: &EventKind) -> Vec<(&'static str, String)> {
    match kind {
        EventKind::Span { label, dur } => vec![
            ("label", jstr(label)),
            ("dur_ns", dur.as_nanos().to_string()),
        ],
        EventKind::PowerSample { watts } => vec![("watts", format!("{watts:?}"))],
        kind => instant_args(kind),
    }
}

fn jstr_list(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_string(&mut out, item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::IoDir;
    use powadapt_sim::{SimDuration, SimTime};

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn micros_renders_exact_fractions() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_000), "1");
        assert_eq!(micros(1_500), "1.500");
        assert_eq!(micros(42), "0.042");
    }

    #[test]
    fn trace_has_thread_names_spans_and_counters() {
        let events = vec![
            Event {
                at: at(1_000),
                track: "device0",
                kind: EventKind::Span {
                    label: "die0.program",
                    dur: SimDuration::from_micros(200),
                },
            },
            Event {
                at: at(2_000),
                track: "meter",
                kind: EventKind::PowerSample { watts: 11.25 },
            },
            Event {
                at: at(3_000),
                track: "device0",
                kind: EventKind::IoSubmit {
                    id: 9,
                    dir: IoDir::Write,
                    len: 4096,
                },
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\": \"device0\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 200"));
        assert!(json.contains("meter power (W)"));
        assert!(json.contains("\"watts\": 11.25"));
        assert!(json.contains("\"io_submit\""));
        assert!(json.ends_with("]}\n"));
        // Deterministic: same events, same bytes.
        assert_eq!(json, chrome_trace(&events));
    }

    #[test]
    fn events_jsonl_is_one_object_per_line() {
        let events = vec![
            Event {
                at: at(1_000),
                track: "device0",
                kind: EventKind::IoSubmit {
                    id: 9,
                    dir: IoDir::Write,
                    len: 4096,
                },
            },
            Event {
                at: at(2_000),
                track: "meter",
                kind: EventKind::PowerSample { watts: 11.25 },
            },
            Event {
                at: at(3_000),
                track: "device0",
                kind: EventKind::Span {
                    label: "die0.program",
                    dur: SimDuration::from_micros(200),
                },
            },
        ];
        let jsonl = events_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"at\": 1000, \"track\": \"device0\", \"kind\": \"io_submit\", \
             \"id\": 9, \"dir\": \"write\", \"len\": 4096}"
        );
        assert!(lines[1].contains("\"watts\": 11.25"));
        assert!(lines[2].contains("\"dur_ns\": 200000"));
        assert_eq!(jsonl, events_jsonl(&events));
    }

    #[test]
    fn tids_are_sorted_by_track_name() {
        let events = vec![
            Event {
                at: at(0),
                track: "zeta",
                kind: EventKind::SpinUp,
            },
            Event {
                at: at(1),
                track: "alpha",
                kind: EventKind::SpinDown,
            },
        ];
        let json = chrome_trace(&events);
        let alpha = json.find("\"name\": \"alpha\"").unwrap_or(usize::MAX);
        let zeta = json.find("\"name\": \"zeta\"").unwrap_or(usize::MAX);
        assert!(alpha < zeta);
    }
}
