//! The metrics registry: counters, gauges, and sketch-backed histograms,
//! snapshotable as hand-rolled deterministic JSON.
//!
//! Everything lives behind one mutex, which is what makes multi-counter
//! updates ([`MetricsRegistry::inc_many`]) and [`MetricsRegistry::
//! snapshot`] *atomic*: a reader can never observe a torn set of totals,
//! no matter how many sweep workers are publishing. Keys are sorted
//! (`BTreeMap`) so snapshots and their JSON rendering are byte-stable.
//!
//! Histograms are [`Sketch`]es (log-bucket quantile sketches, γ =
//! [`crate::sketch::RELATIVE_ERROR`]) rather than stored-sample lists:
//! memory is O(buckets) regardless of stream length, the observe path
//! allocates nothing in steady state, and two registries merge
//! deterministically ([`MetricsRegistry::merge_from`]) — the property the
//! sharded recorder is built on.

use std::fmt;
use std::sync::{Mutex, MutexGuard, OnceLock};

use powadapt_sim::{SimDuration, SimTime};

use std::collections::BTreeMap;

use crate::sketch::{Sketch, WindowedSketch};

#[derive(Debug, Clone)]
enum Histogram {
    /// Unwindowed: one sketch accumulating forever.
    Plain(Sketch),
    /// Sim-time-windowed: a slice-ring sketch that evicts in O(buckets).
    Windowed(WindowedSketch),
}

impl Histogram {
    fn fold(&self) -> Sketch {
        match self {
            Histogram::Plain(s) => s.clone(),
            Histogram::Windowed(w) => w.fold(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Add `by` to counter `name` (created at zero on first use).
    ///
    /// Steady state (the counter exists) looks the key up by `&str` and
    /// allocates nothing; only the first increment of a name copies it.
    // powadapt-lint: hot
    pub fn inc(&self, name: &str, by: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                inner.counters.insert(name.to_string(), by); // powadapt-lint: allow(d9, reason = "first increment of a name registers the counter; every later inc takes the alloc-free lookup above")
            }
        }
    }

    /// Apply several counter deltas under one lock acquisition, so readers
    /// see either none or all of them — the executor publishes its
    /// per-sweep totals this way to keep session stats tear-free.
    pub fn inc_many(&self, deltas: &[(&str, u64)]) {
        let mut inner = self.lock();
        for (name, by) in deltas {
            match inner.counters.get_mut(*name) {
                Some(c) => *c += by,
                None => {
                    inner.counters.insert((*name).to_string(), *by);
                }
            }
        }
    }

    /// Set counter `name` to an absolute value.
    ///
    /// This is how lazily derived counters (the `events.<kind>` family,
    /// which mirrors the event log's per-kind totals) are published at
    /// read time instead of being re-counted on the record hot path.
    pub fn set_counter(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c = value,
            None => {
                inner.counters.insert(name.to_string(), value);
            }
        }
    }

    /// Read counter `name` (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Read gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Constrain histogram `name` to a sliding sim-time window.
    ///
    /// (Re)creates the histogram as a windowed sketch: set the window
    /// *before* observing — any previously recorded samples are dropped,
    /// since a plain sketch carries no per-sample timestamps to re-window.
    pub fn set_window(&self, name: &str, window: SimDuration) {
        let mut inner = self.lock();
        inner.histograms.insert(
            name.to_string(),
            Histogram::Windowed(WindowedSketch::new(window)),
        );
    }

    /// Record `value` at sim time `at` into histogram `name`.
    ///
    /// Steady state (the histogram exists) touches only fixed bucket
    /// arrays: no allocation, O(buckets) worst case for a window slice
    /// eviction.
    // powadapt-lint: hot
    pub fn observe(&self, name: &str, at: SimTime, value: f64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(Histogram::Plain(s)) => s.observe(value),
            Some(Histogram::Windowed(w)) => w.observe(at.as_nanos(), value),
            None => {
                drop(inner);
                self.observe_new(name, value); // powadapt-lint: allow(d9, reason = "first observation of a name registers the histogram; every later observe takes the alloc-free path above")
            }
        }
    }

    /// Cold path of [`observe`](Self::observe): registers a fresh plain
    /// sketch under `name`. Runs once per histogram name.
    fn observe_new(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        let hist = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::Plain(Sketch::new()));
        match hist {
            Histogram::Plain(s) => s.observe(value),
            Histogram::Windowed(_) => {
                // Lost a race with a concurrent set_window: drop this one
                // sample rather than invent a timestamp for the window.
            }
        }
    }

    /// Atomically read every metric. Keys come out sorted; two snapshots
    /// of identical registry state render to identical JSON.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .filter_map(|(k, h)| {
                    let s = h.fold();
                    if s.is_empty() {
                        return None;
                    }
                    Some(HistogramSnapshot {
                        name: k.clone(),
                        count: s.count(),
                        min: s.min()?,
                        max: s.max()?,
                        mean: s.mean()?,
                        p50: s.percentile(50.0)?,
                        p95: s.percentile(95.0)?,
                        p99: s.percentile(99.0)?,
                    })
                })
                .collect(),
        }
    }

    /// Folds another registry into this one — the shard-merge primitive.
    ///
    /// Counters add exactly; histograms merge by sketch bucket addition
    /// (associative, commutative, byte-stable). Same-name histograms with
    /// incompatible window configurations keep this registry's — a config
    /// mismatch is a caller bug, and keeping the receiver is the
    /// deterministic resolution. Gauges are **not** merged here: a gauge
    /// is last-writer-wins and only a caller that knows the event order
    /// (the sharded recorder) can pick the winner; see
    /// `ShardedRecorder::merged`.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let theirs = other.lock();
        let mut mine = self.lock();
        for (k, &v) in &theirs.counters {
            *mine.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &theirs.histograms {
            match (mine.histograms.get_mut(k), h) {
                (Some(Histogram::Plain(s)), Histogram::Plain(o)) => s.merge_from(o),
                (Some(Histogram::Windowed(w)), Histogram::Windowed(o)) => {
                    let _ = w.merge_from(o);
                }
                (Some(_), _) => {} // kind mismatch: keep the receiver's
                (None, _) => {
                    mine.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Remove every metric whose name starts with `prefix` — how a session
    /// scope (e.g. the executor's `executor.` counters) resets without
    /// disturbing unrelated metrics.
    pub fn remove_prefix(&self, prefix: &str) {
        let mut inner = self.lock();
        inner.counters.retain(|k, _| !k.starts_with(prefix));
        inner.gauges.retain(|k, _| !k.starts_with(prefix));
        inner.histograms.retain(|k, _| !k.starts_with(prefix));
    }

    /// Drop every metric.
    pub fn clear(&self) {
        *self.lock() = Inner::default();
    }
}

impl powadapt_snap::Snapshot for MetricsRegistry {
    /// Serializes the registry raw: counters, gauges, and each
    /// histogram's full sketch state (not percentile summaries), so a
    /// restored registry's windows keep evicting correctly and its
    /// snapshots stay byte-identical.
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        let inner = self.lock();
        w.seq_len(inner.counters.len());
        for (k, &v) in &inner.counters {
            w.str(k);
            w.u64(v);
        }
        w.seq_len(inner.gauges.len());
        for (k, &v) in &inner.gauges {
            w.str(k);
            w.f64(v);
        }
        w.seq_len(inner.histograms.len());
        for (k, h) in &inner.histograms {
            w.str(k);
            match h {
                Histogram::Plain(s) => {
                    w.u8(0);
                    s.write_state(w)?;
                }
                Histogram::Windowed(ws) => {
                    w.u8(1);
                    ws.write_state(w)?;
                }
            }
        }
        Ok(())
    }
}

impl powadapt_snap::Restore for MetricsRegistry {
    /// Replaces the registry's contents with the checkpointed metrics;
    /// observations after the restore accumulate on top.
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        let mut fresh = Inner::default();
        let n = r.seq_len()?;
        for _ in 0..n {
            let k = r.str()?;
            let v = r.u64()?;
            if fresh.counters.insert(k.clone(), v).is_some() {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "duplicate counter {k:?}"
                )));
            }
        }
        let n = r.seq_len()?;
        for _ in 0..n {
            let k = r.str()?;
            let v = r.f64()?;
            if fresh.gauges.insert(k.clone(), v).is_some() {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "duplicate gauge {k:?}"
                )));
            }
        }
        let n = r.seq_len()?;
        for _ in 0..n {
            let k = r.str()?;
            let hist = match r.u8()? {
                0 => {
                    let mut s = Sketch::new();
                    s.read_state(r)?;
                    Histogram::Plain(s)
                }
                1 => {
                    let mut ws = WindowedSketch::new(SimDuration::ZERO);
                    ws.read_state(r)?;
                    Histogram::Windowed(ws)
                }
                tag => {
                    return Err(powadapt_snap::SnapError::InvalidValue(format!(
                        "unknown histogram tag {tag}"
                    )))
                }
            };
            if fresh.histograms.insert(k.clone(), hist).is_some() {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "duplicate histogram {k:?}"
                )));
            }
        }
        *self.lock() = fresh;
        Ok(())
    }
}

/// The process-global metrics registry.
///
/// Long-lived infrastructure (the parallel sweep executor) publishes here;
/// per-run recorders keep their own [`MetricsRegistry`] instead.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// Percentile summary of one histogram, derived from its sketch.
///
/// `min`/`max` are exact; `mean` and the percentiles are within the
/// sketch's relative-error bound ([`crate::sketch::RELATIVE_ERROR`]) of
/// the exact sample statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Samples summarized (post-windowing).
    pub count: u64,
    /// Smallest sample (exact).
    pub min: f64,
    /// Largest sample (exact).
    pub max: f64,
    /// Sketch-derived arithmetic mean.
    pub mean: f64,
    /// Sketch-estimated 50th percentile (interpolated ranks).
    pub p50: f64,
    /// Sketch-estimated 95th percentile.
    pub p95: f64,
    /// Sketch-estimated 99th percentile.
    pub p99: f64,
}

/// An atomic, sorted copy of a registry's state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name. Empty histograms are omitted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter `name` in this snapshot (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Hand-rolled deterministic JSON: keys in sorted order, floats via
    /// `{:?}` (shortest round-trip form), no whitespace variability.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, &self.counters, |v| v.to_string());
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, &self.gauges, |v| format!("{v:?}"));
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, &h.name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"min\": {:?}, \"max\": {:?}, \"mean\": {:?}, \
                 \"p50\": {:?}, \"p95\": {:?}, \"p99\": {:?}}}",
                h.count, h.min, h.max, h.mean, h.p50, h.p95, h.p99
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_entries<V: Copy>(out: &mut String, entries: &[(String, V)], render: impl Fn(V) -> String) {
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(out, k);
        out.push_str(": ");
        out.push_str(&render(*v));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

/// Append `s` as a JSON string literal, escaping the characters JSON
/// requires (quotes, backslashes, control bytes).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_inc_many() {
        let m = MetricsRegistry::new();
        m.inc("a", 2);
        m.inc_many(&[("a", 3), ("b", 1)]);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("b"), 1);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_json_stable() {
        let m = MetricsRegistry::new();
        m.inc("z", 1);
        m.inc("a", 2);
        m.set_gauge("power", 11.5);
        m.observe("lat", SimTime::from_nanos(10), 1.0);
        m.observe("lat", SimTime::from_nanos(20), 3.0);
        let s1 = m.snapshot();
        let s2 = m.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.to_json(), s2.to_json());
        assert_eq!(
            s1.counters,
            vec![("a".to_string(), 2), ("z".to_string(), 1)]
        );
        let json = s1.to_json();
        assert!(json.contains("\"a\": 2"));
        assert!(json.contains("\"power\": 11.5"));
        assert!(json.contains("\"count\": 2"));
    }

    #[test]
    fn windowed_histogram_evicts() {
        let m = MetricsRegistry::new();
        m.set_window("w", SimDuration::from_nanos(150));
        m.observe("w", SimTime::from_nanos(0), 1.0);
        m.observe("w", SimTime::from_nanos(50), 2.0);
        m.observe("w", SimTime::from_nanos(200), 3.0);
        let snap = m.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 2); // the slice holding t=0 expired by t=200
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.inc("ios", 3);
        b.inc("ios", 4);
        b.inc("only_b", 1);
        for i in 0..10 {
            a.observe("lat", SimTime::from_nanos(i), i as f64 + 1.0);
            b.observe("lat", SimTime::from_nanos(i), i as f64 + 101.0);
        }
        a.merge_from(&b);
        assert_eq!(a.counter("ios"), 7);
        assert_eq!(a.counter("only_b"), 1);
        let snap = a.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 20);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 110.0);
    }

    #[test]
    fn remove_prefix_scopes_reset() {
        let m = MetricsRegistry::new();
        m.inc("executor.sweeps", 4);
        m.inc("other", 7);
        m.remove_prefix("executor.");
        assert_eq!(m.counter("executor.sweeps"), 0);
        assert_eq!(m.counter("other"), 7);
    }

    #[test]
    fn json_escapes_strings() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\n");
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn registry_snapshot_roundtrip_is_exact() {
        use powadapt_snap::{Restore, SnapReader, SnapWriter, Snapshot};
        let reg = MetricsRegistry::new();
        reg.inc("ios", 7);
        reg.set_gauge("power_w", 12.5);
        reg.set_window("lat", SimDuration::from_millis(10));
        for i in 0..20u64 {
            reg.observe("lat", SimTime::from_nanos(i * 1_000_000), i as f64);
        }
        reg.observe("plain", SimTime::ZERO, 42.0);
        let mut w = SnapWriter::new();
        reg.write_state(&mut w).unwrap();
        let payload = w.into_payload();

        let mut resumed = MetricsRegistry::new();
        let mut r = SnapReader::new(&payload);
        resumed.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(resumed.snapshot().to_json(), reg.snapshot().to_json());

        // The serialized form itself is byte-stable across the roundtrip.
        let mut again = SnapWriter::new();
        resumed.write_state(&mut again).unwrap();
        assert_eq!(again.into_payload(), payload);

        // The restored window keeps evicting: a far-future sample leaves
        // only itself in the 10 ms window.
        resumed.observe("lat", SimTime::from_nanos(1_000_000_000), 9.0);
        reg.observe("lat", SimTime::from_nanos(1_000_000_000), 9.0);
        assert_eq!(resumed.snapshot().to_json(), reg.snapshot().to_json());
    }
}
