//! The metrics registry: counters, gauges, and sim-time-windowed
//! histograms, snapshotable as hand-rolled deterministic JSON.
//!
//! Everything lives behind one mutex, which is what makes multi-counter
//! updates ([`MetricsRegistry::inc_many`]) and [`MetricsRegistry::
//! snapshot`] *atomic*: a reader can never observe a torn set of totals,
//! no matter how many sweep workers are publishing. Keys are sorted
//! (`BTreeMap`) so snapshots and their JSON rendering are byte-stable.

use std::fmt;
use std::sync::{Mutex, MutexGuard, OnceLock};

use powadapt_sim::Summary;
use powadapt_sim::{SimDuration, SimTime};

use std::collections::BTreeMap;

#[derive(Debug, Default)]
struct Histogram {
    /// When set, samples older than `newest - window` are evicted on
    /// observe, so the histogram summarizes a sliding sim-time window.
    window: Option<SimDuration>,
    samples: Vec<(SimTime, f64)>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Add `by` to counter `name` (created at zero on first use).
    pub fn inc(&self, name: &str, by: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Apply several counter deltas under one lock acquisition, so readers
    /// see either none or all of them — the executor publishes its
    /// per-sweep totals this way to keep session stats tear-free.
    pub fn inc_many(&self, deltas: &[(&str, u64)]) {
        let mut inner = self.lock();
        for (name, by) in deltas {
            *inner.counters.entry((*name).to_string()).or_insert(0) += by;
        }
    }

    /// Read counter `name` (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Read gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Constrain histogram `name` to a sliding sim-time window. Takes
    /// effect for subsequent [`observe`](Self::observe) calls.
    pub fn set_window(&self, name: &str, window: SimDuration) {
        let mut inner = self.lock();
        inner.histograms.entry(name.to_string()).or_default().window = Some(window);
    }

    /// Record `value` at sim time `at` into histogram `name`.
    pub fn observe(&self, name: &str, at: SimTime, value: f64) {
        let mut inner = self.lock();
        let hist = inner.histograms.entry(name.to_string()).or_default();
        hist.samples.push((at, value));
        if let Some(window) = hist.window {
            let cutoff = SimTime::from_nanos(at.as_nanos().saturating_sub(window.as_nanos()));
            hist.samples.retain(|&(t, _)| t >= cutoff);
        }
    }

    /// Atomically read every metric. Keys come out sorted; two snapshots
    /// of identical registry state render to identical JSON.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .filter_map(|(k, h)| {
                    let values: Vec<f64> = h.samples.iter().map(|&(_, v)| v).collect();
                    let summary = Summary::from_samples(&values)?;
                    Some(HistogramSnapshot {
                        name: k.clone(),
                        count: summary.len() as u64,
                        min: summary.min(),
                        max: summary.max(),
                        mean: summary.mean(),
                        p50: summary.percentile(50.0),
                        p95: summary.percentile(95.0),
                        p99: summary.percentile(99.0),
                    })
                })
                .collect(),
        }
    }

    /// Remove every metric whose name starts with `prefix` — how a session
    /// scope (e.g. the executor's `executor.` counters) resets without
    /// disturbing unrelated metrics.
    pub fn remove_prefix(&self, prefix: &str) {
        let mut inner = self.lock();
        inner.counters.retain(|k, _| !k.starts_with(prefix));
        inner.gauges.retain(|k, _| !k.starts_with(prefix));
        inner.histograms.retain(|k, _| !k.starts_with(prefix));
    }

    /// Drop every metric.
    pub fn clear(&self) {
        *self.lock() = Inner::default();
    }
}

impl powadapt_snap::Snapshot for MetricsRegistry {
    /// Serializes the registry raw: counters, gauges, and each
    /// histogram's window and full `(time, value)` sample list —
    /// not percentile summaries — so a restored registry's windows keep
    /// evicting correctly and its snapshots stay byte-identical.
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        let inner = self.lock();
        w.seq_len(inner.counters.len());
        for (k, &v) in &inner.counters {
            w.str(k);
            w.u64(v);
        }
        w.seq_len(inner.gauges.len());
        for (k, &v) in &inner.gauges {
            w.str(k);
            w.f64(v);
        }
        w.seq_len(inner.histograms.len());
        for (k, h) in &inner.histograms {
            w.str(k);
            match h.window {
                Some(d) => {
                    w.bool(true);
                    powadapt_sim::snapshot::write_duration(w, d);
                }
                None => w.bool(false),
            }
            w.seq_len(h.samples.len());
            for &(t, v) in &h.samples {
                powadapt_sim::snapshot::write_time(w, t);
                w.f64(v);
            }
        }
        Ok(())
    }
}

impl powadapt_snap::Restore for MetricsRegistry {
    /// Replaces the registry's contents with the checkpointed metrics;
    /// observations after the restore accumulate on top.
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        let mut fresh = Inner::default();
        let n = r.seq_len()?;
        for _ in 0..n {
            let k = r.str()?;
            let v = r.u64()?;
            if fresh.counters.insert(k.clone(), v).is_some() {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "duplicate counter {k:?}"
                )));
            }
        }
        let n = r.seq_len()?;
        for _ in 0..n {
            let k = r.str()?;
            let v = r.f64()?;
            if fresh.gauges.insert(k.clone(), v).is_some() {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "duplicate gauge {k:?}"
                )));
            }
        }
        let n = r.seq_len()?;
        for _ in 0..n {
            let k = r.str()?;
            let window = if r.bool()? {
                Some(powadapt_sim::snapshot::read_duration(r)?)
            } else {
                None
            };
            let m = r.seq_len()?;
            let mut samples = Vec::with_capacity(m);
            for _ in 0..m {
                let t = powadapt_sim::snapshot::read_time(r)?;
                samples.push((t, r.f64()?));
            }
            if fresh
                .histograms
                .insert(k.clone(), Histogram { window, samples })
                .is_some()
            {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "duplicate histogram {k:?}"
                )));
            }
        }
        *self.lock() = fresh;
        Ok(())
    }
}

/// The process-global metrics registry.
///
/// Long-lived infrastructure (the parallel sweep executor) publishes here;
/// per-run recorders keep their own [`MetricsRegistry`] instead.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// Exact percentile summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Samples summarized (post-windowing).
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Exact 50th percentile (linear interpolation between ranks).
    pub p50: f64,
    /// Exact 95th percentile.
    pub p95: f64,
    /// Exact 99th percentile.
    pub p99: f64,
}

/// An atomic, sorted copy of a registry's state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name. Empty histograms are omitted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter `name` in this snapshot (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Hand-rolled deterministic JSON: keys in sorted order, floats via
    /// `{:?}` (shortest round-trip form), no whitespace variability.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, &self.counters, |v| v.to_string());
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, &self.gauges, |v| format!("{v:?}"));
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, &h.name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"min\": {:?}, \"max\": {:?}, \"mean\": {:?}, \
                 \"p50\": {:?}, \"p95\": {:?}, \"p99\": {:?}}}",
                h.count, h.min, h.max, h.mean, h.p50, h.p95, h.p99
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_entries<V: Copy>(out: &mut String, entries: &[(String, V)], render: impl Fn(V) -> String) {
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(out, k);
        out.push_str(": ");
        out.push_str(&render(*v));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

/// Append `s` as a JSON string literal, escaping the characters JSON
/// requires (quotes, backslashes, control bytes).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_inc_many() {
        let m = MetricsRegistry::new();
        m.inc("a", 2);
        m.inc_many(&[("a", 3), ("b", 1)]);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("b"), 1);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_json_stable() {
        let m = MetricsRegistry::new();
        m.inc("z", 1);
        m.inc("a", 2);
        m.set_gauge("power", 11.5);
        m.observe("lat", SimTime::from_nanos(10), 1.0);
        m.observe("lat", SimTime::from_nanos(20), 3.0);
        let s1 = m.snapshot();
        let s2 = m.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.to_json(), s2.to_json());
        assert_eq!(
            s1.counters,
            vec![("a".to_string(), 2), ("z".to_string(), 1)]
        );
        let json = s1.to_json();
        assert!(json.contains("\"a\": 2"));
        assert!(json.contains("\"power\": 11.5"));
        assert!(json.contains("\"count\": 2"));
    }

    #[test]
    fn windowed_histogram_evicts() {
        let m = MetricsRegistry::new();
        m.set_window("w", SimDuration::from_nanos(150));
        m.observe("w", SimTime::from_nanos(0), 1.0);
        m.observe("w", SimTime::from_nanos(50), 2.0);
        m.observe("w", SimTime::from_nanos(200), 3.0);
        let snap = m.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 2); // sample at t=0 evicted by the t=200 cutoff
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn remove_prefix_scopes_reset() {
        let m = MetricsRegistry::new();
        m.inc("executor.sweeps", 4);
        m.inc("other", 7);
        m.remove_prefix("executor.");
        assert_eq!(m.counter("executor.sweeps"), 0);
        assert_eq!(m.counter("other"), 7);
    }

    #[test]
    fn json_escapes_strings() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\n");
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn registry_snapshot_roundtrip_is_exact() {
        use powadapt_snap::{Restore, SnapReader, SnapWriter, Snapshot};
        let reg = MetricsRegistry::new();
        reg.inc("ios", 7);
        reg.set_gauge("power_w", 12.5);
        reg.set_window("lat", SimDuration::from_millis(10));
        for i in 0..20u64 {
            reg.observe("lat", SimTime::from_nanos(i * 1_000_000), i as f64);
        }
        let mut w = SnapWriter::new();
        reg.write_state(&mut w).unwrap();
        let payload = w.into_payload();

        let mut resumed = MetricsRegistry::new();
        let mut r = SnapReader::new(&payload);
        resumed.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(resumed.snapshot().to_json(), reg.snapshot().to_json());

        // The restored window keeps evicting: a far-future sample leaves
        // only itself in the 10 ms window.
        resumed.observe("lat", SimTime::from_nanos(1_000_000_000), 9.0);
        reg.observe("lat", SimTime::from_nanos(1_000_000_000), 9.0);
        assert_eq!(resumed.snapshot().to_json(), reg.snapshot().to_json());
    }
}
