//! Span-based sim-time profiling: per-label self/total aggregation and
//! collapsed-stack flamegraph export.
//!
//! Spans are recorded as [`EventKind::Span`] events — start time plus a
//! known sim-time duration (the simulator schedules completions up front,
//! so durations are known at span start). Nesting is reconstructed per
//! track from interval containment: span B is a child of span A when B
//! lies inside A's `[start, end]` and A is the innermost such span. That
//! keeps the hot emit path allocation-free of bookkeeping — no enter/exit
//! pairing, no thread-local stacks — and the reconstruction is exact for
//! a single run, where sim time never goes backwards within a track.
//! When one track carries several concurrent runs (parallel sweep cells
//! reuse device labels), their spans interleave; partial overlaps are
//! treated as siblings, never as nesting, so stacks stay bounded by true
//! containment depth.

use std::collections::BTreeMap;

use powadapt_sim::SimTime;

use crate::event::{Event, EventKind};

/// Aggregated sim-time cost of one span label within one track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Number of spans with this label.
    pub count: u64,
    /// Total nanoseconds, including child spans.
    pub total_ns: u64,
    /// Self nanoseconds: total minus direct children.
    pub self_ns: u64,
}

#[derive(Debug, Clone)]
struct SpanRec {
    start: SimTime,
    end: SimTime,
    label: &'static str,
}

/// Extracts `(track, spans)` sorted by start time (stable on ties, which
/// preserves emit order — outer spans are emitted before inner ones that
/// start at the same instant).
fn spans_by_track(events: &[Event]) -> BTreeMap<&'static str, Vec<SpanRec>> {
    let mut by_track: BTreeMap<&'static str, Vec<SpanRec>> = BTreeMap::new();
    for e in events {
        if let EventKind::Span { label, dur } = &e.kind {
            by_track.entry(e.track).or_default().push(SpanRec {
                start: e.at,
                end: e.at + *dur,
                label,
            });
        }
    }
    for spans in by_track.values_mut() {
        spans.sort_by(|a, b| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));
    }
    by_track
}

/// Walks one track's spans with an explicit enclosure stack, invoking
/// `visit(stack_labels, span, self_ns)` for every span once its direct
/// children are known. `stack_labels` excludes the span itself.
fn walk_track(spans: &[SpanRec], mut visit: impl FnMut(&[&'static str], &SpanRec, u64)) {
    // Stack entries: (span index, accumulated child nanos).
    let mut stack: Vec<(usize, u64)> = Vec::new();
    let mut labels: Vec<&'static str> = Vec::new();

    let pop_top = |stack: &mut Vec<(usize, u64)>,
                   labels: &mut Vec<&'static str>,
                   visit: &mut dyn FnMut(&[&'static str], &SpanRec, u64)| {
        if let Some((top, child_ns)) = stack.pop() {
            labels.pop();
            let total = spans[top].end.duration_since(spans[top].start).as_nanos();
            let self_ns = total.saturating_sub(child_ns);
            visit(labels, &spans[top], self_ns);
            // Credit this span's total to its parent as child time.
            if let Some(last) = stack.last_mut() {
                last.1 += total;
            }
        }
    };

    for (i, s) in spans.iter().enumerate() {
        // Close spans that ended before `s` starts.
        while stack
            .last()
            .is_some_and(|&(top, _)| spans[top].end <= s.start)
        {
            pop_top(&mut stack, &mut labels, &mut visit);
        }
        // A span still open here is `s`'s parent only if it *fully*
        // contains `s`. Partial overlap means interleaving, not nesting —
        // one track can carry several concurrent runs (parallel sweep
        // cells reuse device labels), and stacking overlaps would let the
        // enclosure stack grow without bound. Close them as siblings.
        while stack.last().is_some_and(|&(top, _)| spans[top].end < s.end) {
            pop_top(&mut stack, &mut labels, &mut visit);
        }
        stack.push((i, 0));
        labels.push(s.label);
    }
    while !stack.is_empty() {
        pop_top(&mut stack, &mut labels, &mut visit);
    }
}

/// Per-`(track, label)` self/total aggregation over every span event.
/// Keys are `"track/label"`, sorted.
pub fn span_totals(events: &[Event]) -> BTreeMap<String, SpanStat> {
    let mut totals: BTreeMap<String, SpanStat> = BTreeMap::new();
    for (track, spans) in spans_by_track(events) {
        walk_track(&spans, |_stack, span, self_ns| {
            let stat = totals.entry(format!("{track}/{}", span.label)).or_default();
            stat.count += 1;
            stat.total_ns += span.end.duration_since(span.start).as_nanos();
            stat.self_ns += self_ns;
        });
    }
    totals
}

/// Collapsed-stack flamegraph text: one `track;label;label... self_ns`
/// line per unique stack, sorted, weights in sim-time nanoseconds. Feed
/// to any FlameGraph renderer (`flamegraph.pl`, speedscope, inferno).
pub fn collapsed_stacks(events: &[Event]) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for (track, spans) in spans_by_track(events) {
        walk_track(&spans, |stack, span, self_ns| {
            if self_ns == 0 {
                return;
            }
            let mut frame = String::from(track);
            for s in stack {
                frame.push(';');
                frame.push_str(s);
            }
            frame.push(';');
            frame.push_str(span.label);
            *weights.entry(frame).or_insert(0) += self_ns;
        });
    }
    let mut out = String::new();
    for (frame, w) in &weights {
        out.push_str(frame);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_sim::SimDuration;

    fn span(track: &'static str, label: &'static str, start_ns: u64, dur_ns: u64) -> Event {
        Event {
            at: SimTime::from_nanos(start_ns),
            track,
            kind: EventKind::Span {
                label,
                dur: SimDuration::from_nanos(dur_ns),
            },
        }
    }

    #[test]
    fn nesting_splits_self_time() {
        // outer [0,100] contains inner [20,50]: outer self = 70.
        let events = vec![
            span("t", "outer", 0, 100),
            span("t", "inner", 20, 30),
            span("t", "outer", 200, 10),
        ];
        let totals = span_totals(&events);
        let outer = totals["t/outer"];
        assert_eq!(outer.count, 2);
        assert_eq!(outer.total_ns, 110);
        assert_eq!(outer.self_ns, 80);
        let inner = totals["t/inner"];
        assert_eq!(inner.count, 1);
        assert_eq!(inner.self_ns, 30);
    }

    #[test]
    fn collapsed_stacks_nest_labels() {
        let events = vec![span("t", "outer", 0, 100), span("t", "inner", 20, 30)];
        let text = collapsed_stacks(&events);
        assert!(text.contains("t;outer 70\n"));
        assert!(text.contains("t;outer;inner 30\n"));
    }

    #[test]
    fn tracks_are_independent() {
        let events = vec![span("a", "x", 0, 10), span("b", "x", 0, 50)];
        let totals = span_totals(&events);
        assert_eq!(totals["a/x"].total_ns, 10);
        assert_eq!(totals["b/x"].total_ns, 50);
    }

    #[test]
    fn partial_overlap_is_interleaving_not_nesting() {
        // Two concurrent runs sharing one track (parallel sweep cells
        // reuse device labels): [0,100] and [50,150] overlap without
        // containment. Neither may become the other's child, and the
        // stack must not grow with each interleaved pair.
        let events = vec![
            span("t", "a", 0, 100),
            span("t", "b", 50, 100),
            span("t", "c", 120, 10),
        ];
        let text = collapsed_stacks(&events);
        assert!(text.contains("t;a 100\n"), "a is not b's child: {text}");
        assert!(text.contains("t;b 90\n"), "b is not a's child: {text}");
        assert!(text.contains("t;b;c 10\n"), "c is truly inside b: {text}");
        let totals = span_totals(&events);
        assert_eq!(totals["t/a"].self_ns, 100);
        assert_eq!(totals["t/b"].self_ns, 90);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let events = vec![span("t", "a", 0, 10), span("t", "b", 10, 10)];
        let text = collapsed_stacks(&events);
        assert!(text.contains("t;a 10\n"));
        assert!(text.contains("t;b 10\n"));
    }
}
