//! Leak-once string interning for track and span names.
//!
//! [`Event`](crate::Event) carries its track (and a span its label) as
//! `&'static str`: recording an event is then pure `memcpy` — no
//! allocation and, unlike a reference-counted string, no atomic
//! refcount traffic on the hot path (four contended RMWs per event on
//! some hosts). Names that are not string literals — `device{i}`,
//! `die{d}.program`, power-tree paths — are made `'static` here, by
//! leaking each distinct name **once** into a process-wide table.
//!
//! The contract that makes the leak sound: track and label names are a
//! bounded vocabulary (device labels, span sites, tree paths), fixed by
//! the fleet topology and interned at component *construction*, never
//! per event. Interning an unbounded set of names would grow without
//! limit — don't put request ids or timestamps in a track name.

use std::collections::BTreeSet;
use std::sync::Mutex;

static TABLE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Interns `name`, returning a `'static` reference that compares equal
/// (by content) to every other interning of the same name.
///
/// The first interning of a distinct name leaks one copy of it for the
/// life of the process; later calls return the existing reference. Call
/// at component construction, not on a per-event path.
pub fn intern(name: &str) -> &'static str {
    let mut table = match TABLE.lock() {
        Ok(t) => t,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&existing) = table.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_by_content() {
        let a = intern(&format!("dev{}", 7));
        let b = intern("dev7");
        assert_eq!(a, "dev7");
        // Same pointer, not just same content.
        assert!(std::ptr::eq(a, b));
    }
}
