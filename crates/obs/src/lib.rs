//! # powadapt-obs — deterministic sim-time observability
//!
//! Telemetry for the powadapt stack that is **deterministic by
//! construction**: every event is stamped with [`SimTime`]
//! (`powadapt_sim::SimTime`), never wall-clock, and recording is strictly
//! write-only from the simulation's point of view — enabling it cannot
//! perturb results. The golden-figure suite proves this: figures render
//! byte-identical with tracing off and with full tracing on.
//!
//! Four pieces:
//!
//! - **Events** ([`Event`], [`EventKind`]): a typed schema for the
//!   observable edges of the simulation — IO lifecycle, power-state
//!   transitions, cap-governor hits, spin-up/down, faults, breaker
//!   transitions, and controller decisions.
//! - **Recorders** ([`Recorder`], [`EventLog`], [`TraceRecorder`]): sinks
//!   behind a cloneable [`RecorderHandle`]; the [`emit!`] macro checks the
//!   handle *before* building the payload, so an uninstalled recorder
//!   costs one `Option` branch.
//! - **Metrics** ([`MetricsRegistry`]): counters, gauges, and
//!   sim-time-windowed histograms backed by mergeable log-bucket
//!   quantile sketches ([`Sketch`], γ = [`sketch::RELATIVE_ERROR`]),
//!   atomically snapshotable as hand-rolled deterministic JSON.
//! - **Sharding** ([`ShardedRecorder`]): per-track event-log + registry
//!   shards with a deterministic `(sim_time, shard_id, seq)` merge,
//!   byte-identical at any shard count.
//! - **Profiling & export** ([`span_totals`], [`collapsed_stacks`],
//!   [`chrome_trace`]): sim-time span aggregation, collapsed-stack
//!   flamegraph text, and Chrome `trace_event` JSON loadable in Perfetto
//!   with power rendered as counter tracks alongside IO spans.
//!
//! ## Emitting
//!
//! ```
//! use std::sync::Arc;
//! use powadapt_obs::{emit, Event, EventKind, EventLog, RecorderHandle};
//! use powadapt_sim::SimTime;
//!
//! let log = Arc::new(EventLog::new(1024));
//! let rec = RecorderHandle::new(log.clone());
//! let now = SimTime::from_micros(42);
//! emit!(rec, now, "device0", EventKind::SpinUp);
//! assert_eq!(log.total(), 1);
//! ```
//!
//! ## Tracing a binary
//!
//! ```no_run
//! let session = powadapt_obs::TraceSession::from_env();
//! // ... build devices (they capture the global recorder), run ...
//! session.finish().expect("write trace outputs");
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod event;
mod export;
mod intern;
mod metrics;
mod recorder;
mod shard;
pub mod sketch;
mod span;
mod trace;

pub use event::{
    ConservationViolation, ControllerDecision, EnergyAttributed, Event, EventKind, IoDir,
    RebalanceDecision,
};
pub use export::{chrome_trace, events_jsonl};
pub use intern::intern;
pub use metrics::{metrics, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use recorder::{current, install, uninstall, EventLog, Recorder, RecorderHandle};
pub use shard::{MergedTrace, ShardedRecorder};
pub use sketch::{Sketch, WindowedSketch};
pub use span::{collapsed_stacks, span_totals, SpanStat};
pub use trace::{event_counts_json, TraceConfig, TraceMode, TraceRecorder, TraceSession};

/// Record an event through a [`RecorderHandle`] — free when disabled.
///
/// The handle is checked before the payload expression is evaluated, so
/// an uninstalled recorder costs one `Option` branch.
///
/// The track is an interned `&'static str` ([`intern`]): a literal
/// works directly, a dynamic name (`device{i}`) is interned once at
/// component construction — never per event.
#[macro_export]
macro_rules! emit {
    ($rec:expr, $at:expr, $track:expr, $kind:expr) => {
        if $rec.is_enabled() {
            $rec.record($crate::Event {
                at: $at,
                track: $track,
                kind: $kind,
            });
        }
    };
}

/// Record a profiling span (start + known sim-time duration) — free when
/// disabled. Sugar for [`emit!`] with [`EventKind::Span`]. Track and
/// label are interned `&'static str`s, same contract as [`emit!`]:
/// literals work directly, dynamic names are interned at construction.
#[macro_export]
macro_rules! span {
    ($rec:expr, $start:expr, $track:expr, $label:expr, $dur:expr) => {
        if $rec.is_enabled() {
            $rec.record($crate::Event {
                at: $start,
                track: $track,
                kind: $crate::EventKind::Span {
                    label: $label,
                    dur: $dur,
                },
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_sim::{SimDuration, SimTime};
    use std::sync::Arc;

    #[test]
    fn emit_skips_payload_when_disabled() {
        let rec = RecorderHandle::disabled();
        let mut evaluated = false;
        emit!(rec, SimTime::ZERO, "t", {
            evaluated = true;
            EventKind::SpinUp
        });
        assert!(!evaluated);
    }

    #[test]
    fn span_macro_records() {
        let log = Arc::new(EventLog::new(8));
        let rec = RecorderHandle::new(log.clone());
        span!(
            rec,
            SimTime::from_micros(1),
            "device0",
            "die0.program",
            SimDuration::from_micros(200)
        );
        let events = log.snapshot();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, EventKind::Span { .. }));
    }

    #[test]
    fn global_slot_round_trip() {
        // One test owns the global slot to avoid cross-test interference.
        let log = Arc::new(EventLog::new(8));
        // The previous occupant (if any) is another test's; just replace it.
        let _prev = install(log.clone());
        let handle = current();
        assert!(handle.is_enabled());
        emit!(handle, SimTime::ZERO, "g", EventKind::SpinDown);
        uninstall();
        assert!(!current().is_enabled());
        assert!(log.total() >= 1);
    }
}
