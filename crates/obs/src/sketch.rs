//! Mergeable log-bucket quantile sketches (DDSketch-style).
//!
//! The stored-sample histograms this module replaces kept every
//! observation for exact percentiles — O(n) memory and, worse,
//! non-mergeable: two histograms of the same stream sharded across
//! recorders could not be folded back together deterministically.
//! A [`Sketch`] fixes both properties at the cost of a bounded relative
//! error [`RELATIVE_ERROR`]:
//!
//! - **bucketing is pure bit manipulation** on the IEEE-754
//!   representation (exponent + top mantissa bits), never `ln`/`exp`, so
//!   the bucket of a value is identical on every platform;
//! - **merge is exact integer addition** of bucket counts — associative,
//!   commutative, with the empty sketch as identity — so shard merges are
//!   byte-stable regardless of merge order or shard count;
//! - **min/max are tracked exactly** (canonicalized so `-0.0` and NaN
//!   cannot introduce order-dependent ties), and every estimated
//!   percentile is clamped into `[min, max]`.
//!
//! ## Bucket math
//!
//! For a finite `v > 0` with biased exponent `e` and mantissa `m`, the
//! bucket index is
//!
//! ```text
//! index(v) = 1 + (e - EXP_LO) * 32 + top5(m)
//! ```
//!
//! i.e. each power-of-two binade is split into 32 sub-buckets by the top
//! five mantissa bits. Consecutive bucket edges are a fixed ratio
//! `<= 33/32` apart, so a bucket's midpoint is within `(33/32 - 1)/2 <
//! 1/64` of any value in the bucket: γ = [`RELATIVE_ERROR`] = 1/64.
//! Values `<= 0` (and NaN) land in the reserved zero bucket with
//! representative `0.0`; values below `2^-26` or at/above `2^45` are
//! clamped into the edge buckets (outside every metric's dynamic range).
//!
//! [`WindowedSketch`] adds a sliding sim-time window as a ring of
//! [`WINDOW_SLICES`] time slices keyed by absolute slot `t / slice_width`:
//! eviction zeroes an expired slice in O(buckets) with no allocation, and
//! merge aligns slices by absolute slot so it stays order-independent.

use powadapt_sim::SimDuration;

/// The sketch's relative-error bound γ: any percentile estimate is within
/// `γ * true_value` of the exact sample percentile, for samples inside
/// the representable range.
pub const RELATIVE_ERROR: f64 = 1.0 / 64.0;

/// Sub-bucket bits per power-of-two binade (32 sub-buckets).
const SUB_BITS: u32 = 5;
const SUBS: u64 = 1 << SUB_BITS;
/// Lowest tracked biased exponent: 997 is `2^-26` (~1.5e-8).
const EXP_LO: u64 = 997;
/// Highest tracked biased exponent: 1067 is the binade `[2^44, 2^45)`.
const EXP_HI: u64 = 1067;
const BINADES: usize = (EXP_HI - EXP_LO + 1) as usize;
/// Dense bucket count: one reserved zero/under-range bucket plus every
/// (binade, sub-bucket) pair.
const NBUCKETS: usize = 1 + BINADES * SUBS as usize;

/// Number of time slices backing a [`WindowedSketch`] ring.
pub const WINDOW_SLICES: usize = 16;

/// Ring slot marker for a slice that has never held data.
const VACANT: u64 = u64::MAX;

/// Canonicalizes a sample for exact min/max tracking: NaN folds to the
/// zero bucket's representative and `-0.0` becomes `+0.0`, so equal
/// values always carry identical bits and merge ties are order-free.
fn canonical(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        // IEEE-754: (-0.0) + 0.0 == +0.0; every other value is unchanged.
        v + 0.0
    }
}

/// Bucket index of `v`; pure bit manipulation, identical on every
/// platform.
fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || v.is_nan() {
        return 0; // <= 0, -0.0, NaN: the reserved zero bucket
    }
    let bits = v.to_bits();
    let exp = (bits >> 52) & 0x7ff;
    if exp < EXP_LO {
        return 0; // under-range (including subnormals)
    }
    if exp > EXP_HI {
        return NBUCKETS - 1; // over-range (including +inf): clamp
    }
    let sub = (bits >> (52 - SUB_BITS)) & (SUBS - 1);
    (1 + (exp - EXP_LO) * SUBS + sub) as usize
}

/// Lower edge of sub-bucket `b` (counting from bucket index 1);
/// `b == BINADES * SUBS` yields the open upper edge of the last bucket.
fn bucket_edge(b: u64) -> f64 {
    let exp = EXP_LO + b / SUBS;
    let sub = b % SUBS;
    f64::from_bits((exp << 52) | (sub << (52 - SUB_BITS)))
}

/// Representative (midpoint) value of bucket `i`.
fn bucket_value(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    let b = (i - 1) as u64;
    let lo = bucket_edge(b);
    let hi = bucket_edge(b + 1);
    0.5 * (lo + hi)
}

/// A mergeable quantile sketch over positive-ish `f64` samples.
///
/// Memory is a fixed dense `u64` bucket array (~18 KiB); observing is
/// allocation-free. Two sketches merge by integer bucket addition, which
/// is associative, commutative, and byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub struct Sketch {
    /// Dense per-bucket counts, `NBUCKETS` long.
    counts: Vec<u64>,
    /// Total observations (sum of `counts`).
    total: u64,
    /// Exact smallest canonicalized sample (`+inf` when empty).
    min: f64,
    /// Exact largest canonicalized sample (`-inf` when empty).
    max: f64,
}

impl Default for Sketch {
    fn default() -> Self {
        Sketch::new()
    }
}

impl Sketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Sketch {
            counts: vec![0; NBUCKETS],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Allocation-free.
    // powadapt-lint: hot
    pub fn observe(&mut self, value: f64) {
        let idx = bucket_index(value);
        let value = canonical(value);
        self.counts[idx] += 1;
        self.total += 1;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Folds `other` into `self`: exact integer bucket addition plus
    /// exact min/max. Order-independent — `a.merge_from(b)` and
    /// `b.merge_from(a)` produce identical state.
    pub fn merge_from(&mut self, other: &Sketch) {
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact smallest observed sample.
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact largest observed sample.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Mean derived from bucket representatives in fixed index order —
    /// deterministic and merge-order-independent, within
    /// [`RELATIVE_ERROR`] of the exact mean for in-range samples.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let mut sum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                sum += c as f64 * bucket_value(i);
            }
        }
        Some((sum / self.total as f64).clamp(self.min, self.max))
    }

    /// Estimated percentile `q` in `[0, 100]`, using the same
    /// interpolated-rank convention as `powadapt_sim::Summary` and
    /// clamped into the exact `[min, max]`. Within [`RELATIVE_ERROR`] of
    /// the exact sample percentile for in-range positive samples.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = (q / 100.0) * (self.total - 1) as f64;
        let lo_rank = rank.floor() as u64;
        let hi_rank = rank.ceil() as u64;
        let frac = rank - lo_rank as f64;
        let lo = self.value_at(lo_rank);
        let hi = if hi_rank == lo_rank {
            lo
        } else {
            self.value_at(hi_rank)
        };
        Some((lo + (hi - lo) * frac).clamp(self.min, self.max))
    }

    /// Representative value of the bucket holding the `k`-th order
    /// statistic (0-based).
    fn value_at(&self, k: u64) -> f64 {
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > k {
                return bucket_value(i);
            }
        }
        self.max
    }

    /// Adds a windowed slice's buckets (same layout) into this sketch.
    fn add_counts(&mut self, counts: &[u64], total: u64, min: f64, max: f64) {
        for (c, &o) in self.counts.iter_mut().zip(counts) {
            *c += o;
        }
        self.total += total;
        if min < self.min {
            self.min = min;
        }
        if max > self.max {
            self.max = max;
        }
    }
}

impl powadapt_snap::Snapshot for Sketch {
    /// Canonical sparse form: total, exact min/max bits (present only when
    /// non-empty), then `(bucket, count)` pairs in ascending bucket order.
    /// Restoring and re-serializing reproduces identical bytes.
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        w.u64(self.total);
        if self.total > 0 {
            w.bool(true);
            w.u64(self.min.to_bits());
            w.u64(self.max.to_bits());
        } else {
            w.bool(false);
        }
        let nonzero = self.counts.iter().filter(|&&c| c != 0).count();
        w.seq_len(nonzero);
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                w.u32(i as u32);
                w.u64(c);
            }
        }
        Ok(())
    }
}

impl powadapt_snap::Restore for Sketch {
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        let total = r.u64()?;
        let (min, max) = if r.bool()? {
            let min = f64::from_bits(r.u64()?);
            let max = f64::from_bits(r.u64()?);
            if min > max || min.is_nan() || max.is_nan() {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "sketch range {min:?}..{max:?} is not ordered"
                )));
            }
            (min, max)
        } else {
            if total != 0 {
                return Err(powadapt_snap::SnapError::InvalidValue(
                    "non-empty sketch without a min/max range".to_string(),
                ));
            }
            (f64::INFINITY, f64::NEG_INFINITY)
        };
        let n = r.seq_len()?;
        let mut counts = vec![0u64; NBUCKETS];
        let mut sum = 0u64;
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let idx = r.u32()?;
            if idx as usize >= NBUCKETS {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "sketch bucket {idx} out of range"
                )));
            }
            if prev.is_some_and(|p| idx <= p) {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "sketch bucket {idx} out of order"
                )));
            }
            prev = Some(idx);
            let c = r.u64()?;
            if c == 0 {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "sketch bucket {idx} has a zero count"
                )));
            }
            counts[idx as usize] = c;
            sum += c;
        }
        if sum != total {
            return Err(powadapt_snap::SnapError::InvalidValue(format!(
                "sketch buckets sum to {sum}, total says {total}"
            )));
        }
        self.counts = counts;
        self.total = total;
        self.min = min;
        self.max = max;
        Ok(())
    }
}

/// One time slice of a [`WindowedSketch`]: the bucket array for samples
/// whose slot `t / slice_width` equals `slot`.
#[derive(Debug, Clone, PartialEq)]
struct Slice {
    slot: u64,
    counts: Vec<u64>,
    total: u64,
    min: f64,
    max: f64,
}

impl Slice {
    fn vacant() -> Self {
        Slice {
            slot: VACANT,
            counts: vec![0; NBUCKETS],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// A [`Sketch`] over a sliding sim-time window, backed by a ring of
/// [`WINDOW_SLICES`] slices keyed by absolute time slot.
///
/// Evicting an expired slice zeroes its fixed bucket array — O(buckets),
/// no allocation — and slices align across recorders by absolute slot, so
/// windowed sketches merge as deterministically as plain ones. The
/// retained span is slice-granular: at least `window`, at most `window`
/// plus one slice width.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSketch {
    /// The configured window, in nanoseconds.
    window_ns: u64,
    /// Width of one ring slice, in nanoseconds (`>= 1`).
    slice_width: u64,
    /// Slot of the newest observation (0 before any).
    latest_slot: u64,
    /// The slice ring, `WINDOW_SLICES` long, indexed by `slot % len`.
    slices: Vec<Slice>,
}

impl WindowedSketch {
    /// A windowed sketch covering at least `window` of sim time.
    pub fn new(window: SimDuration) -> Self {
        let window_ns = window.as_nanos();
        WindowedSketch {
            window_ns,
            slice_width: slice_width_for(window_ns),
            latest_slot: 0,
            slices: vec![Slice::vacant(); WINDOW_SLICES],
        }
    }

    /// The configured window.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_nanos(self.window_ns)
    }

    /// Records `value` at sim-time nanosecond `at_ns`, evicting any
    /// expired slice in-place. Allocation-free.
    // powadapt-lint: hot
    pub fn observe(&mut self, at_ns: u64, value: f64) {
        let slot = at_ns / self.slice_width;
        let ring = self.slices.len() as u64;
        if self.latest_slot > slot && self.latest_slot - slot >= ring {
            return; // older than the retained span: nothing to record
        }
        let idx = bucket_index(value);
        let value = canonical(value);
        let i = (slot % ring) as usize;
        let s = &mut self.slices[i];
        if s.slot != slot {
            if s.slot != VACANT && s.slot > slot {
                return; // ring position already owned by a newer slot
            }
            s.slot = slot;
            s.total = 0;
            s.min = f64::INFINITY;
            s.max = f64::NEG_INFINITY;
            for c in &mut s.counts {
                *c = 0;
            }
        }
        s.counts[idx] += 1;
        s.total += 1;
        if value < s.min {
            s.min = value;
        }
        if value > s.max {
            s.max = value;
        }
        if slot > self.latest_slot {
            self.latest_slot = slot;
        }
    }

    /// True when `s` still falls inside the retained span.
    fn live(&self, s: &Slice) -> bool {
        s.slot != VACANT && s.slot + self.slices.len() as u64 > self.latest_slot
    }

    /// Folds the live slices into a plain [`Sketch`] — the windowed
    /// summary used for snapshots.
    pub fn fold(&self) -> Sketch {
        let mut out = Sketch::new();
        for s in &self.slices {
            if self.live(s) {
                out.add_counts(&s.counts, s.total, s.min, s.max);
            }
        }
        out
    }

    /// Folds `other` into `self` by absolute slot. Returns `false` (self
    /// unchanged) when the window configurations differ — incompatible
    /// windows cannot merge meaningfully. Order-independent for any
    /// merge grouping, like [`Sketch::merge_from`].
    pub fn merge_from(&mut self, other: &WindowedSketch) -> bool {
        if self.window_ns != other.window_ns || self.slice_width != other.slice_width {
            return false;
        }
        let ring = self.slices.len() as u64;
        if other.latest_slot > self.latest_slot {
            self.latest_slot = other.latest_slot;
        }
        for s in &other.slices {
            if s.slot == VACANT || s.slot + ring <= self.latest_slot {
                continue; // vacant or expired under the merged horizon
            }
            let t = &mut self.slices[(s.slot % ring) as usize];
            if t.slot == s.slot {
                t.total += s.total;
                for (c, &o) in t.counts.iter_mut().zip(&s.counts) {
                    *c += o;
                }
                if s.min < t.min {
                    t.min = s.min;
                }
                if s.max > t.max {
                    t.max = s.max;
                }
            } else if t.slot == VACANT || t.slot < s.slot {
                // The resident slice (if any) is expired: same ring
                // position means the slots differ by a full ring, and the
                // incoming one is live.
                *t = s.clone();
            }
        }
        true
    }
}

fn slice_width_for(window_ns: u64) -> u64 {
    window_ns.div_ceil(WINDOW_SLICES as u64 - 1).max(1)
}

impl powadapt_snap::Snapshot for WindowedSketch {
    /// Canonical form: configuration, then only the live slices in
    /// ascending slot order (each as slot, total, min/max bits, sparse
    /// buckets) — ring phase and dead slices never leak into the bytes.
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        w.u64(self.window_ns);
        w.u64(self.slice_width);
        w.u64(self.latest_slot);
        let mut live: Vec<&Slice> = self.slices.iter().filter(|s| self.live(s)).collect();
        live.sort_by_key(|s| s.slot);
        w.seq_len(live.len());
        for s in live {
            w.u64(s.slot);
            w.u64(s.total);
            w.u64(s.min.to_bits());
            w.u64(s.max.to_bits());
            let nonzero = s.counts.iter().filter(|&&c| c != 0).count();
            w.seq_len(nonzero);
            for (i, &c) in s.counts.iter().enumerate() {
                if c != 0 {
                    w.u32(i as u32);
                    w.u64(c);
                }
            }
        }
        Ok(())
    }
}

impl powadapt_snap::Restore for WindowedSketch {
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        let window_ns = r.u64()?;
        let slice_width = r.u64()?;
        if slice_width != slice_width_for(window_ns) {
            return Err(powadapt_snap::SnapError::InvalidValue(format!(
                "slice width {slice_width} does not match window {window_ns}"
            )));
        }
        let latest_slot = r.u64()?;
        let mut slices = vec![Slice::vacant(); WINDOW_SLICES];
        let ring = WINDOW_SLICES as u64;
        let n = r.seq_len()?;
        if n > WINDOW_SLICES {
            return Err(powadapt_snap::SnapError::InvalidValue(format!(
                "{n} window slices exceed the ring of {WINDOW_SLICES}"
            )));
        }
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let slot = r.u64()?;
            if slot > latest_slot || slot + ring <= latest_slot {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "window slice slot {slot} outside the live span of {latest_slot}"
                )));
            }
            if prev.is_some_and(|p| slot <= p) {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "window slice slot {slot} out of order"
                )));
            }
            prev = Some(slot);
            let total = r.u64()?;
            let min = f64::from_bits(r.u64()?);
            let max = f64::from_bits(r.u64()?);
            if total == 0 || min > max || min.is_nan() || max.is_nan() {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "window slice {slot} is empty or has an unordered range"
                )));
            }
            let m = r.seq_len()?;
            let s = &mut slices[(slot % ring) as usize];
            s.slot = slot;
            s.total = total;
            s.min = min;
            s.max = max;
            let mut sum = 0u64;
            let mut prev_idx: Option<u32> = None;
            for _ in 0..m {
                let idx = r.u32()?;
                if idx as usize >= NBUCKETS {
                    return Err(powadapt_snap::SnapError::InvalidValue(format!(
                        "window slice bucket {idx} out of range"
                    )));
                }
                if prev_idx.is_some_and(|p| idx <= p) {
                    return Err(powadapt_snap::SnapError::InvalidValue(format!(
                        "window slice bucket {idx} out of order"
                    )));
                }
                prev_idx = Some(idx);
                let c = r.u64()?;
                if c == 0 {
                    return Err(powadapt_snap::SnapError::InvalidValue(format!(
                        "window slice bucket {idx} has a zero count"
                    )));
                }
                s.counts[idx as usize] = c;
                sum += c;
            }
            if sum != total {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "window slice {slot} buckets sum to {sum}, total says {total}"
                )));
            }
        }
        self.window_ns = window_ns;
        self.slice_width = slice_width;
        self.latest_slot = latest_slot;
        self.slices = slices;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_snap::{Restore, SnapReader, SnapWriter, Snapshot};

    fn sketch_of(values: &[f64]) -> Sketch {
        let mut s = Sketch::new();
        for &v in values {
            s.observe(v);
        }
        s
    }

    fn bytes_of(s: &Sketch) -> Vec<u8> {
        let mut w = SnapWriter::new();
        s.write_state(&mut w).unwrap();
        w.into_payload()
    }

    #[test]
    fn buckets_cover_the_range_monotonically() {
        let mut prev = 0;
        for e in -25..44 {
            for frac in [1.0, 1.01, 1.5, 1.99] {
                let v = frac * (2.0f64).powi(e);
                let b = bucket_index(v);
                assert!(b >= prev, "bucket order broke at {v}");
                prev = b;
                let rep = bucket_value(b);
                assert!(
                    (rep - v).abs() <= RELATIVE_ERROR * v + 1e-12,
                    "bucket {b} rep {rep} off from {v}"
                );
            }
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.5), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-30), 0);
        assert_eq!(bucket_index(1e300), NBUCKETS - 1);
    }

    #[test]
    fn percentiles_track_exact_summary() {
        let values: Vec<f64> = (1..=1000).map(|i| (i as f64) * 1.7 + 0.3).collect();
        let s = sketch_of(&values);
        let summary = powadapt_sim::Summary::from_samples(&values).unwrap();
        for q in [0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let est = s.percentile(q).unwrap();
            let exact = summary.percentile(q);
            assert!(
                (est - exact).abs() <= RELATIVE_ERROR * exact + 1e-9,
                "p{q}: {est} vs exact {exact}"
            );
        }
        assert_eq!(s.min().unwrap(), summary.min());
        assert_eq!(s.max().unwrap(), summary.max());
        let mean = s.mean().unwrap();
        assert!((mean - summary.mean()).abs() <= RELATIVE_ERROR * summary.mean());
    }

    #[test]
    fn merge_is_commutative_and_associative_bytewise() {
        let a = sketch_of(&[1.0, 2.5, 700.0]);
        let b = sketch_of(&[0.004, 2.5, 1e9]);
        let c = sketch_of(&[42.0]);

        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(bytes_of(&ab), bytes_of(&ba));

        let mut ab_c = ab.clone();
        ab_c.merge_from(&c);
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut a_bc = a.clone();
        a_bc.merge_from(&bc);
        assert_eq!(bytes_of(&ab_c), bytes_of(&a_bc));

        let mut with_empty = a.clone();
        with_empty.merge_from(&Sketch::new());
        assert_eq!(bytes_of(&with_empty), bytes_of(&a));
    }

    #[test]
    fn snapshot_roundtrip_is_byte_stable() {
        let s = sketch_of(&[0.125, 3.0, 3.0, 9e7, -1.0]);
        let payload = bytes_of(&s);
        let mut restored = Sketch::new();
        let mut r = SnapReader::new(&payload);
        restored.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, s);
        assert_eq!(bytes_of(&restored), payload);
    }

    #[test]
    fn windowed_sketch_evicts_in_slices() {
        let mut w = WindowedSketch::new(SimDuration::from_nanos(150));
        w.observe(0, 1.0);
        w.observe(50, 2.0);
        w.observe(200, 3.0);
        let folded = w.fold();
        assert_eq!(folded.count(), 2); // the t=0 slice expired at t=200
        assert_eq!(folded.min().unwrap(), 2.0);
        assert_eq!(folded.max().unwrap(), 3.0);
    }

    #[test]
    fn windowed_merge_aligns_absolute_slots() {
        let win = SimDuration::from_micros(1);
        let mut a = WindowedSketch::new(win);
        let mut b = WindowedSketch::new(win);
        a.observe(100, 1.0);
        a.observe(500, 2.0);
        b.observe(500, 4.0);
        b.observe(900, 8.0);
        let mut ab = a.clone();
        assert!(ab.merge_from(&b));
        let mut ba = b.clone();
        assert!(ba.merge_from(&a));
        assert_eq!(ab, ba);
        let folded = ab.fold();
        assert_eq!(folded.count(), 4);
        assert_eq!(folded.min().unwrap(), 1.0);
        assert_eq!(folded.max().unwrap(), 8.0);
        // Incompatible windows refuse to merge.
        let other = WindowedSketch::new(SimDuration::from_micros(2));
        assert!(!ab.merge_from(&other));
    }

    #[test]
    fn windowed_snapshot_roundtrip_is_byte_stable() {
        let mut w = WindowedSketch::new(SimDuration::from_nanos(600));
        for (t, v) in [(0, 5.0), (100, 6.0), (450, 7.5), (700, 1.25)] {
            w.observe(t, v);
        }
        let mut wr = SnapWriter::new();
        w.write_state(&mut wr).unwrap();
        let payload = wr.into_payload();
        let mut restored = WindowedSketch::new(SimDuration::from_nanos(600));
        let mut r = SnapReader::new(&payload);
        restored.read_state(&mut r).unwrap();
        r.finish().unwrap();
        let mut again = SnapWriter::new();
        restored.write_state(&mut again).unwrap();
        assert_eq!(again.into_payload(), payload);
        assert_eq!(restored.fold().count(), w.fold().count());
    }
}
