//! Typed, schema'd telemetry events.
//!
//! Every event carries a [`SimTime`] stamp — never wall-clock — so a
//! recorded trace is a pure function of the run's seeds and configuration.
//! The `track` names the emitting component (`device0`, `controller`,
//! `meter`) and becomes a thread row in the Chrome trace export.

use std::fmt;

use powadapt_sim::{SimDuration, SimTime};

/// Transfer direction of an IO, from the host's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDir {
    /// Device-to-host transfer.
    Read,
    /// Host-to-device transfer.
    Write,
}

impl IoDir {
    /// Lower-case name, as used in metric keys and trace args.
    pub fn as_str(self) -> &'static str {
        match self {
            IoDir::Read => "read",
            IoDir::Write => "write",
        }
    }
}

impl fmt::Display for IoDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One telemetry event: a sim-time stamp, the emitting track, and the
/// typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time of the event. For [`EventKind::Span`] this is the
    /// span's *start*; the duration lives in the payload.
    pub at: SimTime,
    /// Emitting component (`device3`, `controller`, `meter`, ...).
    ///
    /// Interned (`&'static str`, see [`crate::intern`]): emit sites copy
    /// a pointer, so recording an event carries no allocation and no
    /// refcount traffic. Literals are already `'static`; dynamic names
    /// are interned once at component construction.
    pub track: &'static str,
    /// Typed payload.
    pub kind: EventKind,
}

/// Payload of [`EventKind::ControllerDecision`]: the adaptive controller
/// applied a budget and produced a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerDecision {
    /// The budget being applied, in watts.
    pub budget_w: f64,
    /// Measured fleet power *before* the plan, in watts.
    pub measured_w: f64,
    /// Expected fleet power after the plan, in watts.
    pub expected_power_w: f64,
    /// Expected fleet throughput after the plan, in bytes/second.
    pub expected_throughput_bps: f64,
    /// Labels of devices out of service after this round.
    pub quarantined: Vec<String>,
    /// Labels of devices that refused their action this round.
    pub degraded: Vec<String>,
}

/// Payload of [`EventKind::RebalanceDecision`]: the power tree granted a
/// node a revised budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceDecision {
    /// Path of the tree node (`cluster/row0/rack1/enc0`).
    pub node: String,
    /// The node's physical cap in watts.
    pub cap_w: f64,
    /// Budget granted to the node this round, in watts.
    pub granted_w: f64,
    /// Aggregate demand the node reported, in watts.
    pub demand_w: f64,
}

/// Payload of [`EventKind::EnergyAttributed`]: the energy ledger
/// attributed cumulative joules to a power-tree node at an audit round.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyAttributed {
    /// Path of the tree node (`cluster/row0/rack1`).
    pub node: String,
    /// Cumulative energy attributed to the node, in joules.
    pub joules: f64,
    /// Headroom between the node's last grant and its measured draw, in
    /// watts (never negative).
    pub stranded_w: f64,
}

/// Payload of [`EventKind::ConservationViolation`]: the energy ledger's
/// conservation audit failed.
#[derive(Debug, Clone, PartialEq)]
pub struct ConservationViolation {
    /// Path of the violating tree node.
    pub node: String,
    /// Human-readable description of the broken invariant.
    pub detail: String,
}

/// The event schema. Variants mirror the observable edges of the
/// simulation: IO lifecycle, power-state machinery, fault plumbing, and
/// control decisions.
///
/// Rare, payload-heavy kinds (controller/rebalance decisions, ledger
/// audit results) box their payloads so `EventKind` stays small: every
/// recorded event is moved into a ring by value, so the enum's footprint
/// is hot-path memory traffic even when the fat variants never fire.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EventKind {
    /// An IO request was accepted by a device.
    IoSubmit {
        /// Request id, unique within its device.
        id: u64,
        /// Transfer direction.
        dir: IoDir,
        /// Transfer length in bytes.
        len: u64,
    },
    /// An IO request completed.
    IoComplete {
        /// Request id, matching the earlier [`EventKind::IoSubmit`].
        id: u64,
        /// Transfer direction.
        dir: IoDir,
        /// Transfer length in bytes.
        len: u64,
        /// Submit-to-complete latency in sim time.
        latency: SimDuration,
    },
    /// An IO failed at submit or was rejected by the device.
    IoError {
        /// Request id of the failed IO.
        id: u64,
        /// Rendered device error.
        error: String,
    },
    /// An arrival was dropped after exhausting re-route attempts.
    ArrivalDropped {
        /// Request id of the dropped arrival.
        id: u64,
    },
    /// A device moved between power states (paper §2 P0..Pn).
    PowerStateTransition {
        /// Index of the state being left.
        from: u8,
        /// Index of the state being entered.
        to: u8,
    },
    /// The cap governor deferred work to stay under the configured cap.
    CapApplied {
        /// The active cap in watts.
        cap_w: f64,
        /// Instantaneous device power when the cap bit.
        power_w: f64,
    },
    /// A device began spinning up / exiting standby.
    SpinUp,
    /// A device began spinning down / entering standby.
    SpinDown,
    /// The fault injector fired.
    FaultInjected {
        /// Short fault label (`io_error`, `latency_spike`, `dropout`, ...).
        fault: String,
    },
    /// A circuit breaker opened (device quarantined from routing).
    BreakerOpen,
    /// A circuit breaker moved to half-open (probe traffic allowed).
    BreakerHalfOpen,
    /// A circuit breaker closed (device back in service).
    BreakerClose,
    /// The adaptive controller applied a budget and produced a plan.
    ControllerDecision(Box<ControllerDecision>),
    /// A power-tree node's breaker tripped: the whole subtree lost its
    /// feed (regional failure, rack breaker, row maintenance).
    BreakerTrip {
        /// Path of the tripped tree node (`cluster/row0/rack1`).
        node: String,
    },
    /// A previously tripped power-tree node's feed was restored.
    BreakerRestore {
        /// Path of the restored tree node.
        node: String,
    },
    /// The power tree granted a node a revised budget (cluster layer).
    RebalanceDecision(Box<RebalanceDecision>),
    /// One reading of the power rig (becomes a counter track in Perfetto).
    PowerSample {
        /// The sampled (quantized, noisy) power in watts.
        watts: f64,
    },
    /// A profiling span with a known sim-time duration; `Event::at` is the
    /// start.
    Span {
        /// Hierarchy-free label (`die0.program`, `media.xfer`, ...).
        /// Interned for the same reason as [`Event::track`]: spans
        /// dominate a trace, and a label copy must be free.
        label: &'static str,
        /// Sim-time duration of the span.
        dur: SimDuration,
    },
    /// The energy ledger attributed cumulative joules to a power-tree
    /// node at an audit round (cluster layer).
    EnergyAttributed(Box<EnergyAttributed>),
    /// The energy ledger's conservation audit failed — children's
    /// attributed joules no longer sum to the parent's metered joules, or
    /// a grant exceeded a cap. Should never fire on a healthy run.
    ConservationViolation(Box<ConservationViolation>),
    /// A tenant's SLO error budget is burning: its windowed p99 latency
    /// is at or near the SLO target while the cluster runs close to its
    /// breaker limits.
    SloBurnAlert {
        /// Tenant name.
        tenant: String,
        /// Windowed p99 latency divided by the SLO target (1.0 = at the
        /// limit).
        burn_rate: f64,
    },
    /// A sharded recorder folded one shard into a merged view.
    ShardMerged {
        /// Shard index.
        shard: u64,
        /// Events the shard had recorded at merge time.
        events: u64,
    },
    /// The placement tier bound an extent to a replica set (place layer).
    PlacementDecision {
        /// Extent id, unique within the catalog.
        extent: u64,
        /// Flat device index of the primary replica.
        primary: u32,
        /// Total replicas placed (primary included).
        replicas: u8,
    },
    /// The migration engine began moving an extent between devices.
    MigrationStarted {
        /// Extent id being moved.
        extent: u64,
        /// Flat device index of the source replica.
        from: u32,
        /// Flat device index of the destination replica.
        to: u32,
    },
    /// A previously started extent migration committed on the destination.
    MigrationCompleted {
        /// Extent id that finished moving.
        extent: u64,
        /// Flat device index of the source replica.
        from: u32,
        /// Flat device index of the destination replica.
        to: u32,
    },
    /// The router skipped standby or quarantined devices for an arrival
    /// rather than paying a hidden spin-up on the request path.
    RoutedAround {
        /// Request id of the arrival that was re-routed.
        id: u64,
        /// Number of unavailable devices skipped before placing the IO.
        skipped: u32,
    },
}

impl EventKind {
    /// Every stable schema name, in schema order. The table is what maps
    /// serialized count keys back to the `&'static str` keys used by
    /// [`EventLog`](crate::EventLog) counters, so a checkpointed run's
    /// per-kind accounting survives a cross-process resume.
    pub const NAMES: &'static [&'static str] = &[
        "io_submit",
        "io_complete",
        "io_error",
        "arrival_dropped",
        "power_state_transition",
        "cap_applied",
        "spin_up",
        "spin_down",
        "fault_injected",
        "breaker_open",
        "breaker_half_open",
        "breaker_close",
        "controller_decision",
        "breaker_trip",
        "breaker_restore",
        "rebalance_decision",
        "power_sample",
        "span",
        "energy_attributed",
        "conservation_violation",
        "slo_burn_alert",
        "shard_merged",
        "placement_decision",
        "migration_started",
        "migration_completed",
        "routed_around",
    ];

    /// Number of schema kinds — the length of [`Self::NAMES`] and the
    /// size of any dense per-kind table ([`index`](Self::index)).
    pub const COUNT: usize = Self::NAMES.len();

    /// Resolves a schema name to its interned `&'static str`, or `None`
    /// for a name no [`EventKind`] variant produces.
    pub fn intern_name(name: &str) -> Option<&'static str> {
        Self::NAMES.iter().copied().find(|&n| n == name)
    }

    /// Resolves a schema name to its dense index in [`Self::NAMES`].
    pub fn name_index(name: &str) -> Option<usize> {
        Self::NAMES.iter().position(|&n| n == name)
    }

    /// Dense per-kind index into [`Self::NAMES`] — what lets the event
    /// log keep its per-kind counters in a fixed array instead of a map,
    /// so the record hot path does one add instead of a keyed lookup.
    pub fn index(&self) -> usize {
        match self {
            EventKind::IoSubmit { .. } => 0,
            EventKind::IoComplete { .. } => 1,
            EventKind::IoError { .. } => 2,
            EventKind::ArrivalDropped { .. } => 3,
            EventKind::PowerStateTransition { .. } => 4,
            EventKind::CapApplied { .. } => 5,
            EventKind::SpinUp => 6,
            EventKind::SpinDown => 7,
            EventKind::FaultInjected { .. } => 8,
            EventKind::BreakerOpen => 9,
            EventKind::BreakerHalfOpen => 10,
            EventKind::BreakerClose => 11,
            EventKind::ControllerDecision(_) => 12,
            EventKind::BreakerTrip { .. } => 13,
            EventKind::BreakerRestore { .. } => 14,
            EventKind::RebalanceDecision(_) => 15,
            EventKind::PowerSample { .. } => 16,
            EventKind::Span { .. } => 17,
            EventKind::EnergyAttributed(_) => 18,
            EventKind::ConservationViolation(_) => 19,
            EventKind::SloBurnAlert { .. } => 20,
            EventKind::ShardMerged { .. } => 21,
            EventKind::PlacementDecision { .. } => 22,
            EventKind::MigrationStarted { .. } => 23,
            EventKind::MigrationCompleted { .. } => 24,
            EventKind::RoutedAround { .. } => 25,
        }
    }

    /// Stable schema name, used for event counting and metric keys.
    /// Defined as the [`index`](Self::index) entry of [`Self::NAMES`], so
    /// name and index can never disagree.
    pub fn name(&self) -> &'static str {
        Self::NAMES[self.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(
            EventKind::IoSubmit {
                id: 1,
                dir: IoDir::Read,
                len: 4096
            }
            .name(),
            "io_submit"
        );
        assert_eq!(EventKind::SpinUp.name(), "spin_up");
        assert_eq!(
            EventKind::Span {
                label: "x",
                dur: SimDuration::ZERO
            }
            .name(),
            "span"
        );
    }

    #[test]
    fn dir_strings() {
        assert_eq!(IoDir::Read.as_str(), "read");
        assert_eq!(IoDir::Write.to_string(), "write");
    }

    #[test]
    fn index_table_is_a_bijection() {
        // NAMES has no duplicates and every entry round-trips through
        // name_index; COUNT is the table length by definition.
        assert_eq!(EventKind::NAMES.len(), EventKind::COUNT);
        for (i, &n) in EventKind::NAMES.iter().enumerate() {
            assert_eq!(EventKind::name_index(n), Some(i));
        }
        assert_eq!(EventKind::name_index("nope"), None);
        // Spot-check that index() agrees with the table for a payload
        // kind, a unit kind, and the last entry.
        assert_eq!(
            EventKind::NAMES[EventKind::PowerSample { watts: 1.0 }.index()],
            "power_sample"
        );
        assert_eq!(EventKind::NAMES[EventKind::SpinUp.index()], "spin_up");
        assert_eq!(
            EventKind::NAMES[EventKind::ShardMerged {
                shard: 0,
                events: 0
            }
            .index()],
            "shard_merged"
        );
        assert_eq!(
            EventKind::NAMES[EventKind::PlacementDecision {
                extent: 0,
                primary: 0,
                replicas: 1
            }
            .index()],
            "placement_decision"
        );
        assert_eq!(
            EventKind::NAMES[EventKind::MigrationStarted {
                extent: 0,
                from: 0,
                to: 1
            }
            .index()],
            "migration_started"
        );
        assert_eq!(
            EventKind::NAMES[EventKind::MigrationCompleted {
                extent: 0,
                from: 0,
                to: 1
            }
            .index()],
            "migration_completed"
        );
        assert_eq!(
            EventKind::NAMES[EventKind::RoutedAround { id: 0, skipped: 1 }.index()],
            "routed_around"
        );
    }

    #[test]
    fn name_table_interns_every_kind() {
        for &n in EventKind::NAMES {
            assert_eq!(EventKind::intern_name(n), Some(n));
        }
        assert_eq!(EventKind::intern_name("nope"), None);
        assert_eq!(
            EventKind::BreakerTrip {
                node: "cluster/row0/rack1".into()
            }
            .name(),
            "breaker_trip"
        );
        assert_eq!(
            EventKind::BreakerRestore {
                node: "cluster/row0/rack1".into()
            }
            .name(),
            "breaker_restore"
        );
        assert_eq!(
            EventKind::EnergyAttributed(Box::new(EnergyAttributed {
                node: "cluster/row0".into(),
                joules: 1.5,
                stranded_w: 0.25,
            }))
            .name(),
            "energy_attributed"
        );
        assert_eq!(
            EventKind::ShardMerged {
                shard: 2,
                events: 9
            }
            .name(),
            "shard_merged"
        );
    }
}
