//! Typed, schema'd telemetry events.
//!
//! Every event carries a [`SimTime`] stamp — never wall-clock — so a
//! recorded trace is a pure function of the run's seeds and configuration.
//! The `track` names the emitting component (`device0`, `controller`,
//! `meter`) and becomes a thread row in the Chrome trace export.

use std::fmt;

use powadapt_sim::{SimDuration, SimTime};

/// Transfer direction of an IO, from the host's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDir {
    /// Device-to-host transfer.
    Read,
    /// Host-to-device transfer.
    Write,
}

impl IoDir {
    /// Lower-case name, as used in metric keys and trace args.
    pub fn as_str(self) -> &'static str {
        match self {
            IoDir::Read => "read",
            IoDir::Write => "write",
        }
    }
}

impl fmt::Display for IoDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One telemetry event: a sim-time stamp, the emitting track, and the
/// typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time of the event. For [`EventKind::Span`] this is the
    /// span's *start*; the duration lives in the payload.
    pub at: SimTime,
    /// Emitting component (`device3`, `controller`, `meter`, ...).
    pub track: String,
    /// Typed payload.
    pub kind: EventKind,
}

/// The event schema. Variants mirror the observable edges of the
/// simulation: IO lifecycle, power-state machinery, fault plumbing, and
/// control decisions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EventKind {
    /// An IO request was accepted by a device.
    IoSubmit {
        /// Request id, unique within its device.
        id: u64,
        /// Transfer direction.
        dir: IoDir,
        /// Transfer length in bytes.
        len: u64,
    },
    /// An IO request completed.
    IoComplete {
        /// Request id, matching the earlier [`EventKind::IoSubmit`].
        id: u64,
        /// Transfer direction.
        dir: IoDir,
        /// Transfer length in bytes.
        len: u64,
        /// Submit-to-complete latency in sim time.
        latency: SimDuration,
    },
    /// An IO failed at submit or was rejected by the device.
    IoError {
        /// Request id of the failed IO.
        id: u64,
        /// Rendered device error.
        error: String,
    },
    /// An arrival was dropped after exhausting re-route attempts.
    ArrivalDropped {
        /// Request id of the dropped arrival.
        id: u64,
    },
    /// A device moved between power states (paper §2 P0..Pn).
    PowerStateTransition {
        /// Index of the state being left.
        from: u8,
        /// Index of the state being entered.
        to: u8,
    },
    /// The cap governor deferred work to stay under the configured cap.
    CapApplied {
        /// The active cap in watts.
        cap_w: f64,
        /// Instantaneous device power when the cap bit.
        power_w: f64,
    },
    /// A device began spinning up / exiting standby.
    SpinUp,
    /// A device began spinning down / entering standby.
    SpinDown,
    /// The fault injector fired.
    FaultInjected {
        /// Short fault label (`io_error`, `latency_spike`, `dropout`, ...).
        fault: String,
    },
    /// A circuit breaker opened (device quarantined from routing).
    BreakerOpen,
    /// A circuit breaker moved to half-open (probe traffic allowed).
    BreakerHalfOpen,
    /// A circuit breaker closed (device back in service).
    BreakerClose,
    /// The adaptive controller applied a budget and produced a plan.
    ControllerDecision {
        /// The budget being applied, in watts.
        budget_w: f64,
        /// Measured fleet power *before* the plan, in watts.
        measured_w: f64,
        /// Expected fleet power after the plan, in watts.
        expected_power_w: f64,
        /// Expected fleet throughput after the plan, in bytes/second.
        expected_throughput_bps: f64,
        /// Labels of devices out of service after this round.
        quarantined: Vec<String>,
        /// Labels of devices that refused their action this round.
        degraded: Vec<String>,
    },
    /// A power-tree node's breaker tripped: the whole subtree lost its
    /// feed (regional failure, rack breaker, row maintenance).
    BreakerTrip {
        /// Path of the tripped tree node (`cluster/row0/rack1`).
        node: String,
    },
    /// A previously tripped power-tree node's feed was restored.
    BreakerRestore {
        /// Path of the restored tree node.
        node: String,
    },
    /// The power tree granted a node a revised budget (cluster layer).
    RebalanceDecision {
        /// Path of the tree node (`cluster/row0/rack1/enc0`).
        node: String,
        /// The node's physical cap in watts.
        cap_w: f64,
        /// Budget granted to the node this round, in watts.
        granted_w: f64,
        /// Aggregate demand the node reported, in watts.
        demand_w: f64,
    },
    /// One reading of the power rig (becomes a counter track in Perfetto).
    PowerSample {
        /// The sampled (quantized, noisy) power in watts.
        watts: f64,
    },
    /// A profiling span with a known sim-time duration; `Event::at` is the
    /// start.
    Span {
        /// Hierarchy-free label (`die0.program`, `media.xfer`, ...).
        label: String,
        /// Sim-time duration of the span.
        dur: SimDuration,
    },
}

impl EventKind {
    /// Every stable schema name, in schema order. The table is what maps
    /// serialized count keys back to the `&'static str` keys used by
    /// [`EventLog`](crate::EventLog) counters, so a checkpointed run's
    /// per-kind accounting survives a cross-process resume.
    pub const NAMES: &'static [&'static str] = &[
        "io_submit",
        "io_complete",
        "io_error",
        "arrival_dropped",
        "power_state_transition",
        "cap_applied",
        "spin_up",
        "spin_down",
        "fault_injected",
        "breaker_open",
        "breaker_half_open",
        "breaker_close",
        "controller_decision",
        "breaker_trip",
        "breaker_restore",
        "rebalance_decision",
        "power_sample",
        "span",
    ];

    /// Resolves a schema name to its interned `&'static str`, or `None`
    /// for a name no [`EventKind`] variant produces.
    pub fn intern_name(name: &str) -> Option<&'static str> {
        Self::NAMES.iter().copied().find(|&n| n == name)
    }

    /// Stable schema name, used for event counting and metric keys.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::IoSubmit { .. } => "io_submit",
            EventKind::IoComplete { .. } => "io_complete",
            EventKind::IoError { .. } => "io_error",
            EventKind::ArrivalDropped { .. } => "arrival_dropped",
            EventKind::PowerStateTransition { .. } => "power_state_transition",
            EventKind::CapApplied { .. } => "cap_applied",
            EventKind::SpinUp => "spin_up",
            EventKind::SpinDown => "spin_down",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::BreakerOpen => "breaker_open",
            EventKind::BreakerHalfOpen => "breaker_half_open",
            EventKind::BreakerClose => "breaker_close",
            EventKind::ControllerDecision { .. } => "controller_decision",
            EventKind::BreakerTrip { .. } => "breaker_trip",
            EventKind::BreakerRestore { .. } => "breaker_restore",
            EventKind::RebalanceDecision { .. } => "rebalance_decision",
            EventKind::PowerSample { .. } => "power_sample",
            EventKind::Span { .. } => "span",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(
            EventKind::IoSubmit {
                id: 1,
                dir: IoDir::Read,
                len: 4096
            }
            .name(),
            "io_submit"
        );
        assert_eq!(EventKind::SpinUp.name(), "spin_up");
        assert_eq!(
            EventKind::Span {
                label: "x".into(),
                dur: SimDuration::ZERO
            }
            .name(),
            "span"
        );
    }

    #[test]
    fn dir_strings() {
        assert_eq!(IoDir::Read.as_str(), "read");
        assert_eq!(IoDir::Write.to_string(), "write");
    }

    #[test]
    fn name_table_interns_every_kind() {
        for &n in EventKind::NAMES {
            assert_eq!(EventKind::intern_name(n), Some(n));
        }
        assert_eq!(EventKind::intern_name("nope"), None);
        assert_eq!(
            EventKind::BreakerTrip {
                node: "cluster/row0/rack1".into()
            }
            .name(),
            "breaker_trip"
        );
        assert_eq!(
            EventKind::BreakerRestore {
                node: "cluster/row0/rack1".into()
            }
            .name(),
            "breaker_restore"
        );
    }
}
