//! Sharded recording: per-track event-log + registry shards with a
//! deterministic merge.
//!
//! A [`ShardedRecorder`] routes every event to one of `n` shards by a
//! stable FNV-1a hash of its track, so each rack / sweep cell lands on
//! its own [`EventLog`] + [`MetricsRegistry`] pair and recording contends
//! on a per-shard mutex instead of one global one. The payoff is
//! [`ShardedRecorder::merged`]: shards fold back into a single view
//! **deterministically** —
//!
//! - per-kind counts and counters merge by exact integer addition;
//! - histograms merge by sketch bucket addition
//!   ([`crate::sketch::Sketch`]), associative and byte-stable;
//! - retained events are ordered by `(sim_time, shard_id, seq)`, where
//!   `seq` is the shard-local record index — a total order;
//! - gauges (last-writer-wins by nature) resolve to the write carried by
//!   the event that is **latest in that same total order**, so the merged
//!   gauge set is identical for any shard count.
//!
//! Because tracks hash identically at every shard count, the merged view
//! is byte-identical at 1, 2, or 8 shards — the property the
//! `shard_equivalence` suite proves against the unsharded goldens.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use powadapt_sim::SimTime;

use crate::event::{Event, EventKind};
use crate::metrics::{push_json_string, MetricsRegistry, MetricsSnapshot};
use crate::recorder::{EventLog, Recorder};
use crate::trace::{derive_event_metrics, gauge_writes};

/// Stable 64-bit FNV-1a, the same construction the snapshot envelope
/// uses: deterministic across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shard-local gauge bookkeeping the merge needs beyond the log +
/// registry. Only gauge-writing events (controller decisions, energy
/// attributions — a handful per run) take this lock; the hot path for
/// every other kind never touches it.
#[derive(Debug, Default)]
struct ShardMeta {
    /// Next gauge-write sequence number: a shard-local counter that is
    /// monotone in record order over the gauge-writing events, which is
    /// all the `(at_ns, seq)` tie-break needs.
    seq: u64,
    /// Per-gauge winning writer under the `(at_ns, seq)` order within
    /// this shard: name → `(at_ns, seq, value)`.
    gauges: BTreeMap<String, (u64, u64, f64)>,
}

#[derive(Debug)]
struct Shard {
    log: EventLog,
    metrics: MetricsRegistry,
    meta: Mutex<ShardMeta>,
    /// Latest event timestamp seen (ns) — a lock-free running max, read
    /// only at merge time for the shard's marker stamp.
    last_at_ns: AtomicU64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            log: EventLog::new(capacity),
            metrics: MetricsRegistry::new(),
            meta: Mutex::new(ShardMeta::default()),
            last_at_ns: AtomicU64::new(0),
        }
    }

    fn meta(&self) -> MutexGuard<'_, ShardMeta> {
        match self.meta.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Direct-mapped ways in the shard-routing memo. Tracks are a bounded
/// vocabulary (device labels, tree paths), so a small cache covers the
/// hot set; collisions merely re-hash.
const ROUTE_WAYS: usize = 64;
/// Low 56 bits of a route-cache word: the track pointer. The high 8 bits
/// hold the shard index. Entries whose pointer or shard does not fit are
/// simply never cached.
const ROUTE_PTR_MASK: u64 = (1 << 56) - 1;

/// A recorder that gives each track-hash class its own event log and
/// metrics shard, mergeable deterministically at any shard count.
#[derive(Debug)]
pub struct ShardedRecorder {
    shards: Vec<Shard>,
    /// Memoized routing, keyed by track *pointer*: tracks are interned
    /// (`crate::intern`), so a pointer identifies its content for the
    /// life of the process and can cache that content's shard. Each way
    /// packs `(shard << 56) | ptr` in one atomic word — a torn
    /// `(ptr, shard)` pair cannot exist — and routing stays a pure
    /// function of track content; the cache only skips re-hashing it.
    route_cache: [AtomicU64; ROUTE_WAYS],
}

impl ShardedRecorder {
    /// A recorder with `shards` shards (min 1), each retaining up to
    /// `capacity` events.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let n = shards.max(1);
        ShardedRecorder {
            shards: (0..n).map(|_| Shard::new(capacity)).collect(),
            route_cache: [const { AtomicU64::new(0) }; ROUTE_WAYS],
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index a track routes to.
    pub fn shard_of(&self, track: &str) -> usize {
        (fnv1a(track.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// [`Self::shard_of`] with the per-pointer memo on the record hot
    /// path: one `Relaxed` load on a hit, hash + store on a miss. A
    /// pointer above 2^56 or a shard index above 2^8 (no practical
    /// deployment) falls back to hashing every time.
    fn route_shard(&self, track: &'static str) -> usize {
        let ptr = track.as_ptr() as u64;
        let way = ((ptr >> 3) as usize) & (ROUTE_WAYS - 1);
        let packed = self.route_cache[way].load(Ordering::Relaxed);
        if packed != 0 && packed & ROUTE_PTR_MASK == ptr {
            return (packed >> 56) as usize;
        }
        let shard = self.shard_of(track);
        if ptr != 0 && ptr <= ROUTE_PTR_MASK && shard < (1 << 8) {
            self.route_cache[way].store((shard as u64) << 56 | ptr, Ordering::Relaxed);
        }
        shard
    }

    /// Total events recorded across all shards.
    pub fn total(&self) -> u64 {
        self.shards.iter().map(|s| s.log.total()).sum()
    }

    /// Discard everything recorded so far on every shard, keeping each
    /// ring's allocation (see [`EventLog::clear`]) so a warmed recorder
    /// resets between measurement passes without re-faulting its pages.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.log.clear();
            shard.metrics.clear();
            *shard.meta() = ShardMeta::default();
            shard.last_at_ns.store(0, Ordering::Relaxed);
        }
    }

    /// Folds every shard into one deterministic [`MergedTrace`]. The
    /// result is identical for any shard count over the same event
    /// stream; one [`EventKind::ShardMerged`] marker per shard is
    /// appended to [`MergedTrace::markers`] (not to the merged stream
    /// itself, which must stay byte-identical to an unsharded recording).
    pub fn merged(&self) -> MergedTrace {
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut total = 0u64;
        let mut dropped = 0u64;
        let metrics = MetricsRegistry::new();
        let mut ordered: Vec<(u64, usize, Event)> = Vec::new();
        let mut markers = Vec::with_capacity(self.shards.len());
        // name → ((at_ns, shard, seq), value)
        let mut gauge_winner: BTreeMap<String, ((u64, usize, u64), f64)> = BTreeMap::new();

        for (i, shard) in self.shards.iter().enumerate() {
            total += shard.log.total();
            dropped += shard.log.dropped();
            for (kind, n) in shard.log.counts() {
                *counts.entry(kind).or_insert(0) += n;
            }
            // Ring order within a shard is record (seq) order, so a
            // stable sort on (at, shard) realizes (at, shard, seq).
            for event in shard.log.snapshot() {
                ordered.push((event.at.as_nanos(), i, event));
            }
            metrics.merge_from(&shard.metrics);
            let meta = shard.meta();
            for (name, &(at_ns, seq, value)) in &meta.gauges {
                let key = (at_ns, i, seq);
                match gauge_winner.get(name) {
                    Some(&(best, _)) if best >= key => {}
                    _ => {
                        gauge_winner.insert(name.clone(), (key, value));
                    }
                }
            }
            markers.push(Event {
                at: SimTime::from_nanos(shard.last_at_ns.load(Ordering::Relaxed)),
                track: "shard",
                kind: EventKind::ShardMerged {
                    shard: i as u64,
                    events: shard.log.total(),
                },
            });
        }
        ordered.sort_by_key(|&(at, shard, _)| (at, shard));
        // The `events.<kind>` counter family mirrors the merged per-kind
        // totals, exactly as an unsharded recorder derives it lazily from
        // its own log.
        for (name, n) in &counts {
            metrics.set_counter(&format!("events.{name}"), *n);
        }
        for (name, (_, value)) in &gauge_winner {
            metrics.set_gauge(name, *value);
        }
        MergedTrace {
            total,
            dropped,
            counts: counts.into_iter().collect(),
            events: ordered.into_iter().map(|(_, _, e)| e).collect(),
            metrics,
            markers,
        }
    }
}

impl Recorder for ShardedRecorder {
    fn record(&self, event: Event) {
        let shard = &self.shards[self.route_shard(event.track)];
        let at_ns = event.at.as_nanos();
        shard.last_at_ns.fetch_max(at_ns, Ordering::Relaxed);
        // Only gauge-writing kinds (a handful of events per run) take the
        // meta lock; `gauge_writes` is empty for everything else.
        let writes = gauge_writes(&event.kind);
        if !writes.is_empty() {
            let mut meta = shard.meta();
            let seq = meta.seq;
            meta.seq += 1;
            for (name, value) in writes {
                match meta.gauges.get(&name) {
                    Some(&(a, s, _)) if (a, s) > (at_ns, seq) => {}
                    _ => {
                        meta.gauges.insert(name, (at_ns, seq, value));
                    }
                }
            }
        }
        derive_event_metrics(&shard.metrics, &event);
        shard.log.record(event);
    }
}

/// The deterministic fold of a [`ShardedRecorder`]'s shards.
#[derive(Debug)]
pub struct MergedTrace {
    /// Events ever recorded, across all shards.
    pub total: u64,
    /// Events evicted by the per-shard ring bounds.
    pub dropped: u64,
    /// Per-kind counts, sorted by kind name.
    pub counts: Vec<(String, u64)>,
    /// Retained events in `(sim_time, shard_id, seq)` order.
    pub events: Vec<Event>,
    /// Merged metrics: counters and histograms by exact addition, gauges
    /// by the total-order latest writer.
    pub metrics: MetricsRegistry,
    /// One [`EventKind::ShardMerged`] marker per shard, stamped with the
    /// shard's latest event time.
    pub markers: Vec<Event>,
}

impl MergedTrace {
    /// Event-count summary in the same deterministic JSON shape as
    /// [`crate::event_counts_json`], so merged and unsharded runs
    /// byte-compare directly.
    pub fn counts_json(&self) -> String {
        let mut out = String::from("{\n  \"total\": ");
        out.push_str(&self.total.to_string());
        out.push_str(",\n  \"dropped\": ");
        out.push_str(&self.dropped.to_string());
        out.push_str(",\n  \"counts\": {");
        for (i, (name, n)) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(&format!(": {n}"));
        }
        if !self.counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// The merged metrics snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::IoDir;
    use crate::trace::{event_counts_json, TraceRecorder};
    use powadapt_sim::SimDuration;

    fn io_complete(at_us: u64, track: &str, latency_us: u64, len: u64) -> Event {
        Event {
            at: SimTime::from_micros(at_us),
            track: crate::intern(track),
            kind: EventKind::IoComplete {
                id: at_us,
                dir: IoDir::Read,
                len,
                latency: SimDuration::from_micros(latency_us),
            },
        }
    }

    fn decision(at_us: u64, track: &str, budget_w: f64) -> Event {
        Event {
            at: SimTime::from_micros(at_us),
            track: crate::intern(track),
            kind: EventKind::ControllerDecision(Box::new(crate::ControllerDecision {
                budget_w,
                measured_w: budget_w - 1.0,
                expected_power_w: budget_w - 0.5,
                expected_throughput_bps: 1e6,
                quarantined: Vec::new(),
                degraded: Vec::new(),
            })),
        }
    }

    fn sample_stream() -> Vec<Event> {
        let mut events = Vec::new();
        for i in 0..40u64 {
            let track = format!("dev{}", i % 5);
            events.push(io_complete(i * 10, &track, 100 + i, 4096));
        }
        events.push(decision(150, "controller", 30.0));
        events.push(decision(390, "controller", 25.0));
        events
    }

    #[test]
    fn merged_view_matches_unsharded_at_every_shard_count() {
        let unsharded = TraceRecorder::new(1 << 12);
        for e in sample_stream() {
            unsharded.record(e);
        }
        let reference_counts = event_counts_json(&unsharded);
        let reference_metrics = unsharded.metrics().snapshot().to_json();

        for shards in [1usize, 2, 8] {
            let rec = ShardedRecorder::new(shards, 1 << 12);
            for e in sample_stream() {
                rec.record(e);
            }
            let merged = rec.merged();
            assert_eq!(merged.counts_json(), reference_counts, "{shards} shards");
            assert_eq!(
                merged.metrics_snapshot().to_json(),
                reference_metrics,
                "{shards} shards"
            );
            assert_eq!(merged.markers.len(), shards);
            assert_eq!(
                merged.markers.iter().fold(0u64, |acc, m| match m.kind {
                    EventKind::ShardMerged { events, .. } => acc + events,
                    _ => acc,
                }),
                merged.total
            );
        }
    }

    #[test]
    fn merged_events_are_totally_ordered() {
        let rec = ShardedRecorder::new(4, 1 << 12);
        for e in sample_stream() {
            rec.record(e);
        }
        let merged = rec.merged();
        assert_eq!(merged.events.len(), 42);
        for pair in merged.events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn gauge_winner_follows_the_total_order() {
        // Two gauge writes at the same sim time on different tracks: the
        // winner must be decided by (at, shard, seq), not arrival order.
        for shards in [1usize, 2, 8] {
            let rec = ShardedRecorder::new(shards, 64);
            // Record the later-by-total-order write first.
            rec.record(decision(100, "controller", 42.0));
            rec.record(decision(50, "controller", 7.0));
            let merged = rec.merged();
            assert_eq!(
                merged.metrics.gauge("controller.budget_w"),
                Some(42.0),
                "{shards} shards"
            );
        }
    }
}
