//! Long-horizon failure scenarios over the canonical cluster.
//!
//! Short golden runs prove the control loop's steady state; the failures
//! that matter operationally unfold over much longer horizons — a rack
//! breaker trips and the survivors must absorb the load, a firmware roll
//! pins devices in their power states one at a time, a diurnal workload
//! churns for days. This module packages those as specs over
//! [`oversubscribed_cluster`], all built from the same primitives the
//! short runs use:
//!
//! - [`regional_failover`] — rack1 (the fast rack) loses its feed
//!   mid-run via a [`TreeFaultWindow`]; the rebalance fails closed, sheds
//!   the rack's load, and recovers when the feed returns.
//! - [`rolling_firmware`] — every device in the fleet takes a staggered
//!   [`stuck_power_state`](powadapt_device::FaultPlan::stuck_power_state)
//!   window, modeling a firmware update that freezes power-state admin
//!   while IO continues.
//! - [`diurnal_churn`] — the canonical tenants run for a configurable
//!   number of diurnal periods ("days").
//!
//! [`run_with_midnight_checkpoints`] drives any spec through
//! [`ClusterSim`], snapshotting at every simulated midnight — the
//! long-horizon half of the checkpoint/restore contract: each snapshot
//! resumes to a report byte-identical to the uninterrupted run.

use powadapt_device::{FaultInjector, FaultPlan, StorageDevice};
use powadapt_sim::{SimDuration, SimRng, SimTime};

use crate::scenario::oversubscribed_cluster;
use crate::selector::SelectionPolicy;
use crate::sim::{ClusterError, ClusterReport, ClusterSim, ClusterSpec};
use crate::treefault::TreeFaultWindow;

/// One simulated "day": the period of the canonical diurnal tenant, so a
/// day of sim time is one full swing of the web tenant's sinusoid.
pub fn day() -> SimDuration {
    SimDuration::from_millis(40)
}

/// Regional failover: the canonical cluster over six days, with rack1 —
/// the rack holding the fast, power-hungry devices — losing its feed for
/// two days mid-run. The fail-closed contract under test: no node ever
/// exceeds its cap while the rack is dark, and service recovers once the
/// feed returns.
pub fn regional_failover(policy: SelectionPolicy, seed: u64) -> ClusterSpec {
    let mut spec = oversubscribed_cluster(policy, seed);
    spec.duration = SimDuration::from_millis(240);
    spec.tree_faults = vec![TreeFaultWindow {
        node: "cluster/row0/rack1".into(),
        from: SimTime::from_millis(80),
        until: SimTime::from_millis(160),
    }];
    spec
}

/// Rolling firmware update: the canonical cluster over six days, each
/// device taking a staggered window during which its power state is
/// stuck (admin transitions refused, IO unaffected) — the way a firmware
/// activation freezes the device's power management mid-roll.
pub fn rolling_firmware(policy: SelectionPolicy, seed: u64) -> ClusterSpec {
    let mut spec = oversubscribed_cluster(policy, seed);
    spec.duration = SimDuration::from_millis(240);
    let fault_root = seed ^ 0xf1f3;
    let mut gi = 0u64;
    for enc in &mut spec.enclosures {
        let devices = std::mem::take(&mut enc.devices);
        enc.devices = devices
            .into_iter()
            .map(|dev| {
                let from = SimTime::from_millis(40 + 40 * gi);
                let until = from + SimDuration::from_millis(30);
                let plan = FaultPlan::none().stuck_power_state(from, until);
                let wrapped: Box<dyn StorageDevice> = Box::new(FaultInjector::seeded(
                    dev,
                    plan,
                    SimRng::stream_seed(fault_root, gi),
                ));
                gi += 1;
                wrapped
            })
            .collect();
    }
    spec
}

/// Multi-day diurnal churn: the canonical cluster run for `days` full
/// diurnal periods.
pub fn diurnal_churn(policy: SelectionPolicy, days: u64, seed: u64) -> ClusterSpec {
    let mut spec = oversubscribed_cluster(policy, seed);
    spec.duration = SimDuration::from_nanos(day().as_nanos() * days);
    spec
}

/// Runs `spec` to completion, snapshotting at every simulated midnight
/// (multiples of `day` past the start, excluding the end itself).
/// Returns the final report and the sealed snapshots in midnight order.
///
/// # Errors
///
/// Propagates construction, run, and serialization failures.
pub fn run_with_midnight_checkpoints(
    spec: ClusterSpec,
    day: SimDuration,
) -> Result<(ClusterReport, Vec<Vec<u8>>), ClusterError> {
    let mut sim = ClusterSim::new(spec)?;
    let mut snaps = Vec::new();
    let mut midnight = sim.start_time() + day;
    while midnight < sim.end_time() {
        sim.run_to(midnight)?;
        snaps.push(sim.snapshot()?);
        midnight += day;
    }
    let report = sim.finish()?;
    Ok((report, snaps))
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use powadapt_obs::TraceRecorder;

    use super::*;
    use crate::sim::run_cluster;

    #[test]
    fn regional_failover_fails_closed_and_recovers() {
        let spec = regional_failover(SelectionPolicy::ModelDriven, 7);
        let trip = SimTime::from_millis(80);
        let restore = SimTime::from_millis(160);

        let mut sim = ClusterSim::new(spec).unwrap();
        sim.run_to(trip).unwrap();
        let before = sim.served_ios_so_far();
        sim.run_to(restore).unwrap();
        let during = sim.served_ios_so_far();
        sim.run_to(sim.end_time()).unwrap();
        let after = sim.served_ios_so_far();
        let report = sim.finish().unwrap();

        // Fail closed: the outage must never push a node over its cap.
        assert!(report.caps_respected(), "cap violated during outage");
        // Shedding: the fast rack is dark, so the outage interval serves
        // strictly less than the healthy interval of the same length.
        let healthy = before;
        let outage = during - before;
        let recovered = after - during;
        assert!(outage < healthy, "outage {outage} vs healthy {healthy}");
        // Recovery: once the feed returns, throughput climbs back above
        // the degraded level.
        assert!(
            recovered > outage,
            "recovered {recovered} vs outage {outage}"
        );
    }

    #[test]
    fn regional_failover_emits_breaker_events() {
        let rec = Arc::new(TraceRecorder::new(1 << 14));
        let prev = powadapt_obs::install(rec.clone());
        let report = run_cluster(regional_failover(SelectionPolicy::ModelDriven, 7)).unwrap();
        match prev {
            Some(p) => {
                powadapt_obs::install(p);
            }
            None => {
                powadapt_obs::uninstall();
            }
        }
        assert!(report.served_ios > 0);
        // The recorder is process-global and tests run in parallel, so
        // assert at-least rather than exactly.
        let count = |name: &str| {
            rec.log()
                .counts()
                .iter()
                .find(|(k, _)| k == name)
                .map_or(0, |&(_, n)| n)
        };
        assert!(count("breaker_trip") >= 1);
        assert!(count("breaker_restore") >= 1);
    }

    #[test]
    fn midnight_checkpoints_resume_bit_exact() {
        let days = 3;
        let seed = 11;
        let spec = diurnal_churn(SelectionPolicy::ModelDriven, days, seed);
        let (report, snaps) = run_with_midnight_checkpoints(spec, day()).unwrap();
        assert_eq!(snaps.len() as u64, days - 1);
        for snap in &snaps {
            let resumed = ClusterSim::resume(
                diurnal_churn(SelectionPolicy::ModelDriven, days, seed),
                snap,
            )
            .unwrap();
            let r2 = resumed.finish().unwrap();
            assert_eq!(r2, report);
        }
    }

    #[test]
    fn failover_checkpoint_mid_outage_resumes_bit_exact() {
        let make = || regional_failover(SelectionPolicy::ModelDriven, 13);
        let mut sim = ClusterSim::new(make()).unwrap();
        // Mid-outage: the breaker has tripped, the restore is pending.
        sim.run_to(SimTime::from_millis(120)).unwrap();
        let snap = sim.snapshot().unwrap();
        let straight = sim.finish().unwrap();
        let resumed = ClusterSim::resume(make(), &snap).unwrap().finish().unwrap();
        assert_eq!(resumed, straight);
    }

    #[test]
    fn rolling_firmware_checkpoint_resumes_bit_exact() {
        let make = || rolling_firmware(SelectionPolicy::ModelDriven, 5);
        let r1 = run_cluster(make()).unwrap();
        assert!(r1.caps_respected());
        assert!(r1.served_ios > 0);

        let mut sim = ClusterSim::new(make()).unwrap();
        // Mid-roll: some devices already released, some still stuck.
        sim.run_to(SimTime::from_millis(100)).unwrap();
        let snap = sim.snapshot().unwrap();
        let straight = sim.finish().unwrap();
        assert_eq!(straight, r1);
        let resumed = ClusterSim::resume(make(), &snap).unwrap().finish().unwrap();
        assert_eq!(resumed, r1);
    }

    #[test]
    fn resume_rejects_corruption_and_spec_mismatch() {
        let make = || diurnal_churn(SelectionPolicy::UniformStatic, 2, 3);
        let mut sim = ClusterSim::new(make()).unwrap();
        sim.run_to(sim.start_time() + day()).unwrap();
        let snap = sim.snapshot().unwrap();

        // One flipped payload byte: checksum mismatch, typed error.
        let mut bad = snap.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(matches!(
            ClusterSim::resume(make(), &bad),
            Err(ClusterError::Snapshot(_))
        ));
        // Truncation fails closed too.
        assert!(matches!(
            ClusterSim::resume(make(), &snap[..snap.len() - 3]),
            Err(ClusterError::Snapshot(_))
        ));
        // A spec with a different fault schedule rejects the snapshot.
        assert!(matches!(
            ClusterSim::resume(regional_failover(SelectionPolicy::UniformStatic, 3), &snap),
            Err(ClusterError::Snapshot(_))
        ));
        // The pristine snapshot still resumes.
        assert!(ClusterSim::resume(make(), &snap).is_ok());
    }
}
