//! Online configuration selection: turning a granted budget into device
//! power states.
//!
//! Two policies, deliberately asymmetric in sophistication:
//!
//! - [`SelectionPolicy::ModelDriven`] queries the measured Fig 10
//!   power-throughput models through the enclosure's
//!   [`AdaptiveController`](powadapt_core::AdaptiveController): every time
//!   the tree revises the enclosure's budget, the controller re-solves the
//!   knapsack and re-plans device power states.
//! - [`SelectionPolicy::UniformStatic`] is the naive baseline the paper's
//!   oversubscription argument is made against: split the cluster cap
//!   uniformly across devices once, pin each device to the best
//!   configuration under its share, and park devices whose cheapest
//!   configuration does not fit — exactly how a heterogeneous fleet
//!   strands its fastest drives.

use powadapt_model::{ConfigPoint, PowerThroughputModel};

/// How the cluster turns budgets into device configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Re-plan through each enclosure's adaptive controller on every
    /// budget revision.
    ModelDriven,
    /// One uniform per-device share of the cluster cap, chosen once.
    UniformStatic,
}

impl SelectionPolicy {
    /// Stable name, used in reports and golden fixtures.
    pub fn as_str(self) -> &'static str {
        match self {
            SelectionPolicy::ModelDriven => "model_driven",
            SelectionPolicy::UniformStatic => "uniform_static",
        }
    }
}

impl std::fmt::Display for SelectionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Sum of the models' minimum powers: the lowest budget the enclosure can
/// operate every device at.
pub fn fleet_floor_w(models: &[PowerThroughputModel]) -> f64 {
    models.iter().map(PowerThroughputModel::min_power_w).sum()
}

/// Sum of the models' maximum powers: the budget the enclosure could use
/// fully.
pub fn fleet_max_w(models: &[PowerThroughputModel]) -> f64 {
    models.iter().map(PowerThroughputModel::max_power_w).sum()
}

/// The uniform-share baseline: for each device, the throughput-best
/// configuration point whose power fits `share_w`, or `None` when even the
/// cheapest configuration does not fit (the device sits idle, stranded).
pub fn uniform_choices(models: &[PowerThroughputModel], share_w: f64) -> Vec<Option<ConfigPoint>> {
    models
        .iter()
        .map(|m| {
            m.points()
                .iter()
                .filter(|p| p.power_w() <= share_w)
                .max_by(|a, b| a.throughput_bps().total_cmp(&b.throughput_bps()))
                .cloned()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{PowerStateId, KIB};
    use powadapt_io::Workload;

    fn pt(device: &str, ps: u8, power: f64, thr: f64) -> ConfigPoint {
        ConfigPoint::new(
            device,
            Workload::RandWrite,
            PowerStateId(ps),
            256 * KIB,
            64,
            power,
            thr,
        )
    }

    fn models() -> Vec<PowerThroughputModel> {
        vec![
            PowerThroughputModel::from_points(
                "A",
                vec![pt("A", 1, 6.5, 1.9e9), pt("A", 2, 5.4, 1.1e9)],
            )
            .unwrap(),
            PowerThroughputModel::from_points(
                "B",
                vec![pt("B", 1, 12.0, 2.3e9), pt("B", 2, 10.0, 1.6e9)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn floors_and_maxima_sum() {
        let m = models();
        assert_eq!(fleet_floor_w(&m), 15.4);
        assert_eq!(fleet_max_w(&m), 18.5);
    }

    #[test]
    fn uniform_share_strands_devices_that_cannot_fit() {
        let m = models();
        let choices = uniform_choices(&m, 7.0);
        // A fits at its ps1 best; B's cheapest point needs 10 W > 7 W.
        assert_eq!(choices[0].as_ref().unwrap().power_w(), 6.5);
        assert!(choices[1].is_none());
    }

    #[test]
    fn generous_share_picks_peaks() {
        let m = models();
        let choices = uniform_choices(&m, 20.0);
        assert_eq!(choices[0].as_ref().unwrap().throughput_bps(), 1.9e9);
        assert_eq!(choices[1].as_ref().unwrap().throughput_bps(), 2.3e9);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(SelectionPolicy::ModelDriven.as_str(), "model_driven");
        assert_eq!(SelectionPolicy::UniformStatic.to_string(), "uniform_static");
    }
}
