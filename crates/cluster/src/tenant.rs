//! Multi-tenant workload layer: per-tenant arrival processes and SLOs.
//!
//! Tenants share the cluster's devices but arrive on their own schedules:
//! a steady Poisson stream, a diurnal sinusoid (the day/night swing that
//! makes oversubscription pay), or a bursty on/off process. Each tenant
//! carries its own [`Slo`] and is accounted separately — the simulation
//! records per-tenant latency windows so a rebalance that saves power at
//! one tenant's expense is visible.
//!
//! Determinism: tenant `i` draws every sample from streams derived from
//! `SimRng::stream_seed(cluster_seed, i)`, so adding a tenant or changing
//! worker counts never perturbs another tenant's arrivals.

use powadapt_core::Slo;
use powadapt_io::{AccessPattern, Arrival, ArrivalGen, Arrivals, OpenLoopSpec};
use powadapt_sim::{SimDuration, SimRng, SimTime};

/// Inter-arrival process of one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TenantArrivals {
    /// Steady Poisson arrivals.
    Poisson {
        /// Mean rate, in IOs per second.
        rate_iops: f64,
    },
    /// A diurnal sinusoid: Poisson arrivals whose rate swings around a
    /// base value, `rate(t) = base × (1 + swing × sin(2πt / period))`.
    /// Implemented as deterministic thinning of a peak-rate Poisson
    /// stream, so the process stays a pure function of the tenant seed.
    Diurnal {
        /// Mid-swing rate, in IOs per second.
        base_rate_iops: f64,
        /// Relative swing amplitude, in `[0, 1)`.
        swing: f64,
        /// Period of one day/night cycle.
        period: SimDuration,
    },
    /// Bursty on/off modulation (interrupted Poisson).
    Bursty {
        /// Rate during on phases, in IOs per second.
        burst_rate_iops: f64,
        /// Mean on-phase duration.
        mean_on: SimDuration,
        /// Mean off-phase duration.
        mean_off: SimDuration,
    },
}

impl TenantArrivals {
    /// Long-run average rate, in IOs per second.
    pub fn mean_rate_iops(&self) -> f64 {
        match *self {
            TenantArrivals::Poisson { rate_iops } => rate_iops,
            TenantArrivals::Diurnal { base_rate_iops, .. } => base_rate_iops,
            TenantArrivals::Bursty {
                burst_rate_iops,
                mean_on,
                mean_off,
            } => Arrivals::OnOff {
                burst_rate_iops,
                mean_on,
                mean_off,
            }
            .mean_rate_iops(),
        }
    }
}

/// One tenant of the cluster.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name, used in reports and traces.
    pub name: String,
    /// Arrival process.
    pub arrivals: TenantArrivals,
    /// Bytes per request.
    pub block_size: u64,
    /// Fraction of requests that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Target region `(start, len)` in each device's logical space.
    pub region: (u64, u64),
    /// The tenant's service-level objective.
    pub slo: Slo,
}

impl TenantSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("tenant name must be non-empty".into());
        }
        match self.arrivals {
            TenantArrivals::Diurnal {
                base_rate_iops,
                swing,
                period,
            } => {
                if base_rate_iops <= 0.0 {
                    return Err(format!("{}: base rate must be positive", self.name));
                }
                if !(0.0..1.0).contains(&swing) {
                    return Err(format!("{}: swing must be in [0, 1)", self.name));
                }
                if period.is_zero() {
                    return Err(format!("{}: period must be non-zero", self.name));
                }
            }
            TenantArrivals::Poisson { rate_iops } => {
                if rate_iops <= 0.0 {
                    return Err(format!("{}: rate must be positive", self.name));
                }
            }
            TenantArrivals::Bursty {
                burst_rate_iops, ..
            } => {
                if burst_rate_iops <= 0.0 {
                    return Err(format!("{}: burst rate must be positive", self.name));
                }
            }
        }
        Ok(())
    }
}

/// Deterministic arrival stream of one tenant.
///
/// Poisson and bursty processes reuse the open-loop machinery of
/// `powadapt-io` directly; the diurnal sinusoid thins a peak-rate Poisson
/// stream with an acceptance draw per candidate, taken from a second RNG
/// stream so the candidate schedule and the thinning decisions never
/// interfere.
#[derive(Debug)]
pub struct TenantStream {
    gen: ArrivalGen,
    thin: Option<Thinning>,
}

#[derive(Debug)]
// powadapt-lint: allow(d6, reason = "swing/period are spec config; the rng is serialized inline by TenantStream")
struct Thinning {
    swing: f64,
    period: SimDuration,
    rng: SimRng,
}

impl TenantStream {
    /// Creates the stream for `spec`, running for `duration`, seeded from
    /// the tenant's stream seed.
    ///
    /// # Errors
    ///
    /// Returns the spec problem, if any.
    pub fn new(spec: &TenantSpec, duration: SimDuration, seed: u64) -> Result<Self, String> {
        spec.validate()?;
        let (arrivals, thin) = match spec.arrivals {
            TenantArrivals::Poisson { rate_iops } => (Arrivals::Poisson { rate_iops }, None),
            TenantArrivals::Bursty {
                burst_rate_iops,
                mean_on,
                mean_off,
            } => (
                Arrivals::OnOff {
                    burst_rate_iops,
                    mean_on,
                    mean_off,
                },
                None,
            ),
            TenantArrivals::Diurnal {
                base_rate_iops,
                swing,
                period,
            } => (
                // Candidates at the peak rate; thinning recovers rate(t).
                Arrivals::Poisson {
                    rate_iops: base_rate_iops * (1.0 + swing),
                },
                Some(Thinning {
                    swing,
                    period,
                    rng: SimRng::seed_from(SimRng::stream_seed(seed, 1)),
                }),
            ),
        };
        let open = OpenLoopSpec {
            arrivals,
            block_size: spec.block_size,
            read_fraction: spec.read_fraction,
            pattern: AccessPattern::Random,
            region: spec.region,
            duration,
            seed: SimRng::stream_seed(seed, 0),
            zipf_theta: None,
        };
        Ok(TenantStream {
            gen: ArrivalGen::new(&open)?,
            thin,
        })
    }

    /// Acceptance probability of a diurnal candidate at time `t`:
    /// `rate(t) / peak_rate`.
    fn accept_probability(thin: &Thinning, at: SimTime) -> f64 {
        let phase = at.duration_since(SimTime::ZERO).as_secs_f64() / thin.period.as_secs_f64();
        let rate_factor = 1.0 + thin.swing * (std::f64::consts::TAU * phase).sin();
        rate_factor / (1.0 + thin.swing)
    }
}

impl powadapt_snap::Snapshot for TenantStream {
    /// Serializes the stream's cursor: the arrival generator plus, for
    /// diurnal tenants, the thinning RNG. The swing and period are spec
    /// configuration and are rebuilt, not serialized.
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        powadapt_snap::Snapshot::write_state(&self.gen, w)?;
        match &self.thin {
            None => w.bool(false),
            Some(t) => {
                w.bool(true);
                powadapt_snap::Snapshot::write_state(&t.rng, w)?;
            }
        }
        Ok(())
    }
}

impl powadapt_snap::Restore for TenantStream {
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        powadapt_snap::Restore::read_state(&mut self.gen, r)?;
        let has_thin = r.bool()?;
        match (&mut self.thin, has_thin) {
            (None, false) => Ok(()),
            (Some(t), true) => powadapt_snap::Restore::read_state(&mut t.rng, r),
            (thin, _) => Err(powadapt_snap::SnapError::InvalidValue(format!(
                "thinning presence mismatch: stream has {}, snapshot has {}",
                thin.is_some(),
                has_thin
            ))),
        }
    }
}

impl Iterator for TenantStream {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        loop {
            let candidate = self.gen.next()?;
            match &mut self.thin {
                None => return Some(candidate),
                Some(thin) => {
                    let p = Self::accept_probability(thin, candidate.at);
                    if thin.rng.chance(p) {
                        return Some(candidate);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::GIB;

    fn spec(arrivals: TenantArrivals) -> TenantSpec {
        TenantSpec {
            name: "t".into(),
            arrivals,
            block_size: 64 * 1024,
            read_fraction: 0.5,
            region: (0, GIB),
            slo: Slo::new(),
        }
    }

    #[test]
    fn poisson_tenant_matches_its_rate() {
        let s = spec(TenantArrivals::Poisson { rate_iops: 4_000.0 });
        let n = TenantStream::new(&s, SimDuration::from_secs(1), 7)
            .unwrap()
            .count() as f64;
        assert!((n - 4_000.0).abs() < 300.0, "{n} arrivals");
    }

    #[test]
    fn diurnal_mean_rate_is_the_base_rate() {
        // Over whole periods the sinusoid integrates away: the accepted
        // rate converges to the base rate.
        let s = spec(TenantArrivals::Diurnal {
            base_rate_iops: 3_000.0,
            swing: 0.8,
            period: SimDuration::from_millis(250),
        });
        let n = TenantStream::new(&s, SimDuration::from_secs(2), 11)
            .unwrap()
            .count() as f64;
        let expected = 3_000.0 * 2.0;
        assert!(
            (n - expected).abs() < expected * 0.1,
            "{n} arrivals vs ~{expected}"
        );
    }

    #[test]
    fn diurnal_peak_and_trough_differ() {
        let s = spec(TenantArrivals::Diurnal {
            base_rate_iops: 5_000.0,
            swing: 0.9,
            period: SimDuration::from_millis(400),
        });
        let arrivals: Vec<Arrival> = TenantStream::new(&s, SimDuration::from_millis(400), 3)
            .unwrap()
            .collect();
        // First quarter-period straddles the peak, third the trough.
        let quarter = |k: u64| {
            arrivals
                .iter()
                .filter(|a| {
                    let ms = a.at.duration_since(SimTime::ZERO).as_nanos() / 1_000_000;
                    (k * 100..(k + 1) * 100).contains(&ms)
                })
                .count()
        };
        let peak = quarter(0);
        let trough = quarter(2);
        assert!(
            peak > trough * 3,
            "peak quarter {peak} vs trough quarter {trough}"
        );
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let s = spec(TenantArrivals::Diurnal {
            base_rate_iops: 2_000.0,
            swing: 0.5,
            period: SimDuration::from_millis(100),
        });
        let run = |seed| -> Vec<Arrival> {
            TenantStream::new(&s, SimDuration::from_millis(500), seed)
                .unwrap()
                .collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn validation_rejects_bad_tenants() {
        let mut s = spec(TenantArrivals::Diurnal {
            base_rate_iops: 1_000.0,
            swing: 1.5,
            period: SimDuration::from_millis(100),
        });
        assert!(s.validate().is_err());
        s.arrivals = TenantArrivals::Poisson { rate_iops: -1.0 };
        assert!(s.validate().is_err());
        s.arrivals = TenantArrivals::Poisson { rate_iops: 10.0 };
        s.name = String::new();
        assert!(s.validate().is_err());
    }

    #[test]
    fn mean_rates() {
        assert_eq!(
            TenantArrivals::Poisson { rate_iops: 9.0 }.mean_rate_iops(),
            9.0
        );
        let b = TenantArrivals::Bursty {
            burst_rate_iops: 10_000.0,
            mean_on: SimDuration::from_millis(10),
            mean_off: SimDuration::from_millis(30),
        };
        assert!((b.mean_rate_iops() - 2_500.0).abs() < 1.0);
    }
}
