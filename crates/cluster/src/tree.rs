//! The power-distribution tree: cluster → row → rack → enclosure.
//!
//! Each node carries a physical power cap and an oversubscription ratio.
//! The ratio is the provisioning contract of real datacenter power
//! delivery: a node may *advertise* `cap_w × oversub` to its children —
//! their nameplate caps can sum past the parent's physical cap — because
//! in practice they never peak together. The tree's job is to keep that
//! bet safe: every control round, leaf demands flow up, budget grants
//! cascade down, and no node is ever granted more than its own cap.
//!
//! The rebalance pass is two sweeps of pure arithmetic:
//!
//! 1. **Up**: each leaf reports a [`Demand`] — the floor it cannot operate
//!    below and the budget it could fully use. Interior nodes sum their
//!    children, clamping the want at their (margined) cap.
//! 2. **Down**: each node first covers every child's floor, then splits the
//!    remaining pool proportionally to the children's wants above floor.
//!    Because the upward pass clamped every want at its node's cap, the
//!    proportional split can never over-grant a child, so a single pass
//!    suffices — no iterative water-filling.
//!
//! Everything is plain `f64` arithmetic over vectors in node-creation
//! order: byte-identical results at any worker count.

use std::error::Error;
use std::fmt;

/// Index of a node within its [`PowerTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Level of a node in the hierarchy. The grant arithmetic is uniform; the
/// kind names the level in paths, traces, and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The root of the tree.
    Cluster,
    /// A row of racks.
    Row,
    /// A rack of enclosures.
    Rack,
    /// A leaf enclosure — the unit an adaptive controller manages.
    Enclosure,
}

impl NodeKind {
    /// Lower-case level name, as used in trace tracks and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeKind::Cluster => "cluster",
            NodeKind::Row => "row",
            NodeKind::Rack => "rack",
            NodeKind::Enclosure => "enclosure",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: NodeKind,
    cap_w: f64,
    oversub: f64,
    parent: Option<usize>,
    children: Vec<usize>,
}

/// A leaf's power request for the next control interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// The lowest budget the leaf can operate at (its controller's floor:
    /// every device at its cheapest configuration).
    pub floor_w: f64,
    /// The budget the leaf would fully use given its current backlog.
    /// Clamped to `floor_w` from below during rebalance.
    pub want_w: f64,
}

/// Per-node outcome of one rebalance round, indexed by [`NodeId`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grant {
    /// The node's physical cap, in watts.
    pub cap_w: f64,
    /// Aggregated want of the node's subtree, in watts (post-clamping).
    pub demand_w: f64,
    /// Budget granted to the node this round, in watts.
    pub granted_w: f64,
}

/// Rebalance failures — all of them configuration problems, surfaced
/// instead of panicking so the simulation layer can report them.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TreeError {
    /// A subtree's aggregate floor exceeds a node's planning cap: the
    /// hardware mix cannot run under this tree at any grant.
    FloorExceedsCap {
        /// Path of the offending node.
        node: String,
        /// Aggregate floor of the node's subtree, in watts.
        floor_w: f64,
        /// The node's planning cap (physical cap × margin), in watts.
        cap_w: f64,
    },
    /// The demand slice does not line up with the tree's leaves.
    DemandCountMismatch {
        /// Number of leaves in the tree.
        leaves: usize,
        /// Number of demands supplied.
        demands: usize,
    },
    /// A child's cap exceeds what its parent advertises even with
    /// oversubscription — the tree is misconfigured.
    Overcommitted {
        /// Path of the parent node.
        node: String,
        /// Sum of the children's caps, in watts.
        child_caps_w: f64,
        /// The parent's advertised capacity (`cap_w × oversub`), in watts.
        advertised_w: f64,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::FloorExceedsCap {
                node,
                floor_w,
                cap_w,
            } => write!(
                f,
                "{node}: subtree floor {floor_w:.2} W exceeds planning cap {cap_w:.2} W"
            ),
            TreeError::DemandCountMismatch { leaves, demands } => write!(
                f,
                "tree has {leaves} leaves but {demands} demands were supplied"
            ),
            TreeError::Overcommitted {
                node,
                child_caps_w,
                advertised_w,
            } => write!(
                f,
                "{node}: child caps sum to {child_caps_w:.2} W, past the advertised {advertised_w:.2} W"
            ),
        }
    }
}

impl Error for TreeError {}

/// The power tree. Nodes are created root-first; leaves are the
/// enclosures the simulation attaches adaptive controllers to.
#[derive(Debug, Clone)]
pub struct PowerTree {
    nodes: Vec<Node>,
}

impl PowerTree {
    /// Creates a tree holding only its root.
    ///
    /// # Panics
    ///
    /// Panics if `cap_w` is not positive or `oversub < 1`.
    pub fn root(name: &str, kind: NodeKind, cap_w: f64, oversub: f64) -> Self {
        assert!(cap_w > 0.0, "cap must be positive");
        assert!(oversub >= 1.0, "oversubscription ratio must be >= 1");
        PowerTree {
            nodes: vec![Node {
                name: name.to_string(),
                kind,
                cap_w,
                oversub,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Adds a child under `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range, `cap_w` is not positive, or
    /// `oversub < 1`.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        name: &str,
        kind: NodeKind,
        cap_w: f64,
        oversub: f64,
    ) -> NodeId {
        assert!(parent.0 < self.nodes.len(), "unknown parent node");
        assert!(cap_w > 0.0, "cap must be positive");
        assert!(oversub >= 1.0, "oversubscription ratio must be >= 1");
        let id = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
            cap_w,
            oversub,
            parent: Some(parent.0),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        NodeId(id)
    }

    /// The root's id.
    pub fn root_id(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree holds only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// All node ids, root-first in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// The node's physical cap, in watts.
    pub fn cap_w(&self, n: NodeId) -> f64 {
        self.nodes[n.0].cap_w
    }

    /// The node's oversubscription ratio.
    pub fn oversub(&self, n: NodeId) -> f64 {
        self.nodes[n.0].oversub
    }

    /// The node's level.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.0].kind
    }

    /// The capacity the node advertises to its children
    /// (`cap_w × oversub`), in watts.
    pub fn advertised_w(&self, n: NodeId) -> f64 {
        self.nodes[n.0].cap_w * self.nodes[n.0].oversub
    }

    /// Slash-separated path from the root (`cluster/row0/rack1/enc0`).
    pub fn path(&self, n: NodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(n.0);
        while let Some(i) = cur {
            parts.push(self.nodes[i].name.as_str());
            cur = self.nodes[i].parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// Leaf node ids (no children), in creation order. Demands passed to
    /// [`rebalance`](PowerTree::rebalance) are parallel to this order.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .map(NodeId)
            .collect()
    }

    /// Ancestors of `n`, nearest first, ending at the root.
    pub fn ancestors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[n.0].parent;
        while let Some(i) = cur {
            out.push(NodeId(i));
            cur = self.nodes[i].parent;
        }
        out
    }

    /// Checks the oversubscription contract: at every interior node, the
    /// children's caps must fit the advertised capacity.
    ///
    /// # Errors
    ///
    /// [`TreeError::Overcommitted`] for the first violating node.
    pub fn validate(&self) -> Result<(), TreeError> {
        for (i, node) in self.nodes.iter().enumerate() {
            if node.children.is_empty() {
                continue;
            }
            let child_caps_w: f64 = node.children.iter().map(|&c| self.nodes[c].cap_w).sum();
            let advertised_w = node.cap_w * node.oversub;
            if child_caps_w > advertised_w + 1e-9 {
                return Err(TreeError::Overcommitted {
                    node: self.path(NodeId(i)),
                    child_caps_w,
                    advertised_w,
                });
            }
        }
        Ok(())
    }

    /// One rebalance round: leaf demands flow up, grants cascade down.
    ///
    /// `demands` is parallel to [`leaves`](PowerTree::leaves). `margin` is
    /// the planning fraction of each physical cap (in `(0, 1]`): grants are
    /// planned against `cap_w × margin` so measured power — which carries
    /// device-level noise on top of the plan — stays under the physical
    /// cap. Returns a [`Grant`] per node, indexed by [`NodeId`].
    ///
    /// # Errors
    ///
    /// [`TreeError::DemandCountMismatch`] if the demand slice does not
    /// match the leaf count, [`TreeError::FloorExceedsCap`] if some
    /// subtree cannot operate under its planning cap.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is outside `(0, 1]`.
    pub fn rebalance(&self, demands: &[Demand], margin: f64) -> Result<Vec<Grant>, TreeError> {
        assert!(
            margin > 0.0 && margin <= 1.0,
            "planning margin must be in (0, 1]"
        );
        let leaves = self.leaves();
        if leaves.len() != demands.len() {
            return Err(TreeError::DemandCountMismatch {
                leaves: leaves.len(),
                demands: demands.len(),
            });
        }

        let n = self.nodes.len();
        let plan_cap = |i: usize| self.nodes[i].cap_w * margin;

        // Upward pass: aggregate (floor, want) per node. Children always
        // have larger indices than their parent (creation order), so a
        // reverse index scan visits children before parents.
        let mut floor = vec![0.0f64; n];
        let mut want = vec![0.0f64; n];
        for (leaf, d) in leaves.iter().zip(demands) {
            floor[leaf.0] = d.floor_w;
            want[leaf.0] = d.want_w.max(d.floor_w).min(plan_cap(leaf.0));
        }
        for i in (0..n).rev() {
            if !self.nodes[i].children.is_empty() {
                floor[i] = self.nodes[i].children.iter().map(|&c| floor[c]).sum();
                let sum_want: f64 = self.nodes[i].children.iter().map(|&c| want[c]).sum();
                want[i] = sum_want.min(plan_cap(i));
            }
            if floor[i] > plan_cap(i) + 1e-9 {
                return Err(TreeError::FloorExceedsCap {
                    node: self.path(NodeId(i)),
                    floor_w: floor[i],
                    cap_w: plan_cap(i),
                });
            }
        }

        // Downward pass: cover floors, then split the pool proportionally
        // to want-above-floor. Wants were clamped at their own planning
        // caps on the way up, so no child can be over-granted.
        let mut granted = vec![0.0f64; n];
        granted[0] = want[0].max(floor[0]).min(plan_cap(0));
        for i in 0..n {
            let children = &self.nodes[i].children;
            if children.is_empty() {
                continue;
            }
            let floors: f64 = children.iter().map(|&c| floor[c]).sum();
            let pool = (granted[i] - floors).max(0.0);
            let needs: f64 = children
                .iter()
                .map(|&c| (want[c] - floor[c]).max(0.0))
                .sum();
            for &c in children {
                let need = (want[c] - floor[c]).max(0.0);
                let extra = if needs <= 1e-12 || pool >= needs {
                    need
                } else {
                    pool * need / needs
                };
                granted[c] = floor[c] + extra;
            }
        }

        Ok((0..n)
            .map(|i| Grant {
                cap_w: self.nodes[i].cap_w,
                demand_w: want[i],
                granted_w: granted[i],
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rack_tree() -> (PowerTree, NodeId, NodeId) {
        let mut t = PowerTree::root("cluster", NodeKind::Cluster, 32.0, 1.0);
        let row = t.add_child(t.root_id(), "row0", NodeKind::Row, 32.0, 1.2);
        let r0 = t.add_child(row, "rack0", NodeKind::Rack, 12.0, 1.0);
        let r1 = t.add_child(row, "rack1", NodeKind::Rack, 22.0, 1.0);
        let e0 = t.add_child(r0, "enc0", NodeKind::Enclosure, 12.0, 1.0);
        let e1 = t.add_child(r1, "enc1", NodeKind::Enclosure, 22.0, 1.0);
        (t, e0, e1)
    }

    #[test]
    fn paths_and_leaves() {
        let (t, e0, e1) = two_rack_tree();
        assert_eq!(t.path(e0), "cluster/row0/rack0/enc0");
        assert_eq!(t.path(e1), "cluster/row0/rack1/enc1");
        assert_eq!(t.leaves(), vec![e0, e1]);
        assert_eq!(t.ancestors(e0).len(), 3);
        assert_eq!(t.kind(e0), NodeKind::Enclosure);
        assert!(!t.is_empty());
    }

    #[test]
    fn oversubscription_contract_is_validated() {
        let (t, _, _) = two_rack_tree();
        // row0 advertises 32 * 1.2 = 38.4 >= 12 + 22: the bet is declared.
        assert!(t.validate().is_ok());

        let mut bad = PowerTree::root("c", NodeKind::Cluster, 10.0, 1.0);
        bad.add_child(bad.root_id(), "a", NodeKind::Enclosure, 8.0, 1.0);
        bad.add_child(bad.root_id(), "b", NodeKind::Enclosure, 8.0, 1.0);
        assert!(matches!(
            bad.validate(),
            Err(TreeError::Overcommitted { .. })
        ));
    }

    #[test]
    fn grants_cover_floors_then_split_by_want() {
        let (t, _, _) = two_rack_tree();
        let demands = [
            Demand {
                floor_w: 8.9,
                want_w: 10.0,
            },
            Demand {
                floor_w: 19.0,
                want_w: 26.0,
            },
        ];
        let grants = t.rebalance(&demands, 1.0).unwrap();
        let leaves = t.leaves();
        let g0 = grants[leaves[0].0];
        let g1 = grants[leaves[1].0];
        // Floors covered, nothing above cap, total within the root cap.
        assert!(g0.granted_w >= 8.9 && g0.granted_w <= 12.0);
        assert!(g1.granted_w >= 19.0 && g1.granted_w <= 22.0);
        assert!(g0.granted_w + g1.granted_w <= 32.0 + 1e-9);
        // rack1 wants more above floor, so it gets the larger share.
        assert!(g1.granted_w - 19.0 > g0.granted_w - 8.9);
    }

    #[test]
    fn margin_shrinks_the_planning_caps() {
        let (t, _, _) = two_rack_tree();
        let demands = [
            Demand {
                floor_w: 5.0,
                want_w: 100.0,
            },
            Demand {
                floor_w: 5.0,
                want_w: 100.0,
            },
        ];
        let full = t.rebalance(&demands, 1.0).unwrap();
        let margined = t.rebalance(&demands, 0.875).unwrap();
        assert_eq!(full[0].granted_w, 32.0);
        assert_eq!(margined[0].granted_w, 28.0);
        // Every grant respects the margined cap.
        for id in t.node_ids() {
            let g = margined[id.0];
            assert!(g.granted_w <= g.cap_w * 0.875 + 1e-9, "{}", t.path(id));
        }
    }

    #[test]
    fn infeasible_floor_is_an_error() {
        let (t, _, _) = two_rack_tree();
        let demands = [
            Demand {
                floor_w: 20.0,
                want_w: 20.0,
            },
            Demand {
                floor_w: 19.0,
                want_w: 19.0,
            },
        ];
        assert!(matches!(
            t.rebalance(&demands, 1.0),
            Err(TreeError::FloorExceedsCap { .. })
        ));
        let wrong_count = [Demand {
            floor_w: 1.0,
            want_w: 1.0,
        }];
        assert!(matches!(
            t.rebalance(&wrong_count, 1.0),
            Err(TreeError::DemandCountMismatch { .. })
        ));
    }

    #[test]
    fn quiet_leaves_release_budget_to_busy_ones() {
        let (t, _, _) = two_rack_tree();
        let busy = t
            .rebalance(
                &[
                    Demand {
                        floor_w: 8.9,
                        want_w: 12.0,
                    },
                    Demand {
                        floor_w: 19.0,
                        want_w: 19.0,
                    },
                ],
                1.0,
            )
            .unwrap();
        let quiet = t
            .rebalance(
                &[
                    Demand {
                        floor_w: 8.9,
                        want_w: 8.9,
                    },
                    Demand {
                        floor_w: 19.0,
                        want_w: 19.0,
                    },
                ],
                1.0,
            )
            .unwrap();
        let leaves = t.leaves();
        assert!(busy[leaves[0].0].granted_w > quiet[leaves[0].0].granted_w);
        assert_eq!(quiet[leaves[0].0].granted_w, 8.9);
    }
}
