//! Energy-attribution ledger: integer-femtojoule accounts that fold the
//! cluster's power waveform into per-node and per-tenant energy, with a
//! conservation audit every control round.
//!
//! The paper's framing — storage devices trading performance for power —
//! only closes the loop if the *energy bill* is attributable: who used
//! the joules a rack drew, and how much of a grant went stranded? The
//! ledger answers both deterministically:
//!
//! - **Accrual** is left-Riemann over the node sampling grid: at each
//!   sample the leaf's measured watts are quantized to integer
//!   micro-watts and held; energy accrues as `µW × ns = fJ` in `u128`
//!   accounts. Integer addition is associative and lossless, so
//!   checkpoint/resume and re-runs reproduce the accounts bit for bit.
//! - **Attribution** happens at audit time: the interval's energy is
//!   split across tenants — plus a reserved *system* account billed for
//!   bytes the cluster moved on its own behalf (placement migrations) —
//!   proportionally to the bytes each moved (integer
//!   multiply-then-divide); the division remainder — and every interval
//!   where nobody moved bytes — lands in the `idle` account.
//!   Conservation (`Σ tenant + system + idle = audited total`) is exact
//!   by construction, and the audit re-verifies it anyway.
//! - **The audit** runs every control round and at the end of the run:
//!   subtree energy computed by ancestor propagation must equal the
//!   per-node direct leaf sum (double-entry), attributed books must
//!   balance, and no node's grant may exceed its physical cap. Failures
//!   emit [`EventKind::ConservationViolation`] — which should never fire
//!   on a healthy run — and are counted for tests.
//!
//! Audits also publish [`EventKind::EnergyAttributed`] for the root and
//! every rack (cumulative joules + stranded watts, i.e. grant minus
//! measured draw) and [`EventKind::SloBurnAlert`] for tenants whose
//! windowed p99 latency has climbed past [`BURN_ALERT_THRESHOLD`] of
//! their SLO target.

use powadapt_obs::{emit, EventKind};
use powadapt_sim::snapshot::{read_time, write_time};
use powadapt_sim::SimTime;
use powadapt_snap::{SnapError, SnapReader, SnapWriter};

use crate::tree::{NodeId, NodeKind, PowerTree};

/// Fraction of the SLO p99 target at which a tenant's burn-rate alert
/// fires: `p99 / target > 0.9` means the error budget is nearly spent.
pub const BURN_ALERT_THRESHOLD: f64 = 0.9;

/// Measured watts quantized to integer micro-watts (negative readings
/// clamp to zero — a meter cannot deliver energy back to the grid).
fn quantize_uw(watts: f64) -> u64 {
    if watts > 0.0 {
        (watts * 1e6).round() as u64
    } else {
        0
    }
}

/// One tenant's cumulative usage, as the audit needs it: attribution is
/// driven by bytes moved, burn alerts by the windowed p99 against the
/// SLO target.
#[derive(Debug, Clone)]
pub struct TenantUsage<'a> {
    /// Tenant name, used in burn-alert events.
    pub name: &'a str,
    /// Cumulative bytes served to the tenant (monotone over the run).
    pub bytes: u64,
    /// Windowed p99 latency in microseconds, if any IO completed.
    pub p99_latency_us: Option<f64>,
    /// The tenant's SLO p99 target in microseconds, if it has one.
    pub slo_p99_us: Option<f64>,
}

/// The ledger: per-leaf and per-tenant femtojoule accounts plus the
/// held power samples the next accrual integrates over.
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    /// Cumulative energy per tree leaf, femtojoules.
    leaf_fj: Vec<u128>,
    /// Held leaf power since the last sample, integer micro-watts.
    leaf_uw: Vec<u64>,
    /// Cumulative energy attributed per tenant, femtojoules.
    tenant_fj: Vec<u128>,
    /// Energy attributed to no tenant: intervals with no bytes moved,
    /// plus per-interval integer-division remainders. Femtojoules.
    idle_fj: u128,
    /// Energy attributed to the reserved *system* tenant — bytes moved
    /// by the cluster itself (placement migrations) rather than by any
    /// tenant's IO. Femtojoules.
    system_fj: u128,
    /// Total leaf energy at the last audit; the next audit attributes
    /// `Σ leaf_fj - audited_fj`.
    audited_fj: u128,
    /// Cumulative tenant bytes at the last audit.
    last_bytes: Vec<u64>,
    /// Cumulative system (migration) bytes at the last audit.
    last_system_bytes: u64,
    /// Time accrual has integrated up to.
    last_accrue: SimTime,
    /// Audit rounds run.
    audits: u64,
    /// Conservation violations detected (zero on a healthy run).
    violations: u64,
}

impl EnergyLedger {
    /// An empty ledger for `n_leaves` tree leaves and `n_tenants`
    /// tenants, starting accrual at `start`.
    pub fn new(n_leaves: usize, n_tenants: usize, start: SimTime) -> Self {
        EnergyLedger {
            leaf_fj: vec![0; n_leaves],
            leaf_uw: vec![0; n_leaves],
            tenant_fj: vec![0; n_tenants],
            idle_fj: 0,
            system_fj: 0,
            audited_fj: 0,
            last_bytes: vec![0; n_tenants],
            last_system_bytes: 0,
            last_accrue: start,
            audits: 0,
            violations: 0,
        }
    }

    /// Integrates the held leaf powers over `[last_accrue, now)`:
    /// `µW × ns` is exactly femtojoules, accumulated in `u128`.
    pub fn accrue(&mut self, now: SimTime) {
        if now <= self.last_accrue {
            return;
        }
        let dt_ns = now.duration_since(self.last_accrue).as_nanos() as u128;
        for (fj, &uw) in self.leaf_fj.iter_mut().zip(&self.leaf_uw) {
            *fj += uw as u128 * dt_ns;
        }
        self.last_accrue = now;
    }

    /// Replaces the held leaf powers with fresh measurements. Call
    /// *after* [`accrue`](EnergyLedger::accrue) at the same instant, so
    /// the old powers cover the interval that just closed.
    pub fn set_powers(&mut self, leaf_watts: &[f64]) {
        debug_assert_eq!(leaf_watts.len(), self.leaf_uw.len());
        for (uw, &w) in self.leaf_uw.iter_mut().zip(leaf_watts) {
            *uw = quantize_uw(w);
        }
    }

    /// Total energy accrued across all leaves, femtojoules.
    pub fn total_fj(&self) -> u128 {
        self.leaf_fj.iter().sum()
    }

    /// Total energy accrued across all leaves, joules.
    pub fn total_joules(&self) -> f64 {
        self.total_fj() as f64 * 1e-15
    }

    /// Cumulative energy attributed to tenant `i`, femtojoules.
    pub fn tenant_fj(&self, i: usize) -> u128 {
        self.tenant_fj[i]
    }

    /// Energy attributed to no tenant so far, femtojoules.
    pub fn idle_fj(&self) -> u128 {
        self.idle_fj
    }

    /// Energy attributed to the reserved system tenant (migration
    /// traffic) so far, femtojoules.
    pub fn system_fj(&self) -> u128 {
        self.system_fj
    }

    /// Audit rounds run so far.
    pub fn audits(&self) -> u64 {
        self.audits
    }

    /// Conservation violations detected so far; zero on a healthy run.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Cumulative energy of every tree node, femtojoules, indexed by
    /// [`NodeId`]: each leaf's account propagated through its ancestors.
    pub fn node_fj(&self, tree: &PowerTree, leaves: &[NodeId]) -> Vec<u128> {
        let mut up = vec![0u128; tree.len()];
        for (leaf, &fj) in leaves.iter().zip(&self.leaf_fj) {
            up[leaf.0] += fj;
            for anc in tree.ancestors(*leaf) {
                up[anc.0] += fj;
            }
        }
        up
    }

    /// One audit round: accrue to `now`, attribute the interval's energy
    /// to tenants by bytes moved, verify conservation, and emit
    /// [`EventKind::EnergyAttributed`] / [`EventKind::SloBurnAlert`]
    /// telemetry. `grants` is the per-node granted watts, indexed by
    /// [`NodeId`]; `usage` is parallel to the tenant accounts.
    /// `system_bytes` is the cumulative byte count moved by the cluster
    /// itself (placement migrations); it joins the proportional split as
    /// a reserved pseudo-tenant billed to the `system` account.
    ///
    /// `enforce_grants` turns on the grant-vs-capacity check. It is the
    /// caller's statement that `grants` came from the tree's rebalance
    /// contract (which promises grants within advertised capacity); the
    /// static baseline's bookkeeping shares deliberately ignore the tree
    /// — over-committing enclosures is the naive policy's defining flaw,
    /// not a ledger inconsistency.
    #[allow(clippy::too_many_arguments)]
    pub fn audit(
        &mut self,
        now: SimTime,
        tree: &PowerTree,
        leaves: &[NodeId],
        grants: &[f64],
        enforce_grants: bool,
        usage: &[TenantUsage<'_>],
        system_bytes: u64,
    ) {
        self.accrue(now);
        let rec = powadapt_obs::current();

        // Attribute the interval closed by this audit.
        let total = self.total_fj();
        let interval = total - self.audited_fj;
        let deltas: Vec<u128> = usage
            .iter()
            .zip(&self.last_bytes)
            .map(|(u, &prev)| u.bytes.saturating_sub(prev) as u128)
            .collect();
        let system_delta = system_bytes.saturating_sub(self.last_system_bytes) as u128;
        let moved: u128 = deltas.iter().sum::<u128>() + system_delta;
        // Three divisions share one zero guard: the split needs both the
        // quotient and the remainder of `interval / moved`, so a single
        // `checked_div` cannot replace the structural check.
        #[allow(clippy::manual_checked_ops)]
        if moved > 0 {
            let mut attributed = 0u128;
            for (fj, delta) in self.tenant_fj.iter_mut().zip(&deltas) {
                let share = interval / moved * delta + interval % moved * delta / moved;
                *fj += share;
                attributed += share;
            }
            let system_share =
                interval / moved * system_delta + interval % moved * system_delta / moved;
            self.system_fj += system_share;
            attributed += system_share;
            // The per-account floors under-count by less than one fJ per
            // account; the remainder is unattributable and goes idle.
            self.idle_fj += interval - attributed;
        } else {
            self.idle_fj += interval;
        }
        for (prev, u) in self.last_bytes.iter_mut().zip(usage) {
            *prev = u.bytes;
        }
        self.last_system_bytes = system_bytes;
        self.audited_fj = total;
        self.audits += 1;

        // Double-entry conservation: the attributed books must balance
        // the metered total exactly — integer arithmetic, no epsilon.
        let books = self.tenant_fj.iter().sum::<u128>() + self.system_fj + self.idle_fj;
        if books != self.audited_fj {
            self.violations += 1;
            emit!(
                rec,
                now,
                "ledger",
                EventKind::ConservationViolation(Box::new(powadapt_obs::ConservationViolation {
                    node: tree.path(tree.root_id()),
                    detail: format!(
                        "attributed books {books} fJ != audited total {} fJ",
                        self.audited_fj
                    ),
                }))
            );
        }

        // Structural conservation: subtree energy via ancestor
        // propagation must equal the direct descendant-leaf sum at every
        // node, and grants must respect physical caps.
        let up = self.node_fj(tree, leaves);
        for id in tree.node_ids() {
            let direct: u128 = leaves
                .iter()
                .zip(&self.leaf_fj)
                .filter(|&(&l, _)| l == id || tree.ancestors(l).contains(&id))
                .map(|(_, &fj)| fj)
                .sum();
            if up[id.0] != direct {
                self.violations += 1;
                emit!(
                    rec,
                    now,
                    "ledger",
                    EventKind::ConservationViolation(Box::new(
                        powadapt_obs::ConservationViolation {
                            node: tree.path(id),
                            detail: format!(
                                "propagated {} fJ != direct leaf sum {direct} fJ",
                                up[id.0]
                            ),
                        }
                    ))
                );
            }
            // A grant may exceed the physical cap up to the node's
            // advertised (oversubscribed) capacity — beyond that the
            // tree's own contract is broken.
            let limit_w = tree.advertised_w(id);
            if enforce_grants && grants[id.0] > limit_w + 1e-9 * limit_w.max(1.0) {
                self.violations += 1;
                emit!(
                    rec,
                    now,
                    "ledger",
                    EventKind::ConservationViolation(Box::new(
                        powadapt_obs::ConservationViolation {
                            node: tree.path(id),
                            detail: format!(
                                "grant {} W exceeds advertised capacity {limit_w} W",
                                grants[id.0]
                            ),
                        }
                    ))
                );
            }
        }

        // Publish the energy accounts for the root and every rack, with
        // the stranded headroom between grant and measured draw.
        if rec.is_enabled() {
            let mut measured_uw = vec![0u128; tree.len()];
            for (leaf, &uw) in leaves.iter().zip(&self.leaf_uw) {
                measured_uw[leaf.0] += uw as u128;
                for anc in tree.ancestors(*leaf) {
                    measured_uw[anc.0] += uw as u128;
                }
            }
            for id in tree.node_ids() {
                if id != tree.root_id() && tree.kind(id) != NodeKind::Rack {
                    continue;
                }
                let measured_w = measured_uw[id.0] as f64 * 1e-6;
                emit!(
                    rec,
                    now,
                    powadapt_obs::intern(&tree.path(id)),
                    EventKind::EnergyAttributed(Box::new(powadapt_obs::EnergyAttributed {
                        node: tree.path(id),
                        joules: up[id.0] as f64 * 1e-15,
                        stranded_w: (grants[id.0] - measured_w).max(0.0),
                    }))
                );
            }
        }

        for u in usage {
            let (Some(p99), Some(target)) = (u.p99_latency_us, u.slo_p99_us) else {
                continue;
            };
            if target <= 0.0 {
                continue;
            }
            let burn_rate = p99 / target;
            if burn_rate > BURN_ALERT_THRESHOLD {
                emit!(
                    rec,
                    now,
                    "slo",
                    EventKind::SloBurnAlert {
                        tenant: u.name.to_string(),
                        burn_rate,
                    }
                );
            }
        }
    }
}

impl powadapt_snap::Snapshot for EnergyLedger {
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.seq_len(self.leaf_fj.len());
        for &fj in &self.leaf_fj {
            w.u128(fj);
        }
        w.seq_len(self.leaf_uw.len());
        for &uw in &self.leaf_uw {
            w.u64(uw);
        }
        w.seq_len(self.tenant_fj.len());
        for &fj in &self.tenant_fj {
            w.u128(fj);
        }
        w.u128(self.idle_fj);
        w.u128(self.system_fj);
        w.u128(self.audited_fj);
        w.seq_len(self.last_bytes.len());
        for &b in &self.last_bytes {
            w.u64(b);
        }
        w.u64(self.last_system_bytes);
        write_time(w, self.last_accrue);
        w.u64(self.audits);
        w.u64(self.violations);
        Ok(())
    }
}

impl powadapt_snap::Restore for EnergyLedger {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.seq_len()?;
        if n != self.leaf_fj.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} leaf energy accounts, ledger has {}",
                self.leaf_fj.len()
            )));
        }
        for fj in &mut self.leaf_fj {
            *fj = r.u128()?;
        }
        let n = r.seq_len()?;
        if n != self.leaf_uw.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} held leaf powers, ledger has {}",
                self.leaf_uw.len()
            )));
        }
        for uw in &mut self.leaf_uw {
            *uw = r.u64()?;
        }
        let n = r.seq_len()?;
        if n != self.tenant_fj.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} tenant energy accounts, ledger has {}",
                self.tenant_fj.len()
            )));
        }
        for fj in &mut self.tenant_fj {
            *fj = r.u128()?;
        }
        self.idle_fj = r.u128()?;
        self.system_fj = r.u128()?;
        self.audited_fj = r.u128()?;
        let n = r.seq_len()?;
        if n != self.last_bytes.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} tenant byte marks, ledger has {}",
                self.last_bytes.len()
            )));
        }
        for b in &mut self.last_bytes {
            *b = r.u64()?;
        }
        self.last_system_bytes = r.u64()?;
        self.last_accrue = read_time(r)?;
        self.audits = r.u64()?;
        self.violations = r.u64()?;

        // The attributed books must balance what has been audited, and
        // nothing can be audited that was never accrued.
        let total = self.total_fj();
        if self.audited_fj > total {
            return Err(SnapError::InvalidValue(format!(
                "audited energy {} fJ exceeds accrued total {total} fJ",
                self.audited_fj
            )));
        }
        let books = self.tenant_fj.iter().sum::<u128>() + self.system_fj + self.idle_fj;
        if books != self.audited_fj {
            return Err(SnapError::InvalidValue(format!(
                "attributed books {books} fJ != audited total {} fJ",
                self.audited_fj
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::PowerTree;
    use powadapt_snap::{Restore, Snapshot};

    fn small_tree() -> PowerTree {
        let mut tree = PowerTree::root("cluster", NodeKind::Cluster, 100.0, 1.0);
        let rack = tree.add_child(tree.root_id(), "rack0", NodeKind::Rack, 60.0, 1.0);
        tree.add_child(rack, "enc0", NodeKind::Enclosure, 30.0, 1.0);
        tree.add_child(rack, "enc1", NodeKind::Enclosure, 30.0, 1.0);
        tree
    }

    #[test]
    fn accrual_is_exact_integer_femtojoules() {
        let mut ledger = EnergyLedger::new(2, 1, SimTime::ZERO);
        ledger.set_powers(&[2.0, 0.5]);
        ledger.accrue(SimTime::from_secs(1));
        // 2 W × 1 s = 2 J = 2e15 fJ; 0.5 W × 1 s = 5e14 fJ.
        assert_eq!(
            ledger.total_fj(),
            2_000_000_000_000_000 + 500_000_000_000_000
        );
        // Re-accruing at the same instant adds nothing.
        ledger.accrue(SimTime::from_secs(1));
        assert_eq!(ledger.total_fj(), 2_500_000_000_000_000);
    }

    #[test]
    fn attribution_conserves_every_femtojoule() {
        let tree = small_tree();
        let leaves = tree.leaves();
        let grants = vec![0.0; tree.len()];
        let mut ledger = EnergyLedger::new(2, 2, SimTime::ZERO);
        ledger.set_powers(&[3.0, 7.0]);
        // Bytes split 1:3 — the integer shares floor, the remainder goes
        // idle, and the books still balance exactly.
        let usage = [
            TenantUsage {
                name: "a",
                bytes: 1000,
                p99_latency_us: None,
                slo_p99_us: None,
            },
            TenantUsage {
                name: "b",
                bytes: 3000,
                p99_latency_us: None,
                slo_p99_us: None,
            },
        ];
        ledger.audit(
            SimTime::from_micros(997),
            &tree,
            &leaves,
            &grants,
            true,
            &usage,
            0,
        );
        let total = ledger.total_fj();
        assert_eq!(
            ledger.tenant_fj(0) + ledger.tenant_fj(1) + ledger.idle_fj(),
            total
        );
        assert_eq!(ledger.violations(), 0);
        assert_eq!(ledger.audits(), 1);

        // A second interval with no bytes moved goes entirely idle.
        let idle_before = ledger.idle_fj();
        ledger.audit(
            SimTime::from_micros(1997),
            &tree,
            &leaves,
            &grants,
            true,
            &usage,
            0,
        );
        assert_eq!(
            ledger.tenant_fj(0) + ledger.tenant_fj(1) + ledger.idle_fj(),
            ledger.total_fj()
        );
        assert!(ledger.idle_fj() > idle_before);
        assert_eq!(ledger.violations(), 0);
    }

    #[test]
    fn grant_over_cap_is_a_violation() {
        let tree = small_tree();
        let leaves = tree.leaves();
        let mut grants = vec![0.0; tree.len()];
        grants[tree.root_id().0] = 1000.0; // root cap is 100 W
        let mut ledger = EnergyLedger::new(2, 0, SimTime::ZERO);
        ledger.audit(
            SimTime::from_micros(1),
            &tree,
            &leaves,
            &grants,
            true,
            &[],
            0,
        );
        assert_eq!(ledger.violations(), 1);
    }

    #[test]
    fn node_energy_propagates_to_ancestors() {
        let tree = small_tree();
        let leaves = tree.leaves();
        let mut ledger = EnergyLedger::new(2, 0, SimTime::ZERO);
        ledger.set_powers(&[1.0, 2.0]);
        ledger.accrue(SimTime::from_secs(1));
        let node = ledger.node_fj(&tree, &leaves);
        // Root and rack both carry the sum of the two enclosure leaves.
        assert_eq!(node[tree.root_id().0], ledger.total_fj());
        assert_eq!(node[1], ledger.total_fj());
        assert_eq!(node[2] + node[3], node[1]);
    }

    #[test]
    fn snapshot_round_trips_and_validates() {
        let mut ledger = EnergyLedger::new(2, 2, SimTime::ZERO);
        ledger.set_powers(&[3.0, 7.0]);
        let tree = small_tree();
        let leaves = tree.leaves();
        let usage = [
            TenantUsage {
                name: "a",
                bytes: 10,
                p99_latency_us: None,
                slo_p99_us: None,
            },
            TenantUsage {
                name: "b",
                bytes: 20,
                p99_latency_us: None,
                slo_p99_us: None,
            },
        ];
        ledger.audit(
            SimTime::from_micros(123),
            &tree,
            &leaves,
            &vec![0.0; tree.len()],
            true,
            &usage,
            0,
        );

        let mut w = SnapWriter::new();
        ledger.write_state(&mut w).unwrap();
        let payload = w.into_payload();
        let mut restored = EnergyLedger::new(2, 2, SimTime::ZERO);
        let mut r = SnapReader::new(&payload);
        restored.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.total_fj(), ledger.total_fj());
        assert_eq!(restored.tenant_fj(0), ledger.tenant_fj(0));
        assert_eq!(restored.idle_fj(), ledger.idle_fj());
        assert_eq!(restored.audits(), 1);

        // Cooked books are rejected: bump one tenant account.
        let mut cooked = SnapWriter::new();
        ledger.write_state(&mut cooked).unwrap();
        let mut bytes = cooked.into_payload();
        // tenant_fj[0] low half sits after: len + 2×u128 leaves, len +
        // 2×u64 held powers, len prefix — flip its low byte instead of
        // hand-computing: corrupt by re-reading and re-writing.
        let mut tampered = EnergyLedger::new(2, 2, SimTime::ZERO);
        let mut r = SnapReader::new(&bytes);
        tampered.read_state(&mut r).unwrap();
        tampered.tenant_fj[0] += 1;
        let mut w2 = SnapWriter::new();
        tampered.write_state(&mut w2).unwrap();
        bytes = w2.into_payload();
        let mut rejected = EnergyLedger::new(2, 2, SimTime::ZERO);
        let mut r2 = SnapReader::new(&bytes);
        assert!(rejected.read_state(&mut r2).is_err());
    }
}
