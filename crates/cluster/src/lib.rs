//! Cluster power-tree layer for power-adaptive storage.
//!
//! The paper's single-enclosure argument — storage can trade throughput
//! for power on demand — pays off at the *cluster* scale, where power
//! delivery is hierarchical and oversubscribed: a row advertises more
//! capacity to its racks than its feeder physically supplies, betting
//! they never peak together. This crate makes that bet explicit and
//! keeps it safe:
//!
//! - [`tree`] — the power-distribution hierarchy (cluster → row → rack →
//!   enclosure) with per-node caps and oversubscription ratios, and the
//!   two-pass rebalance that turns leaf demands into safe budget grants.
//! - [`tenant`] — multi-tenant arrival processes (steady Poisson, diurnal
//!   sinusoid, bursty on/off) with per-tenant SLO accounting.
//! - [`selector`] — policies turning granted budgets into device power
//!   states: model-driven re-planning through each enclosure's
//!   [`AdaptiveController`](powadapt_core::AdaptiveController) versus the
//!   naive uniform static share.
//! - [`sim`] — the lockstep cluster simulation tying them together, fully
//!   inside the determinism perimeter (per-tenant/per-device `SimRng`
//!   streams, byte-identical reports at any worker count).
//! - [`scenario`] — the canonical two-rack oversubscribed scenario used
//!   by `cluster_eval`, the golden fixture, and the examples, plus the
//!   placement-evaluation scenario behind `placement_eval`.
//! - [`treefault`] — scheduled breaker trips at power-tree node scope
//!   (rack, row, region), the fail-closed counterpart to the device-level
//!   [`FaultInjector`](powadapt_device::FaultInjector).
//! - [`longhaul`] — the long-horizon failure scenario library (regional
//!   failover, rolling firmware power-state changes, multi-day diurnal
//!   churn) built on [`sim::ClusterSim`] checkpoint/restore.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod ledger;
pub mod longhaul;
pub mod scenario;
pub mod selector;
pub mod sim;
pub mod tenant;
pub mod tree;
pub mod treefault;

pub use ledger::{EnergyLedger, TenantUsage, BURN_ALERT_THRESHOLD};
pub use powadapt_place::{PlacementConfig, PlacementMode, PlacementTier};
pub use scenario::{
    exos_model, fig10_model, oversubscribed_cluster, placement_cluster, PlacementArm,
};
pub use selector::{fleet_floor_w, fleet_max_w, uniform_choices, SelectionPolicy};
pub use sim::{
    run_cluster, ClusterError, ClusterReport, ClusterSim, ClusterSpec, EnclosureSpec, NodeReport,
    TenantReport,
};
pub use tenant::{TenantArrivals, TenantSpec, TenantStream};
pub use tree::{Demand, Grant, NodeId, NodeKind, PowerTree, TreeError};
pub use treefault::{TreeFaultEvent, TreeFaultSchedule, TreeFaultWindow};
