//! Power-tree fault windows: breaker trips at *node* scope.
//!
//! [`FaultInjector`](powadapt_device::FaultInjector) perturbs a single
//! device; real outages take out whole subtrees — a rack breaker trips, a
//! row goes dark for maintenance, a region fails over. A
//! [`TreeFaultWindow`] schedules exactly that: the named tree node loses
//! its feed over `[from, until)`, every enclosure under it goes
//! unroutable, and the rebalance must fail closed — shed the load, keep
//! every surviving node under its cap, and recover when the feed returns.
//!
//! [`TreeFaultSchedule`] is the state machine the cluster simulation
//! drives: it resolves window paths to [`NodeId`]s once, exposes the next
//! transition time for the event loop's time-step computation, and yields
//! each trip/restore exactly once. The schedule itself is pure phase
//! bookkeeping — the simulation layer owns the side effects (standby
//! requests, routability, re-plans) and the obs emissions
//! ([`EventKind::BreakerTrip`](powadapt_obs::EventKind::BreakerTrip) /
//! [`BreakerRestore`](powadapt_obs::EventKind::BreakerRestore)), so the
//! machinery is reusable by any driver over a [`PowerTree`].

use powadapt_sim::snapshot::{read_time, write_time};
use powadapt_sim::SimTime;
use powadapt_snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

use crate::tree::{NodeId, PowerTree};

/// A scheduled loss of feed for one power-tree node over `[from, until)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeFaultWindow {
    /// Slash-separated path of the node, as [`PowerTree::path`] renders it
    /// (`cluster/row0/rack1`).
    pub node: String,
    /// When the breaker trips (inclusive).
    pub from: SimTime,
    /// When the feed is restored (exclusive end of the outage).
    pub until: SimTime,
}

/// Lifecycle of one window: each transition fires exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The trip has not fired yet.
    Pending,
    /// The node is dark; the restore has not fired yet.
    Tripped,
    /// Both transitions have fired.
    Done,
}

impl Phase {
    fn to_u8(self) -> u8 {
        match self {
            Phase::Pending => 0,
            Phase::Tripped => 1,
            Phase::Done => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, SnapError> {
        match v {
            0 => Ok(Phase::Pending),
            1 => Ok(Phase::Tripped),
            2 => Ok(Phase::Done),
            other => Err(SnapError::InvalidValue(format!(
                "tree fault phase {other} out of range"
            ))),
        }
    }
}

/// One transition yielded by [`TreeFaultSchedule::due`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeFaultEvent {
    /// The window's node lost its feed.
    Trip(NodeId),
    /// The window's node got its feed back.
    Restore(NodeId),
}

/// The resolved, steppable schedule over a set of [`TreeFaultWindow`]s.
#[derive(Debug, Clone)]
pub struct TreeFaultSchedule {
    windows: Vec<TreeFaultWindow>,
    // powadapt-lint: allow(d6, reason = "node paths resolved at construction; rebuilt from the spec on resume")
    nodes: Vec<NodeId>,
    phase: Vec<Phase>,
}

impl TreeFaultSchedule {
    /// Resolves each window's node path against `tree` and validates the
    /// windows.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown path or empty window.
    pub fn resolve(tree: &PowerTree, windows: Vec<TreeFaultWindow>) -> Result<Self, String> {
        let mut nodes = Vec::with_capacity(windows.len());
        for fw in &windows {
            if fw.from >= fw.until {
                return Err(format!(
                    "tree fault window on {} is empty ({:?} >= {:?})",
                    fw.node, fw.from, fw.until
                ));
            }
            let id = tree
                .node_ids()
                .find(|&id| tree.path(id) == fw.node)
                .ok_or_else(|| format!("tree fault names unknown node {}", fw.node))?;
            nodes.push(id);
        }
        let phase = vec![Phase::Pending; windows.len()];
        Ok(TreeFaultSchedule {
            windows,
            nodes,
            phase,
        })
    }

    /// True when no windows are scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The earliest un-fired transition time, if any. Event loops fold
    /// this into their next-time computation so a trip or restore lands on
    /// an iteration of its own exact timestamp.
    pub fn next_transition(&self) -> Option<SimTime> {
        self.windows
            .iter()
            .zip(&self.phase)
            .filter_map(|(fw, p)| match p {
                Phase::Pending => Some(fw.from),
                Phase::Tripped => Some(fw.until),
                Phase::Done => None,
            })
            .min()
    }

    /// Fires every transition due at or before `t`, in window order, each
    /// exactly once. A window whose whole span is already past yields its
    /// trip and restore in the same call, in order.
    pub fn due(&mut self, t: SimTime) -> Vec<TreeFaultEvent> {
        let mut out = Vec::new();
        for i in 0..self.windows.len() {
            if self.phase[i] == Phase::Pending && t >= self.windows[i].from {
                self.phase[i] = Phase::Tripped;
                out.push(TreeFaultEvent::Trip(self.nodes[i]));
            }
            if self.phase[i] == Phase::Tripped && t >= self.windows[i].until {
                self.phase[i] = Phase::Done;
                out.push(TreeFaultEvent::Restore(self.nodes[i]));
            }
        }
        out
    }

    /// True while some tripped window covers `node` (the window names the
    /// node itself or one of its ancestors).
    pub fn is_down(&self, tree: &PowerTree, node: NodeId) -> bool {
        self.nodes.iter().zip(&self.phase).any(|(&fault_node, &p)| {
            p == Phase::Tripped
                && (fault_node == node || tree.ancestors(node).contains(&fault_node))
        })
    }
}

impl Snapshot for TreeFaultSchedule {
    /// Serializes only the per-window phases — the windows themselves are
    /// spec configuration.
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.seq_len(self.phase.len());
        for (p, fw) in self.phase.iter().zip(&self.windows) {
            w.u8(p.to_u8());
            // Pin the window identity so a snapshot from a different fault
            // schedule cannot silently re-time an outage.
            w.str(&fw.node);
            write_time(w, fw.from);
            write_time(w, fw.until);
        }
        Ok(())
    }
}

impl Restore for TreeFaultSchedule {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.seq_len()?;
        if n != self.windows.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} tree fault windows, spec has {}",
                self.windows.len()
            )));
        }
        for i in 0..n {
            let phase = Phase::from_u8(r.u8()?)?;
            let node = r.str()?;
            let from = read_time(r)?;
            let until = read_time(r)?;
            let fw = &self.windows[i];
            if node != fw.node || from != fw.from || until != fw.until {
                return Err(SnapError::InvalidValue(format!(
                    "tree fault window {i} mismatch: snapshot {node} [{from:?}, {until:?}), spec {} [{:?}, {:?})",
                    fw.node, fw.from, fw.until
                )));
            }
            self.phase[i] = phase;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;

    fn tree() -> PowerTree {
        let mut t = PowerTree::root("cluster", NodeKind::Cluster, 30.0, 1.0);
        let row = t.add_child(t.root_id(), "row0", NodeKind::Row, 30.0, 1.0);
        let rack = t.add_child(row, "rack0", NodeKind::Rack, 15.0, 1.0);
        t.add_child(rack, "enc0", NodeKind::Enclosure, 15.0, 1.0);
        t
    }

    fn window(from_ms: u64, until_ms: u64) -> TreeFaultWindow {
        TreeFaultWindow {
            node: "cluster/row0/rack0".into(),
            from: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(until_ms),
        }
    }

    #[test]
    fn resolve_rejects_unknown_nodes_and_empty_windows() {
        let t = tree();
        let bad_node = TreeFaultWindow {
            node: "cluster/row9".into(),
            from: SimTime::ZERO,
            until: SimTime::from_millis(1),
        };
        assert!(TreeFaultSchedule::resolve(&t, vec![bad_node]).is_err());
        assert!(TreeFaultSchedule::resolve(&t, vec![window(5, 5)]).is_err());
    }

    #[test]
    fn transitions_fire_once_in_order() {
        let t = tree();
        let mut s = TreeFaultSchedule::resolve(&t, vec![window(10, 20)]).unwrap();
        let rack = NodeId(2);
        assert_eq!(s.next_transition(), Some(SimTime::from_millis(10)));
        assert!(s.due(SimTime::from_millis(5)).is_empty());
        assert_eq!(
            s.due(SimTime::from_millis(10)),
            vec![TreeFaultEvent::Trip(rack)]
        );
        assert!(s.is_down(&t, rack));
        // The enclosure under the rack is down too; the row is not.
        assert!(s.is_down(&t, NodeId(3)));
        assert!(!s.is_down(&t, NodeId(1)));
        assert_eq!(s.next_transition(), Some(SimTime::from_millis(20)));
        assert_eq!(
            s.due(SimTime::from_millis(25)),
            vec![TreeFaultEvent::Restore(rack)]
        );
        assert!(!s.is_down(&t, rack));
        assert_eq!(s.next_transition(), None);
        assert!(s.due(SimTime::from_millis(30)).is_empty());
    }

    #[test]
    fn skipped_window_yields_both_transitions_in_one_call() {
        let t = tree();
        let mut s = TreeFaultSchedule::resolve(&t, vec![window(10, 20)]).unwrap();
        let rack = NodeId(2);
        assert_eq!(
            s.due(SimTime::from_millis(50)),
            vec![TreeFaultEvent::Trip(rack), TreeFaultEvent::Restore(rack)]
        );
    }

    #[test]
    fn phases_roundtrip_and_mismatched_windows_fail_closed() {
        let t = tree();
        let mut s = TreeFaultSchedule::resolve(&t, vec![window(10, 20)]).unwrap();
        s.due(SimTime::from_millis(12));
        let mut w = SnapWriter::new();
        s.write_state(&mut w).unwrap();
        let payload = w.into_payload();

        let mut fresh = TreeFaultSchedule::resolve(&t, vec![window(10, 20)]).unwrap();
        let mut r = SnapReader::new(&payload);
        fresh.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert!(fresh.is_down(&t, NodeId(2)));

        // A schedule with different timing rejects the snapshot.
        let mut other = TreeFaultSchedule::resolve(&t, vec![window(10, 30)]).unwrap();
        let mut r = SnapReader::new(&payload);
        assert!(matches!(
            other.read_state(&mut r),
            Err(SnapError::InvalidValue(_))
        ));
    }
}
