//! The cluster simulation: a power tree over per-enclosure adaptive
//! controllers, driven by multi-tenant open-loop workloads.
//!
//! One lockstep event loop advances every device in the cluster together
//! (so node-level power sums are coherent), merges the tenants' arrival
//! streams in time order, and runs a control round on a fixed interval:
//! enclosures report demands, the tree rebalances, and revised budgets
//! cascade into [`AdaptiveController::apply_budget`] re-plans. Per-tenant
//! latencies land in [`SloWindow`]s; per-node power is sampled on its own
//! interval, tracked against the node's physical cap, and emitted as
//! Perfetto counter tracks for rack-level nodes.
//!
//! Everything is a pure function of `ClusterSpec` (tree shape, device
//! seeds, tenant seeds derived from the cluster seed): re-running a spec
//! reproduces the report bit for bit at any worker count.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use powadapt_core::{AdaptiveController, ControlError, DeviceAction, Slo, SloWindow};
use powadapt_device::{DeviceError, IoId, IoRequest, StorageDevice};
use powadapt_io::Arrival;
use powadapt_model::PowerThroughputModel;
use powadapt_obs::{emit, EventKind};
use powadapt_sim::units::Micros;
use powadapt_sim::{SimDuration, SimTime};

use crate::selector::{fleet_floor_w, fleet_max_w, uniform_choices, SelectionPolicy};
use crate::tenant::{TenantSpec, TenantStream};
use crate::tree::{Demand, NodeKind, PowerTree, TreeError};

/// One leaf enclosure: its devices and their measured power-throughput
/// models (same label pairing [`AdaptiveController::new`] requires).
#[derive(Debug)]
pub struct EnclosureSpec {
    /// Enclosure name, used for device trace tracks.
    pub name: String,
    /// The enclosure's devices.
    pub devices: Vec<Box<dyn StorageDevice>>,
    /// Model for each device, in device order.
    pub models: Vec<PowerThroughputModel>,
}

/// Full specification of a cluster run.
#[derive(Debug)]
pub struct ClusterSpec {
    /// The power-distribution tree.
    pub tree: PowerTree,
    /// One enclosure per tree leaf, parallel to [`PowerTree::leaves`].
    pub enclosures: Vec<EnclosureSpec>,
    /// The tenants sharing the cluster.
    pub tenants: Vec<TenantSpec>,
    /// Budget-to-configuration policy.
    pub policy: SelectionPolicy,
    /// Control-round interval (demand → rebalance → re-plan).
    pub control_interval: SimDuration,
    /// Node power sampling interval.
    pub sample_interval: SimDuration,
    /// Planning fraction of each physical cap, in `(0, 1]`; the headroom
    /// left absorbs device-level power noise above the plan.
    pub planning_margin: f64,
    /// Run duration.
    pub duration: SimDuration,
    /// Root seed; tenant stream seeds derive from it.
    pub seed: u64,
}

/// Errors from a cluster run.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClusterError {
    /// The spec failed validation; the message names the problem.
    InvalidSpec(String),
    /// The power tree rejected its configuration or a rebalance round.
    Tree(TreeError),
    /// An enclosure controller failed (mismatched models, or every device
    /// refused its action).
    Control(ControlError),
    /// A device rejected an operation with a non-transient error.
    Device(DeviceError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidSpec(m) => write!(f, "invalid cluster spec: {m}"),
            ClusterError::Tree(e) => write!(f, "power tree error: {e}"),
            ClusterError::Control(e) => write!(f, "controller error: {e}"),
            ClusterError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Tree(e) => Some(e),
            ClusterError::Control(e) => Some(e),
            ClusterError::Device(e) => Some(e),
            ClusterError::InvalidSpec(_) => None,
        }
    }
}

impl From<TreeError> for ClusterError {
    fn from(e: TreeError) -> Self {
        ClusterError::Tree(e)
    }
}

impl From<ControlError> for ClusterError {
    fn from(e: ControlError) -> Self {
        ClusterError::Control(e)
    }
}

impl From<DeviceError> for ClusterError {
    fn from(e: DeviceError) -> Self {
        ClusterError::Device(e)
    }
}

/// Power accounting for one tree node over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Slash-separated path from the root.
    pub path: String,
    /// Level of the node.
    pub kind: NodeKind,
    /// Physical cap, in watts.
    pub cap_w: f64,
    /// Highest sampled subtree power, in watts.
    pub max_power_w: f64,
    /// Mean sampled subtree power, in watts.
    pub mean_power_w: f64,
    /// Budget granted in the final control round, in watts (the static
    /// uniform share totals under [`SelectionPolicy::UniformStatic`]).
    pub granted_w: f64,
}

impl NodeReport {
    /// True while the node never exceeded its physical cap.
    pub fn within_cap(&self) -> bool {
        self.max_power_w <= self.cap_w + 1e-9
    }
}

/// Service accounting for one tenant over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Arrivals submitted to a device.
    pub submitted: u64,
    /// IOs completed within the run.
    pub served: u64,
    /// Bytes completed within the run.
    pub bytes: u64,
    /// Arrivals dropped because no routable device accepted them.
    pub dropped: u64,
    /// Mean completion latency, in microseconds (0 when nothing served).
    pub mean_latency_us: f64,
    /// P99 completion latency, in microseconds (0 when nothing served).
    pub p99_latency_us: f64,
    /// Whether the tenant's [`Slo`] held over the run.
    pub slo_ok: bool,
}

/// Outcome of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// The policy that produced this run.
    pub policy: SelectionPolicy,
    /// Per-node power accounting, indexed like the tree's nodes.
    pub nodes: Vec<NodeReport>,
    /// Per-tenant service accounting, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Run duration.
    pub duration: SimDuration,
    /// Total bytes completed across tenants.
    pub total_bytes: u64,
    /// Total IOs completed across tenants.
    pub served_ios: u64,
    /// Control rounds executed (0 under the static baseline).
    pub rebalance_rounds: u64,
    /// Budget revisions that reached a controller re-plan.
    pub replans: u64,
    /// Control rounds where a grant was below an enclosure's floor and the
    /// previous configuration was kept.
    pub infeasible_rounds: u64,
    /// Arrivals dropped across tenants.
    pub dropped: u64,
}

impl ClusterReport {
    /// Aggregate goodput over the run, in bytes per second.
    pub fn aggregate_throughput_bps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_bytes as f64 / secs
        }
    }

    /// True while no node ever exceeded its physical cap.
    pub fn caps_respected(&self) -> bool {
        self.nodes.iter().all(NodeReport::within_cap)
    }

    /// The tightest node: highest `max_power_w / cap_w` across the tree.
    pub fn peak_cap_utilization(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.max_power_w / n.cap_w)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {:.1} MiB/s aggregate, {} IOs served, {} dropped, {} re-plans ({} rounds)",
            self.policy,
            self.aggregate_throughput_bps() / (1024.0 * 1024.0),
            self.served_ios,
            self.dropped,
            self.replans,
            self.rebalance_rounds,
        )?;
        for n in &self.nodes {
            writeln!(
                f,
                "  [{:9}] {:24} {:6.2} W max / {:6.2} W cap ({})",
                n.kind.as_str(),
                n.path,
                n.max_power_w,
                n.cap_w,
                if n.within_cap() { "ok" } else { "VIOLATED" }
            )?;
        }
        for t in &self.tenants {
            writeln!(
                f,
                "  tenant {:12} {:6} served, {:4} dropped, p99 {:8.0} us, slo {}",
                t.name,
                t.served,
                t.dropped,
                t.p99_latency_us,
                if t.slo_ok { "met" } else { "MISSED" }
            )?;
        }
        Ok(())
    }
}

struct TenantAccount {
    window: SloWindow,
    slo: Slo,
    submitted: u64,
    dropped: u64,
}

/// Runs a cluster to completion.
///
/// # Errors
///
/// [`ClusterError::InvalidSpec`] for shape problems (enclosure/leaf
/// mismatch, empty tenants, zero intervals), [`ClusterError::Tree`] for
/// tree misconfiguration, [`ClusterError::Control`]/
/// [`ClusterError::Device`] when a controller or device fails
/// non-transiently.
#[allow(clippy::too_many_lines)]
pub fn run_cluster(spec: ClusterSpec) -> Result<ClusterReport, ClusterError> {
    let ClusterSpec {
        tree,
        enclosures,
        tenants,
        policy,
        control_interval,
        sample_interval,
        planning_margin,
        duration,
        seed,
    } = spec;

    let leaves = tree.leaves();
    if enclosures.len() != leaves.len() {
        return Err(ClusterError::InvalidSpec(format!(
            "{} enclosures for {} tree leaves",
            enclosures.len(),
            leaves.len()
        )));
    }
    if tenants.is_empty() {
        return Err(ClusterError::InvalidSpec("no tenants".into()));
    }
    if control_interval.is_zero() || sample_interval.is_zero() {
        return Err(ClusterError::InvalidSpec(
            "control and sample intervals must be non-zero".into(),
        ));
    }
    if !(planning_margin > 0.0 && planning_margin <= 1.0) {
        return Err(ClusterError::InvalidSpec(
            "planning margin must be in (0, 1]".into(),
        ));
    }
    if duration.is_zero() {
        return Err(ClusterError::InvalidSpec(
            "duration must be non-zero".into(),
        ));
    }
    tree.validate()?;

    let rec = powadapt_obs::current();

    // Build controllers; keep a model copy per enclosure for demand and
    // baseline math (the controller owns its own).
    let mut controllers: Vec<AdaptiveController> = Vec::with_capacity(enclosures.len());
    let mut enc_models: Vec<Vec<PowerThroughputModel>> = Vec::with_capacity(enclosures.len());
    let mut enc_names: Vec<String> = Vec::with_capacity(enclosures.len());
    let mut flat: Vec<(usize, usize)> = Vec::new();
    for (e, enc) in enclosures.into_iter().enumerate() {
        if enc.devices.is_empty() {
            return Err(ClusterError::InvalidSpec(format!(
                "enclosure {} has no devices",
                enc.name
            )));
        }
        for d in 0..enc.devices.len() {
            flat.push((e, d));
        }
        enc_models.push(enc.models.clone());
        enc_names.push(enc.name);
        let mut ctl = AdaptiveController::new(enc.devices, enc.models)?;
        for d in 0..ctl.devices().len() {
            let track = format!("{}.dev{d}", enc_names[e]);
            ctl.device_mut(d).set_recorder(rec.clone(), track);
        }
        controllers.push(ctl);
    }
    let n_devices = flat.len();

    let start = controllers[0].devices()[0].now();
    for ctl in &controllers {
        for d in ctl.devices() {
            if d.now() != start {
                return Err(ClusterError::InvalidSpec(
                    "devices must start at a common time".into(),
                ));
            }
        }
    }
    let t_end = start + duration;

    // Tenant streams and accounts, seeded per tenant.
    let mut streams: Vec<TenantStream> = Vec::with_capacity(tenants.len());
    let mut accounts: Vec<TenantAccount> = Vec::with_capacity(tenants.len());
    for (i, t) in tenants.iter().enumerate() {
        let stream_seed = powadapt_sim::SimRng::stream_seed(seed, i as u64);
        let stream =
            TenantStream::new(t, duration, stream_seed).map_err(ClusterError::InvalidSpec)?;
        streams.push(stream);
        accounts.push(TenantAccount {
            window: SloWindow::new(),
            slo: t.slo.clone(),
            submitted: 0,
            dropped: 0,
        });
    }
    let mut pending: Vec<Option<Arrival>> = streams.iter_mut().map(Iterator::next).collect();

    // Which devices the router may target, per the active plan.
    let mut routable: Vec<bool> = vec![false; n_devices];

    // Bookkeeping for control rounds and node power accounting.
    let n_nodes = tree.len();
    let mut node_max = vec![0.0f64; n_nodes];
    let mut node_sum = vec![0.0f64; n_nodes];
    let mut node_samples = 0u64;
    let mut last_grants = vec![0.0f64; n_nodes];
    let mut last_applied: Vec<Option<f64>> = vec![None; controllers.len()];
    let mut rebalance_rounds = 0u64;
    let mut replans = 0u64;
    let mut infeasible_rounds = 0u64;

    // In-flight IO ownership: global request id -> tenant index.
    let mut owners: BTreeMap<u64, usize> = BTreeMap::new();
    let mut next_id = 0u64;

    // Initial configuration.
    match policy {
        SelectionPolicy::UniformStatic => {
            // The naive contract: every device gets an equal slice of the
            // cluster's physical cap, decided once, never revisited.
            let share_w = tree.cap_w(tree.root_id()) / n_devices as f64;
            for (e, ctl) in controllers.iter_mut().enumerate() {
                let choices = uniform_choices(&enc_models[e], share_w);
                for (d, choice) in choices.iter().enumerate() {
                    let Some(gi) = flat.iter().position(|&(fe, fd)| fe == e && fd == d) else {
                        continue;
                    };
                    match choice {
                        Some(point) => {
                            ctl.device_mut(d).set_power_state(point.power_state())?;
                            routable[gi] = true;
                        }
                        None => routable[gi] = false,
                    }
                }
            }
            // Report the share totals as the tree's static "grants".
            for (leaf, ctl) in leaves.iter().zip(&controllers) {
                last_grants[leaf.0] = share_w * ctl.devices().len() as f64;
            }
            for id in tree.node_ids() {
                let descendants_sum: f64 = leaves
                    .iter()
                    .filter(|l| tree.ancestors(**l).contains(&id))
                    .map(|l| last_grants[l.0])
                    .sum();
                if descendants_sum > 0.0 {
                    last_grants[id.0] = descendants_sum;
                }
            }
        }
        SelectionPolicy::ModelDriven => {
            control_round(
                &tree,
                &leaves,
                &mut controllers,
                &enc_models,
                &flat,
                planning_margin,
                start,
                &mut routable,
                &mut last_grants,
                &mut last_applied,
                &mut replans,
                &mut infeasible_rounds,
            )?;
            rebalance_rounds += 1;
        }
    }

    let mut next_control = start + control_interval;
    let mut next_sample = start;

    loop {
        // Next event time across arrivals, devices, and the two tickers.
        let mut t = next_sample.min(next_control);
        for a in pending.iter().flatten() {
            t = t.min(start.max(a.at));
        }
        for ctl in &mut controllers {
            for d in 0..ctl.devices().len() {
                if let Some(dt) = ctl.device_mut(d).next_event() {
                    t = t.min(dt);
                }
            }
        }
        if t >= t_end {
            break;
        }

        // Advance the whole cluster in lockstep; account completions.
        for ctl in &mut controllers {
            for d in 0..ctl.devices().len() {
                for c in ctl.device_mut(d).advance_to(t) {
                    if let Some(tenant) = owners.remove(&c.id.0) {
                        let latency_us =
                            c.completed.duration_since(c.submitted).as_secs_f64() * 1e6;
                        accounts[tenant]
                            .window
                            .observe(Micros::new(latency_us), c.len);
                    }
                }
            }
        }

        // Admit arrivals due at or before t, merged across tenants in
        // (time, tenant index) order.
        loop {
            let due = pending
                .iter()
                .enumerate()
                .filter_map(|(i, a)| a.map(|a| (start.max(a.at), i)))
                .min();
            let Some((at, tenant)) = due else { break };
            if at > t {
                break;
            }
            let Some(arrival) = pending[tenant].take() else {
                break;
            };
            pending[tenant] = streams[tenant].next();
            submit_arrival(
                &mut controllers,
                &flat,
                &routable,
                &arrival,
                tenant,
                &mut next_id,
                &mut owners,
                &mut accounts,
                t,
            )?;
        }

        // Control round.
        if t >= next_control {
            if policy == SelectionPolicy::ModelDriven {
                control_round(
                    &tree,
                    &leaves,
                    &mut controllers,
                    &enc_models,
                    &flat,
                    planning_margin,
                    t,
                    &mut routable,
                    &mut last_grants,
                    &mut last_applied,
                    &mut replans,
                    &mut infeasible_rounds,
                )?;
                rebalance_rounds += 1;
            }
            next_control = t + control_interval;
        }

        // Node power sampling.
        if t >= next_sample {
            sample_nodes(
                &tree,
                &leaves,
                &controllers,
                t,
                &mut node_max,
                &mut node_sum,
            );
            node_samples += 1;
            next_sample = t + sample_interval;
        }
    }

    // Close the run at exactly t_end: drain-by-advance and a final sample.
    for ctl in &mut controllers {
        for d in 0..ctl.devices().len() {
            for c in ctl.device_mut(d).advance_to(t_end) {
                if let Some(tenant) = owners.remove(&c.id.0) {
                    let latency_us = c.completed.duration_since(c.submitted).as_secs_f64() * 1e6;
                    accounts[tenant]
                        .window
                        .observe(Micros::new(latency_us), c.len);
                }
            }
        }
    }
    sample_nodes(
        &tree,
        &leaves,
        &controllers,
        t_end,
        &mut node_max,
        &mut node_sum,
    );
    node_samples += 1;

    let nodes: Vec<NodeReport> = tree
        .node_ids()
        .map(|id| NodeReport {
            path: tree.path(id),
            kind: tree.kind(id),
            cap_w: tree.cap_w(id),
            max_power_w: node_max[id.0],
            mean_power_w: node_sum[id.0] / node_samples as f64,
            granted_w: last_grants[id.0],
        })
        .collect();
    let tenant_reports: Vec<TenantReport> = tenants
        .iter()
        .zip(&accounts)
        .map(|(t, a)| TenantReport {
            name: t.name.clone(),
            submitted: a.submitted,
            served: a.window.len() as u64,
            bytes: a.window.bytes(),
            dropped: a.dropped,
            mean_latency_us: a.window.mean_latency().map_or(0.0, Micros::get),
            p99_latency_us: a.window.p99_latency().map_or(0.0, Micros::get),
            slo_ok: a.window.satisfies(&a.slo, duration),
        })
        .collect();
    let total_bytes: u64 = tenant_reports.iter().map(|t| t.bytes).sum();
    let served_ios: u64 = tenant_reports.iter().map(|t| t.served).sum();
    let dropped: u64 = tenant_reports.iter().map(|t| t.dropped).sum();

    Ok(ClusterReport {
        policy,
        nodes,
        tenants: tenant_reports,
        duration,
        total_bytes,
        served_ios,
        rebalance_rounds,
        replans,
        infeasible_rounds,
        dropped,
    })
}

/// Marks devices routable per the enclosure's applied plan: `Operate`
/// actions route, `Standby` (and quarantined devices absent from the
/// plan) do not. Actions match devices by label, first unclaimed wins.
fn set_routable_from_plan(
    routable: &mut [bool],
    flat: &[(usize, usize)],
    e: usize,
    actions: &[(String, DeviceAction)],
    ctl: &AdaptiveController,
) {
    for (gi, &(fe, _)) in flat.iter().enumerate() {
        if fe == e {
            routable[gi] = false;
        }
    }
    let mut assigned = vec![false; ctl.devices().len()];
    for (label, action) in actions {
        let slot = ctl
            .devices()
            .iter()
            .enumerate()
            .position(|(d, dev)| !assigned[d] && dev.spec().label() == label);
        if let Some(d) = slot {
            assigned[d] = true;
            if let Some(gi) = flat.iter().position(|&(fe, fd)| fe == e && fd == d) {
                routable[gi] = matches!(action, DeviceAction::Operate(_));
            }
        }
    }
}

/// One demand → rebalance → re-plan round of the model-driven policy.
#[allow(clippy::too_many_arguments)]
fn control_round(
    tree: &PowerTree,
    leaves: &[crate::tree::NodeId],
    controllers: &mut [AdaptiveController],
    enc_models: &[Vec<PowerThroughputModel>],
    flat: &[(usize, usize)],
    planning_margin: f64,
    now: SimTime,
    routable: &mut [bool],
    last_grants: &mut [f64],
    last_applied: &mut [Option<f64>],
    replans: &mut u64,
    infeasible_rounds: &mut u64,
) -> Result<(), ClusterError> {
    let rec = powadapt_obs::current();

    // Demands: the floor is structural; the want tracks backlog — a busy
    // enclosure asks for its ceiling, an idle one releases everything
    // above its floor back to the tree.
    let demands: Vec<Demand> = controllers
        .iter()
        .zip(enc_models)
        .map(|(ctl, models)| {
            let busy = ctl.devices().iter().any(|d| d.inflight() > 0);
            let floor_w = fleet_floor_w(models);
            Demand {
                floor_w,
                want_w: if busy { fleet_max_w(models) } else { floor_w },
            }
        })
        .collect();

    let grants = tree.rebalance(&demands, planning_margin)?;
    for id in tree.node_ids() {
        let g = grants[id.0];
        last_grants[id.0] = g.granted_w;
        emit!(
            rec,
            now,
            "tree",
            EventKind::RebalanceDecision {
                node: tree.path(id),
                cap_w: g.cap_w,
                granted_w: g.granted_w,
                demand_w: g.demand_w,
            }
        );
    }

    for (e, leaf) in leaves.iter().enumerate() {
        let granted_w = grants[leaf.0].granted_w;
        let unchanged = last_applied[e].is_some_and(|prev| (prev - granted_w).abs() <= 0.05);
        if unchanged {
            continue;
        }
        match controllers[e].apply_budget(granted_w) {
            Ok(plan) => {
                set_routable_from_plan(routable, flat, e, &plan.actions, &controllers[e]);
                last_applied[e] = Some(granted_w);
                *replans += 1;
            }
            // A grant below the enclosure floor keeps the previous
            // configuration: the tree guarantees floors when feasible, so
            // this only happens under pathological margins.
            Err(ControlError::Infeasible { .. }) => *infeasible_rounds += 1,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Routes and submits one arrival to the least-loaded routable device.
#[allow(clippy::too_many_arguments)]
fn submit_arrival(
    controllers: &mut [AdaptiveController],
    flat: &[(usize, usize)],
    routable: &[bool],
    arrival: &Arrival,
    tenant: usize,
    next_id: &mut u64,
    owners: &mut BTreeMap<u64, usize>,
    accounts: &mut [TenantAccount],
    now: SimTime,
) -> Result<(), ClusterError> {
    let rec = powadapt_obs::current();
    let id = *next_id;
    *next_id += 1;

    // Least-loaded routable device; ties break to the lowest index. A
    // transient refusal moves on to the next candidate; exhausting all of
    // them drops the arrival (open loop does not retry later).
    let mut candidates: Vec<usize> = (0..flat.len()).filter(|&i| routable[i]).collect();
    candidates.sort_by_key(|&i| {
        let (e, d) = flat[i];
        (controllers[e].devices()[d].inflight(), i)
    });
    for &gi in &candidates {
        let (e, d) = flat[gi];
        let dev = controllers[e].device_mut(d);
        let cap = dev.spec().capacity();
        let len = arrival.len.min(cap);
        let offset = arrival.offset.min(cap - len);
        match dev.submit(IoRequest::new(IoId(id), arrival.kind, offset, len)) {
            Ok(()) => {
                owners.insert(id, tenant);
                accounts[tenant].submitted += 1;
                return Ok(());
            }
            Err(e) if e.is_transient() => {}
            Err(e) => return Err(e.into()),
        }
    }
    accounts[tenant].dropped += 1;
    emit!(rec, now, "cluster", EventKind::ArrivalDropped { id });
    Ok(())
}

/// Samples every node's subtree power and records max/mean, emitting
/// Perfetto counter tracks for rack-level nodes.
fn sample_nodes(
    tree: &PowerTree,
    leaves: &[crate::tree::NodeId],
    controllers: &[AdaptiveController],
    now: SimTime,
    node_max: &mut [f64],
    node_sum: &mut [f64],
) {
    let rec = powadapt_obs::current();
    let mut power = vec![0.0f64; tree.len()];
    for (leaf, ctl) in leaves.iter().zip(controllers) {
        let p = ctl.measured_power_w();
        power[leaf.0] += p;
        for anc in tree.ancestors(*leaf) {
            power[anc.0] += p;
        }
    }
    for id in tree.node_ids() {
        let p = power[id.0];
        node_max[id.0] = node_max[id.0].max(p);
        node_sum[id.0] += p;
        if tree.kind(id) == NodeKind::Rack {
            emit!(rec, now, tree.path(id), EventKind::PowerSample { watts: p });
        }
    }
}
