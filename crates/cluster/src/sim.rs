//! The cluster simulation: a power tree over per-enclosure adaptive
//! controllers, driven by multi-tenant open-loop workloads.
//!
//! One lockstep event loop advances every device in the cluster together
//! (so node-level power sums are coherent), merges the tenants' arrival
//! streams in time order, and runs a control round on a fixed interval:
//! enclosures report demands, the tree rebalances, and revised budgets
//! cascade into [`AdaptiveController::apply_budget`] re-plans. Per-tenant
//! latencies land in [`SloWindow`]s; per-node power is sampled on its own
//! interval, tracked against the node's physical cap, and emitted as
//! Perfetto counter tracks for rack-level nodes.
//!
//! Everything is a pure function of `ClusterSpec` (tree shape, device
//! seeds, tenant seeds derived from the cluster seed): re-running a spec
//! reproduces the report bit for bit at any worker count.

use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;

use powadapt_core::{AdaptiveController, ControlError, DeviceAction, Slo, SloWindow};
use powadapt_device::{
    DeviceClass, DeviceError, IoCompletion, IoId, IoKind, IoRequest, StandbyState, StorageDevice,
};
use powadapt_io::Arrival;
use powadapt_model::PowerThroughputModel;
use powadapt_obs::{emit, EventKind};
use powadapt_place::{DeviceSlot, MigrationIo, MigrationPhase, PlacementConfig, PlacementTier};
use powadapt_sim::snapshot::{read_time, write_time};
use powadapt_sim::units::Micros;
use powadapt_sim::{SimDuration, SimTime};
use powadapt_snap::{SnapError, SnapReader, SnapWriter};

use crate::ledger::{EnergyLedger, TenantUsage};
use crate::selector::{fleet_floor_w, fleet_max_w, uniform_choices, SelectionPolicy};
use crate::tenant::{TenantSpec, TenantStream};
use crate::tree::{Demand, NodeId, NodeKind, PowerTree, TreeError};
use crate::treefault::{TreeFaultEvent, TreeFaultSchedule, TreeFaultWindow};

/// One leaf enclosure: its devices and their measured power-throughput
/// models (same label pairing [`AdaptiveController::new`] requires).
#[derive(Debug)]
pub struct EnclosureSpec {
    /// Enclosure name, used for device trace tracks.
    pub name: String,
    /// The enclosure's devices.
    pub devices: Vec<Box<dyn StorageDevice>>,
    /// Model for each device, in device order.
    pub models: Vec<PowerThroughputModel>,
}

/// Full specification of a cluster run.
#[derive(Debug)]
pub struct ClusterSpec {
    /// The power-distribution tree.
    pub tree: PowerTree,
    /// One enclosure per tree leaf, parallel to [`PowerTree::leaves`].
    pub enclosures: Vec<EnclosureSpec>,
    /// The tenants sharing the cluster.
    pub tenants: Vec<TenantSpec>,
    /// Budget-to-configuration policy.
    pub policy: SelectionPolicy,
    /// Control-round interval (demand → rebalance → re-plan).
    pub control_interval: SimDuration,
    /// Node power sampling interval.
    pub sample_interval: SimDuration,
    /// Planning fraction of each physical cap, in `(0, 1]`; the headroom
    /// left absorbs device-level power noise above the plan.
    pub planning_margin: f64,
    /// Run duration.
    pub duration: SimDuration,
    /// Root seed; tenant stream seeds derive from it.
    pub seed: u64,
    /// Scheduled power-tree outages: breaker trips at node scope. Empty
    /// for a healthy run.
    pub tree_faults: Vec<TreeFaultWindow>,
    /// Energy-aware placement tier configuration. `None` keeps the legacy
    /// least-loaded router; `Some` routes every arrival through the
    /// extent catalog and runs background migration + consolidation.
    pub placement: Option<PlacementConfig>,
}

/// Who an in-flight IO belongs to: a tenant's arrival, or one leg of a
/// background extent migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IoOwner {
    /// A tenant arrival (index into the tenant list).
    Tenant(usize),
    /// The source read of migration `id`.
    MigrationRead(u64),
    /// The destination write of migration `id`.
    MigrationWrite(u64),
}

/// Errors from a cluster run.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClusterError {
    /// The spec failed validation; the message names the problem.
    InvalidSpec(String),
    /// The power tree rejected its configuration or a rebalance round.
    Tree(TreeError),
    /// An enclosure controller failed (mismatched models, or every device
    /// refused its action).
    Control(ControlError),
    /// A device rejected an operation with a non-transient error.
    Device(DeviceError),
    /// A checkpoint could not be decoded (corruption, truncation, version
    /// skew, or state inconsistent with the spec).
    Snapshot(SnapError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidSpec(m) => write!(f, "invalid cluster spec: {m}"),
            ClusterError::Tree(e) => write!(f, "power tree error: {e}"),
            ClusterError::Control(e) => write!(f, "controller error: {e}"),
            ClusterError::Device(e) => write!(f, "device error: {e}"),
            ClusterError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Tree(e) => Some(e),
            ClusterError::Control(e) => Some(e),
            ClusterError::Device(e) => Some(e),
            ClusterError::Snapshot(e) => Some(e),
            ClusterError::InvalidSpec(_) => None,
        }
    }
}

impl From<SnapError> for ClusterError {
    fn from(e: SnapError) -> Self {
        ClusterError::Snapshot(e)
    }
}

impl From<TreeError> for ClusterError {
    fn from(e: TreeError) -> Self {
        ClusterError::Tree(e)
    }
}

impl From<ControlError> for ClusterError {
    fn from(e: ControlError) -> Self {
        ClusterError::Control(e)
    }
}

impl From<DeviceError> for ClusterError {
    fn from(e: DeviceError) -> Self {
        ClusterError::Device(e)
    }
}

/// Power accounting for one tree node over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Slash-separated path from the root.
    pub path: String,
    /// Level of the node.
    pub kind: NodeKind,
    /// Physical cap, in watts.
    pub cap_w: f64,
    /// Highest sampled subtree power, in watts.
    pub max_power_w: f64,
    /// Mean sampled subtree power, in watts.
    pub mean_power_w: f64,
    /// Budget granted in the final control round, in watts (the static
    /// uniform share totals under [`SelectionPolicy::UniformStatic`]).
    pub granted_w: f64,
}

impl NodeReport {
    /// True while the node never exceeded its physical cap.
    pub fn within_cap(&self) -> bool {
        self.max_power_w <= self.cap_w + 1e-9
    }
}

/// Service accounting for one tenant over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Arrivals submitted to a device.
    pub submitted: u64,
    /// IOs completed within the run.
    pub served: u64,
    /// Bytes completed within the run.
    pub bytes: u64,
    /// Arrivals dropped because no routable device accepted them.
    pub dropped: u64,
    /// Mean completion latency, in microseconds (0 when nothing served).
    pub mean_latency_us: f64,
    /// P99 completion latency, in microseconds (0 when nothing served).
    pub p99_latency_us: f64,
    /// Whether the tenant's [`Slo`] held over the run.
    pub slo_ok: bool,
}

/// Outcome of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// The policy that produced this run.
    pub policy: SelectionPolicy,
    /// Per-node power accounting, indexed like the tree's nodes.
    pub nodes: Vec<NodeReport>,
    /// Per-tenant service accounting, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Run duration.
    pub duration: SimDuration,
    /// Total bytes completed across tenants.
    pub total_bytes: u64,
    /// Total IOs completed across tenants.
    pub served_ios: u64,
    /// Control rounds executed (0 under the static baseline).
    pub rebalance_rounds: u64,
    /// Budget revisions that reached a controller re-plan.
    pub replans: u64,
    /// Control rounds where a grant was below an enclosure's floor and the
    /// previous configuration was kept.
    pub infeasible_rounds: u64,
    /// Arrivals dropped across tenants.
    pub dropped: u64,
    /// Extent moves started by the placement tier (0 without placement).
    pub migrations_started: u64,
    /// Extent moves committed by the placement tier.
    pub migrations_completed: u64,
    /// Bytes completed by migration IOs (reads + writes; the ledger's
    /// system-tenant usage signal).
    pub migration_bytes: u64,
    /// Total metered energy over the run, joules.
    pub total_joules: f64,
    /// Energy attributed to the reserved system (migration) account,
    /// joules.
    pub system_joules: f64,
    /// Energy attributed to no account (idle + remainders), joules.
    pub idle_joules: f64,
}

impl ClusterReport {
    /// Aggregate goodput over the run, in bytes per second.
    pub fn aggregate_throughput_bps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_bytes as f64 / secs
        }
    }

    /// True while no node ever exceeded its physical cap.
    pub fn caps_respected(&self) -> bool {
        self.nodes.iter().all(NodeReport::within_cap)
    }

    /// The tightest node: highest `max_power_w / cap_w` across the tree.
    pub fn peak_cap_utilization(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.max_power_w / n.cap_w)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {:.1} MiB/s aggregate, {} IOs served, {} dropped, {} re-plans ({} rounds)",
            self.policy,
            self.aggregate_throughput_bps() / (1024.0 * 1024.0),
            self.served_ios,
            self.dropped,
            self.replans,
            self.rebalance_rounds,
        )?;
        for n in &self.nodes {
            writeln!(
                f,
                "  [{:9}] {:24} {:6.2} W max / {:6.2} W cap ({})",
                n.kind.as_str(),
                n.path,
                n.max_power_w,
                n.cap_w,
                if n.within_cap() { "ok" } else { "VIOLATED" }
            )?;
        }
        for t in &self.tenants {
            writeln!(
                f,
                "  tenant {:12} {:6} served, {:4} dropped, p99 {:8.0} us, slo {}",
                t.name,
                t.served,
                t.dropped,
                t.p99_latency_us,
                if t.slo_ok { "met" } else { "MISSED" }
            )?;
        }
        Ok(())
    }
}

// powadapt-lint: allow(d6, reason = "fields are serialized inline by ClusterSim's write_state/read_state; slo is spec config")
struct TenantAccount {
    window: SloWindow,
    slo: Slo,
    submitted: u64,
    dropped: u64,
}

fn write_arrival(w: &mut SnapWriter, a: &Arrival) {
    write_time(w, a.at);
    w.u8(match a.kind {
        IoKind::Read => 0,
        IoKind::Write => 1,
    });
    w.u64(a.offset);
    w.u64(a.len);
}

fn read_arrival(r: &mut SnapReader<'_>) -> Result<Arrival, SnapError> {
    let at = read_time(r)?;
    let kind = match r.u8()? {
        0 => IoKind::Read,
        1 => IoKind::Write,
        other => {
            return Err(SnapError::InvalidValue(format!(
                "arrival kind {other} out of range"
            )))
        }
    };
    let offset = r.u64()?;
    let len = r.u64()?;
    Ok(Arrival {
        at,
        kind,
        offset,
        len,
    })
}

fn write_f64s(w: &mut SnapWriter, vs: &[f64]) {
    w.seq_len(vs.len());
    for &v in vs {
        w.f64(v);
    }
}

fn read_f64s_into(r: &mut SnapReader<'_>, dst: &mut [f64], what: &str) -> Result<(), SnapError> {
    let n = r.seq_len()?;
    if n != dst.len() {
        return Err(SnapError::InvalidValue(format!(
            "snapshot has {n} {what} entries, cluster has {}",
            dst.len()
        )));
    }
    for v in dst {
        *v = r.f64()?;
    }
    Ok(())
}

/// Interns every tree node's path once, indexed by `NodeId`.
fn tree_node_tracks(tree: &PowerTree) -> Vec<&'static str> {
    tree.node_ids()
        .map(|id| powadapt_obs::intern(&tree.path(id)))
        .collect()
}

/// The cluster simulation as a steppable object.
///
/// [`run_cluster`] drives a `ClusterSim` from construction straight to its
/// report; holding the object instead lets a caller stop at any simulated
/// time, serialize the complete dynamic state with
/// [`snapshot`](ClusterSim::snapshot), and continue — in this process or a
/// later one via [`resume`](ClusterSim::resume) — with bit-exact results:
/// a run that checkpoints and resumes produces byte-identical reports and
/// traces to one that never stopped.
///
/// Construction ([`new`](ClusterSim::new)) applies the initial policy and
/// may emit trace events; [`resume`](ClusterSim::resume) rebuilds the
/// object graph from the spec and overlays the checkpointed state without
/// emitting anything, so restored runs do not double-count events.
pub struct ClusterSim {
    // Configuration, rebuilt from the spec on construction and resume.
    // powadapt-lint: allow(d6, reason = "topology; rebuilt from the spec on resume")
    tree: PowerTree,
    // powadapt-lint: allow(d6, reason = "derived from the tree; rebuilt on resume")
    leaves: Vec<NodeId>,
    /// Interned tree-path track names, indexed like the tree's nodes, so
    /// the per-sample `PowerSample` emit is a pointer copy.
    // powadapt-lint: allow(d6, reason = "derived from the tree; rebuilt on resume")
    node_tracks: Vec<&'static str>,
    tenants: Vec<TenantSpec>,
    // powadapt-lint: allow(d6, reason = "spec configuration; rebuilt on resume")
    policy: SelectionPolicy,
    // powadapt-lint: allow(d6, reason = "spec configuration; rebuilt on resume")
    control_interval: SimDuration,
    // powadapt-lint: allow(d6, reason = "spec configuration; rebuilt on resume")
    sample_interval: SimDuration,
    // powadapt-lint: allow(d6, reason = "spec configuration; rebuilt on resume")
    planning_margin: f64,
    // powadapt-lint: allow(d6, reason = "spec configuration; rebuilt on resume")
    duration: SimDuration,
    // powadapt-lint: allow(d6, reason = "model tables; rebuilt from the spec on resume")
    enc_models: Vec<Vec<PowerThroughputModel>>,
    /// Global device index → (enclosure, device-in-enclosure).
    flat: Vec<(usize, usize)>,
    start: SimTime,
    t_end: SimTime,
    // Dynamic state, carried by `write_state`/`read_state`.
    controllers: Vec<AdaptiveController>,
    streams: Vec<TenantStream>,
    pending: Vec<Option<Arrival>>,
    accounts: Vec<TenantAccount>,
    /// Which devices the router may target, per the active plan.
    routable: Vec<bool>,
    node_max: Vec<f64>,
    node_sum: Vec<f64>,
    node_samples: u64,
    last_grants: Vec<f64>,
    last_applied: Vec<Option<f64>>,
    rebalance_rounds: u64,
    replans: u64,
    infeasible_rounds: u64,
    /// In-flight IO ownership: global request id → tenant or migration.
    owners: BTreeMap<u64, IoOwner>,
    next_id: u64,
    next_control: SimTime,
    next_sample: SimTime,
    faults: TreeFaultSchedule,
    /// Integer-femtojoule energy accounts, audited every control round.
    ledger: EnergyLedger,
    /// The placement tier, when the spec configures one. Presence is part
    /// of the spec; its dynamic state is serialized.
    place: Option<PlacementTier>,
    /// Migration IOs the tier has issued that no device has accepted yet
    /// (transient refusals retry on later steps, dark feeds defer).
    mig_backlog: VecDeque<MigrationIo>,
    /// Cumulative bytes completed by migration IOs — the system-tenant
    /// usage signal the ledger attributes energy against.
    mig_bytes: u64,
    /// Last processed event time.
    now: SimTime,
    /// Reused completion buffer for the per-step device drain; transient,
    /// never serialized.
    // powadapt-lint: allow(d6, reason = "transient per-step scratch; contents never live across a snapshot")
    drain_scratch: Vec<IoCompletion>,
    /// Fixed-capacity hand-off from the hot completion drain to the
    /// migration dispatcher: `(move id, was the destination write)`.
    /// Pre-sized to the engine's concurrency cap (each in-flight move has
    /// at most one IO outstanding) and always drained within the same
    /// step, so it never grows and never lives across a snapshot.
    // powadapt-lint: allow(d6, reason = "transient per-step scratch; contents never live across a snapshot")
    mig_scratch: Vec<(u64, bool)>,
    /// Live prefix length of `mig_scratch`.
    // powadapt-lint: allow(d6, reason = "transient per-step scratch; always zero at snapshot points")
    mig_scratch_len: usize,
    /// Reused holder buffer for placement-routed arrivals; transient.
    // powadapt-lint: allow(d6, reason = "transient per-arrival scratch; contents never live across a snapshot")
    holders_scratch: Vec<u32>,
}

impl fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterSim")
            .field("policy", &self.policy)
            .field("now", &self.now)
            .field("t_end", &self.t_end)
            .field("devices", &self.flat.len())
            .field("tenants", &self.tenants.len())
            .finish_non_exhaustive()
    }
}

impl ClusterSim {
    /// Builds the simulation and applies the initial policy configuration
    /// (which may emit trace events, exactly as the start of a
    /// [`run_cluster`] run does).
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidSpec`] for shape problems (enclosure/leaf
    /// mismatch, empty tenants, zero intervals, unknown fault-window
    /// nodes), [`ClusterError::Tree`] for tree misconfiguration,
    /// [`ClusterError::Control`]/[`ClusterError::Device`] when the initial
    /// configuration fails.
    pub fn new(spec: ClusterSpec) -> Result<Self, ClusterError> {
        let mut sim = Self::build(spec)?;
        sim.apply_initial_policy()?;
        Ok(sim)
    }

    /// Rebuilds a simulation from `spec` and a sealed snapshot produced by
    /// [`snapshot`](ClusterSim::snapshot). The spec must be the same one
    /// the checkpointed run was built from (same topology, tenants, seed);
    /// every mismatch the codec can detect fails closed. The resume path
    /// emits no trace events.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Snapshot`] when the envelope or payload is corrupt,
    /// truncated, version-skewed, or inconsistent with the spec; the
    /// construction errors of [`ClusterSim::new`] otherwise.
    pub fn resume(spec: ClusterSpec, snapshot: &[u8]) -> Result<Self, ClusterError> {
        let payload = powadapt_snap::open(snapshot)?;
        let mut sim = Self::build(spec)?;
        let mut r = SnapReader::new(payload);
        powadapt_snap::Restore::read_state(&mut sim, &mut r)?;
        r.finish()?;
        Ok(sim)
    }

    /// Serializes the complete dynamic state into a sealed snapshot
    /// (magic, format version, checksum).
    ///
    /// # Errors
    ///
    /// Propagates device-layer serialization failures.
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        powadapt_snap::Snapshot::write_state(self, &mut w)?;
        Ok(powadapt_snap::seal(&w.into_payload()))
    }

    /// The common start time of the run's devices.
    pub fn start_time(&self) -> SimTime {
        self.start
    }

    /// The end of the run (`start + duration`).
    pub fn end_time(&self) -> SimTime {
        self.t_end
    }

    /// The last processed event time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// IOs completed and credited to tenants so far. Monotone over the
    /// run; the final report's `served_ios` also includes the end-of-run
    /// drain, so it can exceed the last mid-run reading.
    pub fn served_ios_so_far(&self) -> u64 {
        self.accounts.iter().map(|a| a.window.len() as u64).sum()
    }

    #[allow(clippy::too_many_lines)]
    fn build(spec: ClusterSpec) -> Result<Self, ClusterError> {
        let ClusterSpec {
            tree,
            enclosures,
            tenants,
            policy,
            control_interval,
            sample_interval,
            planning_margin,
            duration,
            seed,
            tree_faults,
            placement,
        } = spec;

        let leaves = tree.leaves();
        if enclosures.len() != leaves.len() {
            return Err(ClusterError::InvalidSpec(format!(
                "{} enclosures for {} tree leaves",
                enclosures.len(),
                leaves.len()
            )));
        }
        if tenants.is_empty() {
            return Err(ClusterError::InvalidSpec("no tenants".into()));
        }
        if control_interval.is_zero() || sample_interval.is_zero() {
            return Err(ClusterError::InvalidSpec(
                "control and sample intervals must be non-zero".into(),
            ));
        }
        if !(planning_margin > 0.0 && planning_margin <= 1.0) {
            return Err(ClusterError::InvalidSpec(
                "planning margin must be in (0, 1]".into(),
            ));
        }
        if duration.is_zero() {
            return Err(ClusterError::InvalidSpec(
                "duration must be non-zero".into(),
            ));
        }
        tree.validate()?;
        let faults =
            TreeFaultSchedule::resolve(&tree, tree_faults).map_err(ClusterError::InvalidSpec)?;

        let rec = powadapt_obs::current();

        // Build controllers; keep a model copy per enclosure for demand and
        // baseline math (the controller owns its own).
        let mut controllers: Vec<AdaptiveController> = Vec::with_capacity(enclosures.len());
        let mut enc_models: Vec<Vec<PowerThroughputModel>> = Vec::with_capacity(enclosures.len());
        let mut enc_names: Vec<String> = Vec::with_capacity(enclosures.len());
        let mut flat: Vec<(usize, usize)> = Vec::new();
        for (e, enc) in enclosures.into_iter().enumerate() {
            if enc.devices.is_empty() {
                return Err(ClusterError::InvalidSpec(format!(
                    "enclosure {} has no devices",
                    enc.name
                )));
            }
            for d in 0..enc.devices.len() {
                flat.push((e, d));
            }
            enc_models.push(enc.models.clone());
            enc_names.push(enc.name);
            let mut ctl = AdaptiveController::new(enc.devices, enc.models)?;
            for d in 0..ctl.devices().len() {
                let track = powadapt_obs::intern(&format!("{}.dev{d}", enc_names[e]));
                ctl.device_mut(d).set_recorder(rec.clone(), track);
            }
            controllers.push(ctl);
        }
        let n_devices = flat.len();
        let n_controllers = controllers.len();

        let start = controllers[0].devices()[0].now();
        for ctl in &controllers {
            for d in ctl.devices() {
                if d.now() != start {
                    return Err(ClusterError::InvalidSpec(
                        "devices must start at a common time".into(),
                    ));
                }
            }
        }
        let t_end = start + duration;

        // Tenant streams and accounts, seeded per tenant.
        let mut streams: Vec<TenantStream> = Vec::with_capacity(tenants.len());
        let mut accounts: Vec<TenantAccount> = Vec::with_capacity(tenants.len());
        for (i, t) in tenants.iter().enumerate() {
            let stream_seed = powadapt_sim::SimRng::stream_seed(seed, i as u64);
            let stream =
                TenantStream::new(t, duration, stream_seed).map_err(ClusterError::InvalidSpec)?;
            streams.push(stream);
            accounts.push(TenantAccount {
                window: SloWindow::new(),
                slo: t.slo.clone(),
                submitted: 0,
                dropped: 0,
            });
        }
        let pending: Vec<Option<Arrival>> = streams.iter_mut().map(Iterator::next).collect();

        let n_nodes = tree.len();
        let ledger = EnergyLedger::new(leaves.len(), tenants.len(), start);
        let node_tracks = tree_node_tracks(&tree);

        // The placement tier sees devices as slots: rack ordinal (the
        // anti-affinity domain), capacity, and whether the device is a
        // cold target (HDD class — meant to absorb cold data and spin
        // down between batch windows).
        let racks: Vec<NodeId> = tree
            .node_ids()
            .filter(|&id| tree.kind(id) == NodeKind::Rack)
            .collect();
        let enc_rack: Vec<u32> = leaves
            .iter()
            .enumerate()
            .map(|(e, &leaf)| {
                racks
                    .iter()
                    .position(|&r| r == leaf || tree.ancestors(leaf).contains(&r))
                    .map_or(e as u32, |p| p as u32)
            })
            .collect();
        let mig_cap = placement.as_ref().map_or(0, |c| c.max_active_migrations);
        let place = match placement {
            None => None,
            Some(cfg) => {
                cfg.validate().map_err(ClusterError::InvalidSpec)?;
                let slots: Vec<DeviceSlot> = flat
                    .iter()
                    .map(|&(e, d)| {
                        let spec = controllers[e].devices()[d].spec();
                        DeviceSlot {
                            rack: enc_rack[e],
                            capacity: spec.capacity(),
                            cold_target: spec.class() == DeviceClass::Hdd,
                        }
                    })
                    .collect();
                Some(PlacementTier::new(cfg, slots))
            }
        };
        Ok(ClusterSim {
            tree,
            leaves,
            tenants,
            policy,
            control_interval,
            sample_interval,
            planning_margin,
            duration,
            enc_models,
            flat,
            start,
            t_end,
            controllers,
            streams,
            pending,
            accounts,
            routable: vec![false; n_devices],
            node_tracks,
            node_max: vec![0.0; n_nodes],
            node_sum: vec![0.0; n_nodes],
            node_samples: 0,
            last_grants: vec![0.0; n_nodes],
            last_applied: vec![None; n_controllers],
            rebalance_rounds: 0,
            replans: 0,
            infeasible_rounds: 0,
            owners: BTreeMap::new(),
            next_id: 0,
            next_control: start + control_interval,
            next_sample: start,
            faults,
            ledger,
            place,
            mig_backlog: VecDeque::new(),
            mig_bytes: 0,
            now: start,
            drain_scratch: Vec::new(),
            mig_scratch: vec![(0, false); mig_cap],
            mig_scratch_len: 0,
            holders_scratch: Vec::new(),
        })
    }

    fn apply_initial_policy(&mut self) -> Result<(), ClusterError> {
        match self.policy {
            SelectionPolicy::UniformStatic => {
                // The naive contract: every device gets an equal slice of
                // the cluster's physical cap, decided once, never revisited.
                let share_w = self.tree.cap_w(self.tree.root_id()) / self.flat.len() as f64;
                for e in 0..self.controllers.len() {
                    let choices = uniform_choices(&self.enc_models[e], share_w);
                    for (d, choice) in choices.iter().enumerate() {
                        let Some(gi) = self.flat.iter().position(|&(fe, fd)| fe == e && fd == d)
                        else {
                            continue;
                        };
                        match choice {
                            Some(point) => {
                                self.controllers[e]
                                    .device_mut(d)
                                    .set_power_state(point.power_state())?;
                                self.routable[gi] = true;
                            }
                            None => self.routable[gi] = false,
                        }
                    }
                }
                // Report the share totals as the tree's static "grants".
                for (leaf, ctl) in self.leaves.iter().zip(&self.controllers) {
                    self.last_grants[leaf.0] = share_w * ctl.devices().len() as f64;
                }
                for id in self.tree.node_ids() {
                    let descendants_sum: f64 = self
                        .leaves
                        .iter()
                        .filter(|l| self.tree.ancestors(**l).contains(&id))
                        .map(|l| self.last_grants[l.0])
                        .sum();
                    if descendants_sum > 0.0 {
                        self.last_grants[id.0] = descendants_sum;
                    }
                }
            }
            SelectionPolicy::ModelDriven => {
                self.control_round(self.start)?;
                self.rebalance_rounds += 1;
            }
        }
        Ok(())
    }

    /// Advances the simulation until the next event would land at or past
    /// `limit` (clamped to the run's end). The state after `run_to` is
    /// exactly the state mid-loop of an uninterrupted run: snapshotting
    /// here and resuming continues bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates controller, device, and tree failures.
    pub fn run_to(&mut self, limit: SimTime) -> Result<(), ClusterError> {
        let limit = limit.min(self.t_end);
        loop {
            // Next event time across arrivals, devices, the two tickers,
            // and scheduled tree-fault transitions.
            let mut t = self.next_sample.min(self.next_control);
            if let Some(ft) = self.faults.next_transition() {
                t = t.min(self.now.max(ft));
            }
            for a in self.pending.iter().flatten() {
                t = t.min(self.start.max(a.at));
            }
            for ctl in &mut self.controllers {
                for d in 0..ctl.devices().len() {
                    if let Some(dt) = ctl.device_mut(d).next_event() {
                        t = t.min(dt);
                    }
                }
            }
            if t >= limit {
                break;
            }
            self.step_at(t)?;
            self.now = t;
        }
        Ok(())
    }

    /// Runs to the end of the configured duration and produces the report.
    ///
    /// # Errors
    ///
    /// Propagates controller, device, and tree failures.
    pub fn finish(mut self) -> Result<ClusterReport, ClusterError> {
        self.run_to(self.t_end)?;

        // Close the run at exactly t_end: drain-by-advance, final
        // sample, and the closing ledger audit.
        self.drain_completions(self.t_end);
        self.sample_nodes(self.t_end);
        self.node_samples += 1;
        self.audit_ledger(self.t_end);

        let nodes: Vec<NodeReport> = self
            .tree
            .node_ids()
            .map(|id| NodeReport {
                path: self.tree.path(id),
                kind: self.tree.kind(id),
                cap_w: self.tree.cap_w(id),
                max_power_w: self.node_max[id.0],
                mean_power_w: self.node_sum[id.0] / self.node_samples as f64,
                granted_w: self.last_grants[id.0],
            })
            .collect();
        let tenant_reports: Vec<TenantReport> = self
            .tenants
            .iter()
            .zip(&self.accounts)
            .map(|(t, a)| TenantReport {
                name: t.name.clone(),
                submitted: a.submitted,
                served: a.window.len() as u64,
                bytes: a.window.bytes(),
                dropped: a.dropped,
                mean_latency_us: a.window.mean_latency().map_or(0.0, Micros::get),
                p99_latency_us: a.window.p99_latency().map_or(0.0, Micros::get),
                slo_ok: a.window.satisfies(&a.slo, self.duration),
            })
            .collect();
        let total_bytes: u64 = tenant_reports.iter().map(|t| t.bytes).sum();
        let served_ios: u64 = tenant_reports.iter().map(|t| t.served).sum();
        let dropped: u64 = tenant_reports.iter().map(|t| t.dropped).sum();
        let (migrations_started, migrations_completed) = self
            .place
            .as_ref()
            .map_or((0, 0), PlacementTier::migrations);

        Ok(ClusterReport {
            policy: self.policy,
            nodes,
            tenants: tenant_reports,
            duration: self.duration,
            total_bytes,
            served_ios,
            rebalance_rounds: self.rebalance_rounds,
            replans: self.replans,
            infeasible_rounds: self.infeasible_rounds,
            dropped,
            migrations_started,
            migrations_completed,
            migration_bytes: self.mig_bytes,
            total_joules: self.ledger.total_joules(),
            system_joules: self.ledger.system_fj() as f64 * 1e-15,
            idle_joules: self.ledger.idle_fj() as f64 * 1e-15,
        })
    }

    /// One loop-body iteration at event time `t`: advance devices, admit
    /// arrivals, process tree-fault transitions, run the control round and
    /// power sampling when due.
    fn step_at(&mut self, t: SimTime) -> Result<(), ClusterError> {
        self.drain_completions(t);
        self.dispatch_migrations(t)?;
        self.admit_arrivals(t)?;

        // A breaker trip or restore forces an immediate control round so
        // the surviving subtree is re-planned on the spot instead of
        // waiting out the control interval.
        let forced = self.process_tree_faults(t);
        if t >= self.next_control || forced {
            // The placement tier ticks first so this round's controller
            // re-plans see fresh standby pins and freshly started moves.
            self.place_round(t)?;
            if self.policy == SelectionPolicy::ModelDriven {
                self.control_round(t)?;
                self.rebalance_rounds += 1;
            }
            // The ledger audits on the control cadence under both
            // policies: attribution and conservation are properties of
            // the cluster, not of the model-driven controller.
            self.audit_ledger(t);
            self.next_control = t + self.control_interval;
        }

        if t >= self.next_sample {
            self.sample_nodes(t);
            self.node_samples += 1;
            self.next_sample = t + self.sample_interval;
        }
        Ok(())
    }

    /// Advances the whole cluster in lockstep to `t`, crediting
    /// completions to their tenants' SLO windows.
    // powadapt-lint: hot
    fn drain_completions(&mut self, t: SimTime) {
        let mut done = std::mem::take(&mut self.drain_scratch);
        for ctl in &mut self.controllers {
            for d in 0..ctl.devices().len() {
                done.clear();
                ctl.device_mut(d).advance_to_into(t, &mut done);
                for c in &done {
                    match self.owners.remove(&c.id.0) {
                        Some(IoOwner::Tenant(tenant)) => {
                            let latency_us =
                                c.completed.duration_since(c.submitted).as_secs_f64() * 1e6;
                            self.accounts[tenant]
                                .window
                                .observe(Micros::new(latency_us), c.len);
                        }
                        // Migration legs are handed to the dispatcher via
                        // the fixed-capacity scratch: the engine caps
                        // in-flight moves at the scratch's size, so the
                        // indexed store never overruns.
                        Some(IoOwner::MigrationRead(m)) => {
                            self.mig_scratch[self.mig_scratch_len] = (m, false);
                            self.mig_scratch_len += 1;
                            self.mig_bytes += c.len;
                        }
                        Some(IoOwner::MigrationWrite(m)) => {
                            self.mig_scratch[self.mig_scratch_len] = (m, true);
                            self.mig_scratch_len += 1;
                            self.mig_bytes += c.len;
                        }
                        None => {}
                    }
                }
            }
        }
        done.clear();
        self.drain_scratch = done;
    }

    /// Processes migration completions the drain handed over: a finished
    /// source read yields the destination write (queued on the backlog),
    /// a finished destination write commits the move in the catalog. Then
    /// flushes the backlog against the devices.
    fn dispatch_migrations(&mut self, t: SimTime) -> Result<(), ClusterError> {
        if self.mig_scratch_len == 0 && self.mig_backlog.is_empty() {
            return Ok(());
        }
        let rec = powadapt_obs::current();
        for k in 0..self.mig_scratch_len {
            let (mid, was_write) = self.mig_scratch[k];
            let Some(tier) = self.place.as_mut() else {
                break;
            };
            if was_write {
                if let Some(m) = tier.migration_write_done(mid) {
                    emit!(
                        rec,
                        t,
                        "placement",
                        EventKind::MigrationCompleted {
                            extent: m.extent,
                            from: m.from,
                            to: m.to,
                        }
                    );
                }
            } else if let Some(wr) = tier.migration_read_done(mid) {
                self.mig_backlog.push_back(wr);
            }
        }
        self.mig_scratch_len = 0;
        self.flush_migration_backlog(t)
    }

    /// Submits every backlogged migration IO its device will take right
    /// now. Dark feeds and transient refusals re-queue the IO for a later
    /// step; migration destinations in standby wake on submit (the
    /// device-level auto-wake), which is the intended drain path.
    fn flush_migration_backlog(&mut self, t: SimTime) -> Result<(), ClusterError> {
        let mut remaining = self.mig_backlog.len();
        while remaining > 0 {
            remaining -= 1;
            let Some(io) = self.mig_backlog.pop_front() else {
                break;
            };
            let gi = io.dev as usize;
            let (e, _) = self.flat[gi];
            if self.faults.is_down(&self.tree, self.leaves[e]) {
                self.mig_backlog.push_back(io);
                continue;
            }
            let id = self.next_id;
            self.next_id += 1;
            let arrival = Arrival {
                at: t,
                kind: if io.write {
                    IoKind::Write
                } else {
                    IoKind::Read
                },
                offset: io.offset,
                len: io.len,
            };
            if self.try_submit(gi, id, &arrival)? {
                let owner = if io.write {
                    IoOwner::MigrationWrite(io.migration)
                } else {
                    IoOwner::MigrationRead(io.migration)
                };
                self.owners.insert(id, owner);
            } else {
                self.mig_backlog.push_back(io);
            }
        }
        Ok(())
    }

    /// One placement-tier round, run on the control cadence before the
    /// controller re-plans: ticks the tier (consolidation planning, rate-
    /// limited move starts, standby-pin refresh), queues the started
    /// source reads, and syncs the pin set into the enclosure
    /// controllers. A changed pin invalidates the enclosure's applied
    /// budget so the next control round re-plans it even under an
    /// unchanged grant.
    fn place_round(&mut self, now: SimTime) -> Result<(), ClusterError> {
        if self.place.is_none() {
            return Ok(());
        }
        let rec = powadapt_obs::current();
        // Devices whose feed is up and which are not quarantined may
        // carry migration IO this round. Routability is deliberately not
        // required: a consolidation destination parked in standby must
        // still accept its drain writes (waking to do so).
        let allowed: Vec<bool> = self
            .flat
            .iter()
            .map(|&(e, d)| {
                !self.faults.is_down(&self.tree, self.leaves[e])
                    && !self.controllers[e].is_quarantined(d)
            })
            .collect();
        let starts = {
            let Some(tier) = self.place.as_mut() else {
                return Ok(());
            };
            tier.tick(now, &allowed)
        };
        if let Some(tier) = self.place.as_ref() {
            for io in &starts {
                if let Some(m) = tier.migration(io.migration) {
                    emit!(
                        rec,
                        now,
                        "placement",
                        EventKind::MigrationStarted {
                            extent: m.extent,
                            from: m.from,
                            to: m.to,
                        }
                    );
                }
            }
            for (gi, &p) in tier.pinned().iter().enumerate() {
                let (e, d) = self.flat[gi];
                let before = self.controllers[e].is_pinned_standby(d);
                self.controllers[e].set_pinned_standby(d, p);
                if before != self.controllers[e].is_pinned_standby(d) {
                    self.last_applied[e] = None;
                }
            }
        }
        self.mig_backlog.extend(starts);
        self.flush_migration_backlog(now)
    }

    /// Admits arrivals due at or before `t`, merged across tenants in
    /// (time, tenant index) order.
    fn admit_arrivals(&mut self, t: SimTime) -> Result<(), ClusterError> {
        loop {
            let due = self
                .pending
                .iter()
                .enumerate()
                .filter_map(|(i, a)| a.map(|a| (self.start.max(a.at), i)))
                .min();
            let Some((at, tenant)) = due else { break };
            if at > t {
                break;
            }
            let Some(arrival) = self.pending[tenant].take() else {
                break;
            };
            self.pending[tenant] = self.streams[tenant].next();
            self.submit_arrival(&arrival, tenant, t)?;
        }
        Ok(())
    }

    /// Routes and submits one arrival: through the placement tier's
    /// extent catalog when configured (writes to the extent's primary,
    /// reads to any awake holder), otherwise to the least-loaded routable
    /// device. Either way, spun-down and quarantined devices are routed
    /// *around* — visibly, via [`EventKind::RoutedAround`] — instead of
    /// paying a hidden spin-up on the request path.
    fn submit_arrival(
        &mut self,
        arrival: &Arrival,
        tenant: usize,
        now: SimTime,
    ) -> Result<(), ClusterError> {
        let rec = powadapt_obs::current();
        let id = self.next_id;
        self.next_id += 1;

        // Placement-aware routing: resolve the arrival to its extent's
        // holder list. Reads of never-written extents fall through to the
        // legacy router below.
        let mut holders = std::mem::take(&mut self.holders_scratch);
        holders.clear();
        let mut placement_routed = false;
        if let Some(tier) = self.place.as_mut() {
            match arrival.kind {
                IoKind::Write => {
                    let placed = tier.route_write(tenant as u32, arrival.offset, arrival.len, now);
                    if placed.newly_placed {
                        emit!(
                            rec,
                            now,
                            "placement",
                            EventKind::PlacementDecision {
                                extent: placed.extent,
                                primary: placed.primary,
                                replicas: placed.replicas,
                            }
                        );
                    }
                    holders.push(placed.primary);
                    placement_routed = true;
                }
                IoKind::Read => {
                    placement_routed = tier.read_holders(
                        tenant as u32,
                        arrival.offset,
                        arrival.len,
                        now,
                        &mut holders,
                    );
                }
            }
        }
        if placement_routed {
            let mut skipped = 0u32;
            let mut submitted = false;
            // First pass: holders that are routable and fully awake, in
            // preference order (primary first).
            for &h in &holders {
                let gi = h as usize;
                let (e, d) = self.flat[gi];
                let awake =
                    self.controllers[e].devices()[d].standby_state() == StandbyState::Active;
                if !self.routable[gi] || !awake || self.controllers[e].is_quarantined(d) {
                    skipped += 1;
                    continue;
                }
                if self.try_submit(gi, id, arrival)? {
                    submitted = true;
                    break;
                }
            }
            if !submitted {
                // Every holder is asleep, parked, or refused: the data
                // lives nowhere else, so wake a holder (primary first) —
                // the legitimate spin-up a cold read pays.
                for &h in &holders {
                    let gi = h as usize;
                    let (e, d) = self.flat[gi];
                    if self.faults.is_down(&self.tree, self.leaves[e])
                        || self.controllers[e].is_quarantined(d)
                    {
                        continue;
                    }
                    if self.try_submit(gi, id, arrival)? {
                        submitted = true;
                        break;
                    }
                }
            }
            holders.clear();
            self.holders_scratch = holders;
            if skipped > 0 {
                emit!(
                    rec,
                    now,
                    "placement",
                    EventKind::RoutedAround { id, skipped }
                );
            }
            if submitted {
                self.owners.insert(id, IoOwner::Tenant(tenant));
                self.accounts[tenant].submitted += 1;
            } else {
                self.accounts[tenant].dropped += 1;
                emit!(rec, now, "cluster", EventKind::ArrivalDropped { id });
            }
            return Ok(());
        }
        holders.clear();
        self.holders_scratch = holders;

        // Least-loaded routable device; ties break to the lowest index. A
        // transient refusal moves on to the next candidate; exhausting all
        // of them drops the arrival (open loop does not retry later).
        let mut candidates: Vec<usize> =
            (0..self.flat.len()).filter(|&i| self.routable[i]).collect();
        candidates.sort_by_key(|&i| {
            let (e, d) = self.flat[i];
            (self.controllers[e].devices()[d].inflight(), i)
        });
        let mut skipped = 0u32;
        for &gi in &candidates {
            let (e, d) = self.flat[gi];
            let awake = self.controllers[e].devices()[d].standby_state() == StandbyState::Active;
            if !awake || self.controllers[e].is_quarantined(d) {
                skipped += 1;
                continue;
            }
            if self.try_submit(gi, id, arrival)? {
                if skipped > 0 {
                    emit!(rec, now, "cluster", EventKind::RoutedAround { id, skipped });
                }
                self.owners.insert(id, IoOwner::Tenant(tenant));
                self.accounts[tenant].submitted += 1;
                return Ok(());
            }
        }
        if skipped > 0 {
            emit!(rec, now, "cluster", EventKind::RoutedAround { id, skipped });
        }
        self.accounts[tenant].dropped += 1;
        emit!(rec, now, "cluster", EventKind::ArrivalDropped { id });
        Ok(())
    }

    /// Submits `arrival` as request `id` against flat device `gi`,
    /// clamping the transfer to the device's capacity. Returns whether
    /// the device accepted it; transient refusals report `false`, hard
    /// failures propagate.
    fn try_submit(&mut self, gi: usize, id: u64, arrival: &Arrival) -> Result<bool, ClusterError> {
        let (e, d) = self.flat[gi];
        let dev = self.controllers[e].device_mut(d);
        let cap = dev.spec().capacity();
        let len = arrival.len.min(cap);
        let offset = arrival.offset.min(cap - len);
        match dev.submit(IoRequest::new(IoId(id), arrival.kind, offset, len)) {
            Ok(()) => Ok(true),
            Err(e) if e.is_transient() => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Fires every due tree-fault transition: a trip takes the subtree's
    /// enclosures dark (unroutable, devices asked into standby), a restore
    /// brings them back. Returns whether anything fired, which forces an
    /// immediate control round.
    fn process_tree_faults(&mut self, t: SimTime) -> bool {
        if self.faults.is_empty() {
            return false;
        }
        let events = self.faults.due(t);
        if events.is_empty() {
            return false;
        }
        let rec = powadapt_obs::current();
        for ev in events {
            match ev {
                TreeFaultEvent::Trip(node) => {
                    emit!(
                        rec,
                        t,
                        "tree",
                        EventKind::BreakerTrip {
                            node: self.tree.path(node)
                        }
                    );
                    for e in self.enclosures_under(node) {
                        for (gi, &(fe, _)) in self.flat.iter().enumerate() {
                            if fe == e {
                                self.routable[gi] = false;
                            }
                        }
                        // Fail closed: the feed is gone, so the subtree
                        // sheds its load. Standby is best effort — a
                        // refusal mid-transition still leaves the
                        // enclosure unroutable and demand-less.
                        for d in 0..self.controllers[e].devices().len() {
                            let _ = self.controllers[e].device_mut(d).request_standby();
                        }
                        self.last_applied[e] = None;
                    }
                }
                TreeFaultEvent::Restore(node) => {
                    emit!(
                        rec,
                        t,
                        "tree",
                        EventKind::BreakerRestore {
                            node: self.tree.path(node)
                        }
                    );
                    for e in self.enclosures_under(node) {
                        // Another window may still hold this leaf down.
                        if self.faults.is_down(&self.tree, self.leaves[e]) {
                            continue;
                        }
                        for d in 0..self.controllers[e].devices().len() {
                            let _ = self.controllers[e].device_mut(d).request_wake();
                        }
                        self.last_applied[e] = None;
                        if self.policy == SelectionPolicy::UniformStatic {
                            self.reapply_uniform_share(e);
                        }
                    }
                }
            }
        }
        true
    }

    /// Enclosure indices whose leaf sits at or under `node`.
    fn enclosures_under(&self, node: NodeId) -> Vec<usize> {
        self.leaves
            .iter()
            .enumerate()
            .filter(|&(_, &leaf)| leaf == node || self.tree.ancestors(leaf).contains(&node))
            .map(|(e, _)| e)
            .collect()
    }

    /// Re-applies the uniform static share to enclosure `e` after its feed
    /// returns (the static policy has no control rounds to recover with).
    fn reapply_uniform_share(&mut self, e: usize) {
        let share_w = self.tree.cap_w(self.tree.root_id()) / self.flat.len() as f64;
        let choices = uniform_choices(&self.enc_models[e], share_w);
        for (d, choice) in choices.iter().enumerate() {
            let Some(gi) = self.flat.iter().position(|&(fe, fd)| fe == e && fd == d) else {
                continue;
            };
            match choice {
                Some(point) => {
                    // Best effort: the device may still be mid-wake; it
                    // serves at whatever state it exits standby into.
                    let _ = self.controllers[e]
                        .device_mut(d)
                        .set_power_state(point.power_state());
                    self.routable[gi] = true;
                }
                None => self.routable[gi] = false,
            }
        }
    }

    /// One demand → rebalance → re-plan round of the model-driven policy.
    fn control_round(&mut self, now: SimTime) -> Result<(), ClusterError> {
        let rec = powadapt_obs::current();
        let down: Vec<bool> = self
            .leaves
            .iter()
            .map(|&leaf| self.faults.is_down(&self.tree, leaf))
            .collect();

        // Demands: the floor is structural; the want tracks backlog — a
        // busy enclosure asks for its ceiling, an idle one releases
        // everything above its floor back to the tree. A dark enclosure
        // (tripped feed) demands nothing at all: its budget flows to the
        // survivors.
        let demands: Vec<Demand> = self
            .controllers
            .iter()
            .zip(&self.enc_models)
            .zip(&down)
            .map(|((ctl, models), &is_down)| {
                if is_down {
                    return Demand {
                        floor_w: 0.0,
                        want_w: 0.0,
                    };
                }
                let busy = ctl.devices().iter().any(|d| d.inflight() > 0);
                let floor_w = fleet_floor_w(models);
                Demand {
                    floor_w,
                    want_w: if busy { fleet_max_w(models) } else { floor_w },
                }
            })
            .collect();

        let grants = self.tree.rebalance(&demands, self.planning_margin)?;
        for id in self.tree.node_ids() {
            let g = grants[id.0];
            self.last_grants[id.0] = g.granted_w;
            emit!(
                rec,
                now,
                "tree",
                EventKind::RebalanceDecision(Box::new(powadapt_obs::RebalanceDecision {
                    node: self.tree.path(id),
                    cap_w: g.cap_w,
                    granted_w: g.granted_w,
                    demand_w: g.demand_w,
                }))
            );
        }

        for (e, leaf) in self.leaves.iter().enumerate() {
            // A dark enclosure keeps its zero grant; nothing to apply.
            if down[e] {
                continue;
            }
            let granted_w = grants[leaf.0].granted_w;
            let unchanged =
                self.last_applied[e].is_some_and(|prev| (prev - granted_w).abs() <= 0.05);
            if unchanged {
                continue;
            }
            match self.controllers[e].apply_budget(granted_w) {
                Ok(plan) => {
                    set_routable_from_plan(
                        &mut self.routable,
                        &self.flat,
                        e,
                        &plan.actions,
                        &self.controllers[e],
                    );
                    self.last_applied[e] = Some(granted_w);
                    self.replans += 1;
                }
                // A grant below the enclosure floor keeps the previous
                // configuration: the tree guarantees floors when feasible,
                // so this only happens under pathological margins.
                Err(ControlError::Infeasible { .. }) => self.infeasible_rounds += 1,
                Err(err) => return Err(err.into()),
            }
        }
        Ok(())
    }

    /// Samples every node's subtree power and records max/mean, emitting
    /// Perfetto counter tracks for rack-level nodes. The energy ledger
    /// accrues over the closing interval with the powers it was holding,
    /// then takes over the fresh measurements.
    fn sample_nodes(&mut self, now: SimTime) {
        let rec = powadapt_obs::current();
        self.ledger.accrue(now);
        let mut power = vec![0.0f64; self.tree.len()];
        let mut leaf_watts = Vec::with_capacity(self.leaves.len());
        for (leaf, ctl) in self.leaves.iter().zip(&self.controllers) {
            let p = ctl.measured_power_w();
            leaf_watts.push(p);
            power[leaf.0] += p;
            for anc in self.tree.ancestors(*leaf) {
                power[anc.0] += p;
            }
        }
        self.ledger.set_powers(&leaf_watts);
        for id in self.tree.node_ids() {
            let p = power[id.0];
            self.node_max[id.0] = self.node_max[id.0].max(p);
            self.node_sum[id.0] += p;
            if self.tree.kind(id) == NodeKind::Rack {
                emit!(
                    rec,
                    now,
                    self.node_tracks[id.0],
                    EventKind::PowerSample { watts: p }
                );
            }
        }
    }

    /// One ledger audit round: attribute the interval's energy to the
    /// tenants by bytes moved and verify conservation against the tree.
    fn audit_ledger(&mut self, now: SimTime) {
        let usage: Vec<TenantUsage<'_>> = self
            .tenants
            .iter()
            .zip(&self.accounts)
            .map(|(t, a)| TenantUsage {
                name: &t.name,
                bytes: a.window.bytes(),
                p99_latency_us: a.window.p99_latency().map(Micros::get),
                slo_p99_us: a.slo.max_p99_latency(),
            })
            .collect();
        // Grant enforcement only applies to grants the tree actually
        // made: the static baseline's shares ignore the tree by design.
        let enforce = self.policy == SelectionPolicy::ModelDriven;
        self.ledger.audit(
            now,
            &self.tree,
            &self.leaves,
            &self.last_grants,
            enforce,
            &usage,
            self.mig_bytes,
        );
    }

    /// The energy-attribution ledger's current accounts.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// The placement tier, when the spec configured one.
    pub fn placement(&self) -> Option<&PlacementTier> {
        self.place.as_ref()
    }
}

impl powadapt_snap::Snapshot for ClusterSim {
    /// Serializes the cluster's complete dynamic state: the event-loop
    /// cursors, routing and accounting vectors, in-flight ownership,
    /// tenant streams and SLO windows, every controller (devices, health,
    /// quarantine), and the tree-fault phases. Configuration — topology,
    /// models, tenants, intervals — is rebuilt from the spec on resume.
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        write_time(w, self.now);
        w.u64(self.next_id);
        write_time(w, self.next_control);
        write_time(w, self.next_sample);
        w.u64(self.rebalance_rounds);
        w.u64(self.replans);
        w.u64(self.infeasible_rounds);
        w.u64(self.node_samples);

        w.seq_len(self.routable.len());
        for &v in &self.routable {
            w.bool(v);
        }
        write_f64s(w, &self.node_max);
        write_f64s(w, &self.node_sum);
        write_f64s(w, &self.last_grants);
        w.seq_len(self.last_applied.len());
        for &v in &self.last_applied {
            w.opt_f64(v);
        }

        w.seq_len(self.owners.len());
        for (&id, &owner) in &self.owners {
            w.u64(id);
            match owner {
                IoOwner::Tenant(tenant) => {
                    w.u8(0);
                    w.usize(tenant);
                }
                IoOwner::MigrationRead(m) => {
                    w.u8(1);
                    w.u64(m);
                }
                IoOwner::MigrationWrite(m) => {
                    w.u8(2);
                    w.u64(m);
                }
            }
        }

        w.seq_len(self.streams.len());
        for s in &self.streams {
            powadapt_snap::Snapshot::write_state(s, w)?;
        }
        w.seq_len(self.pending.len());
        for p in &self.pending {
            match p {
                Some(a) => {
                    w.bool(true);
                    write_arrival(w, a);
                }
                None => w.bool(false),
            }
        }
        w.seq_len(self.accounts.len());
        for a in &self.accounts {
            powadapt_snap::Snapshot::write_state(&a.window, w)?;
            w.u64(a.submitted);
            w.u64(a.dropped);
        }

        w.seq_len(self.controllers.len());
        for ctl in &self.controllers {
            ctl.write_state(w)?;
        }
        powadapt_snap::Snapshot::write_state(&self.faults, w)?;
        powadapt_snap::Snapshot::write_state(&self.ledger, w)?;

        // Placement tier: presence must match the spec on restore; the
        // backlog and system byte count ride alongside.
        w.u64(self.mig_bytes);
        w.seq_len(self.mig_backlog.len());
        for io in &self.mig_backlog {
            w.u64(io.migration);
            w.u32(io.dev);
            w.bool(io.write);
            w.u64(io.offset);
            w.u64(io.len);
        }
        match &self.place {
            Some(tier) => {
                w.bool(true);
                powadapt_snap::Snapshot::write_state(tier, w)
            }
            None => {
                w.bool(false);
                Ok(())
            }
        }
    }
}

impl powadapt_snap::Restore for ClusterSim {
    #[allow(clippy::too_many_lines)]
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.now = read_time(r)?;
        if self.now < self.start || self.now > self.t_end {
            return Err(SnapError::InvalidValue(format!(
                "checkpoint time {:?} outside the run [{:?}, {:?}]",
                self.now, self.start, self.t_end
            )));
        }
        self.next_id = r.u64()?;
        self.next_control = read_time(r)?;
        self.next_sample = read_time(r)?;
        self.rebalance_rounds = r.u64()?;
        self.replans = r.u64()?;
        self.infeasible_rounds = r.u64()?;
        self.node_samples = r.u64()?;

        let n = r.seq_len()?;
        if n != self.routable.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} routable flags, cluster has {}",
                self.routable.len()
            )));
        }
        for v in &mut self.routable {
            *v = r.bool()?;
        }
        read_f64s_into(r, &mut self.node_max, "node max")?;
        read_f64s_into(r, &mut self.node_sum, "node sum")?;
        read_f64s_into(r, &mut self.last_grants, "grant")?;
        let n = r.seq_len()?;
        if n != self.last_applied.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} applied budgets, cluster has {}",
                self.last_applied.len()
            )));
        }
        for v in &mut self.last_applied {
            *v = r.opt_f64()?;
        }

        let n = r.seq_len()?;
        let mut owners = BTreeMap::new();
        for _ in 0..n {
            let id = r.u64()?;
            let owner = match r.u8()? {
                0 => {
                    let tenant = r.usize()?;
                    if tenant >= self.tenants.len() {
                        return Err(SnapError::InvalidValue(format!(
                            "in-flight IO {id} owned by tenant {tenant}, cluster has {}",
                            self.tenants.len()
                        )));
                    }
                    IoOwner::Tenant(tenant)
                }
                1 => IoOwner::MigrationRead(r.u64()?),
                2 => IoOwner::MigrationWrite(r.u64()?),
                other => {
                    return Err(SnapError::InvalidValue(format!(
                        "in-flight IO {id} owner discriminant {other} out of range"
                    )))
                }
            };
            if id >= self.next_id {
                return Err(SnapError::InvalidValue(format!(
                    "in-flight IO {id} at or past the next request id {}",
                    self.next_id
                )));
            }
            if owners.insert(id, owner).is_some() {
                return Err(SnapError::InvalidValue(format!(
                    "duplicate in-flight IO id {id}"
                )));
            }
        }
        self.owners = owners;

        let n = r.seq_len()?;
        if n != self.streams.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} tenant streams, cluster has {}",
                self.streams.len()
            )));
        }
        for s in &mut self.streams {
            powadapt_snap::Restore::read_state(s, r)?;
        }
        let n = r.seq_len()?;
        if n != self.pending.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} pending arrivals, cluster has {}",
                self.pending.len()
            )));
        }
        for p in &mut self.pending {
            *p = if r.bool()? {
                Some(read_arrival(r)?)
            } else {
                None
            };
        }
        let n = r.seq_len()?;
        if n != self.accounts.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} tenant accounts, cluster has {}",
                self.accounts.len()
            )));
        }
        for a in &mut self.accounts {
            powadapt_snap::Restore::read_state(&mut a.window, r)?;
            a.submitted = r.u64()?;
            a.dropped = r.u64()?;
        }

        let n = r.seq_len()?;
        if n != self.controllers.len() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot has {n} controllers, cluster has {}",
                self.controllers.len()
            )));
        }
        for ctl in &mut self.controllers {
            ctl.read_state(r)?;
        }
        powadapt_snap::Restore::read_state(&mut self.faults, r)?;
        powadapt_snap::Restore::read_state(&mut self.ledger, r)?;

        self.mig_bytes = r.u64()?;
        let n = r.seq_len()?;
        self.mig_backlog.clear();
        for _ in 0..n {
            let migration = r.u64()?;
            let dev = r.u32()?;
            if dev as usize >= self.flat.len() {
                return Err(SnapError::InvalidValue(format!(
                    "backlogged migration IO targets device {dev}, cluster has {}",
                    self.flat.len()
                )));
            }
            let write = r.bool()?;
            let offset = r.u64()?;
            let len = r.u64()?;
            self.mig_backlog.push_back(MigrationIo {
                migration,
                dev,
                write,
                offset,
                len,
            });
        }
        let has_tier = r.bool()?;
        if has_tier != self.place.is_some() {
            return Err(SnapError::InvalidValue(format!(
                "snapshot {} a placement tier, the spec {}",
                if has_tier { "carries" } else { "lacks" },
                if self.place.is_some() {
                    "configures one"
                } else {
                    "does not"
                }
            )));
        }
        if let Some(tier) = self.place.as_mut() {
            powadapt_snap::Restore::read_state(tier, r)?;
        }

        // In-flight migration owners must map to unfinished moves in the
        // matching phase; the backlog must not double-issue a leg that is
        // already in flight.
        for (&id, &owner) in &self.owners {
            let mid = match owner {
                IoOwner::Tenant(_) => continue,
                IoOwner::MigrationRead(m) | IoOwner::MigrationWrite(m) => m,
            };
            let want = if matches!(owner, IoOwner::MigrationRead(_)) {
                MigrationPhase::Reading
            } else {
                MigrationPhase::Writing
            };
            let ok = self
                .place
                .as_ref()
                .and_then(|tier| tier.migration(mid))
                .is_some_and(|m| m.phase == want);
            if !ok {
                return Err(SnapError::InvalidValue(format!(
                    "in-flight IO {id} belongs to migration {mid}, which is missing or out of phase"
                )));
            }
        }
        for io in &self.mig_backlog {
            let want = if io.write {
                MigrationPhase::Writing
            } else {
                MigrationPhase::Reading
            };
            let ok = self
                .place
                .as_ref()
                .and_then(|tier| tier.migration(io.migration))
                .is_some_and(|m| m.phase == want);
            if !ok {
                return Err(SnapError::InvalidValue(format!(
                    "backlogged migration IO for move {}, which is missing or out of phase",
                    io.migration
                )));
            }
        }
        Ok(())
    }
}

/// Runs a cluster to completion.
///
/// Equivalent to driving a [`ClusterSim`] from [`ClusterSim::new`]
/// straight through [`ClusterSim::finish`] — checkpoint/resume flows hold
/// the object instead.
///
/// # Errors
///
/// [`ClusterError::InvalidSpec`] for shape problems (enclosure/leaf
/// mismatch, empty tenants, zero intervals), [`ClusterError::Tree`] for
/// tree misconfiguration, [`ClusterError::Control`]/
/// [`ClusterError::Device`] when a controller or device fails
/// non-transiently.
pub fn run_cluster(spec: ClusterSpec) -> Result<ClusterReport, ClusterError> {
    ClusterSim::new(spec)?.finish()
}

/// Marks devices routable per the enclosure's applied plan: `Operate`
/// actions route, `Standby` (and quarantined devices absent from the
/// plan) do not. Actions match devices by label, first unclaimed wins.
fn set_routable_from_plan(
    routable: &mut [bool],
    flat: &[(usize, usize)],
    e: usize,
    actions: &[(String, DeviceAction)],
    ctl: &AdaptiveController,
) {
    for (gi, &(fe, _)) in flat.iter().enumerate() {
        if fe == e {
            routable[gi] = false;
        }
    }
    let mut assigned = vec![false; ctl.devices().len()];
    for (label, action) in actions {
        let slot = ctl
            .devices()
            .iter()
            .enumerate()
            .position(|(d, dev)| !assigned[d] && dev.spec().label() == label);
        if let Some(d) = slot {
            assigned[d] = true;
            if let Some(gi) = flat.iter().position(|&(fe, fd)| fe == e && fd == d) {
                routable[gi] = matches!(action, DeviceAction::Operate(_));
            }
        }
    }
}
