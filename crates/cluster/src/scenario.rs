//! The canonical oversubscribed-cluster scenario, shared by the
//! `cluster_eval` bench, the golden fixture, the repository example, and
//! the behavioral tests — plus the placement-evaluation scenario
//! ([`placement_cluster`]) that pits energy-aware placement and
//! spin-down consolidation against the static-spread and no-migration
//! baselines.
//!
//! Topology: `cluster (34 W) → row0 (34 W, 1.2× oversubscribed) →
//! {rack0 (13 W) → enc0, rack1 (24 W) → enc1}`. The row advertises
//! 40.8 W to racks whose caps sum to 37 W — the oversubscription bet.
//! `enc0` holds SSD1 + SSD3 (cheap, slow), `enc1` holds SSD2 + PM1743
//! (hungry, fast): the heterogeneity that makes a uniform per-device
//! share strand the fast drives.
//!
//! The arithmetic of the headline comparison, all in planned watts:
//!
//! - Enclosure floors (every device at its cheapest configuration) are
//!   `5.4 + 3.5 = 8.9` and `10 + 9 = 19`, so the cluster can operate all
//!   four devices at its 29.75 W planning budget (34 W cap × 0.875
//!   margin). The slack between plan and physical cap absorbs what rides
//!   above the plan: burst pacing (a capped device may briefly exceed its
//!   state cap by its burst factor) and measurement noise.
//! - The naive baseline splits the 34 W cap uniformly: 8.5 W per device.
//!   SSD2 (min 10 W) and PM1743 (min 9 W) cannot fit and sit idle.
//!
//! Three tenants — diurnal, steady, and bursty — offer far more load than
//! the stranded baseline can serve, so the served-bytes ratio between the
//! two policies is the measured value of model-driven oversubscription.

use powadapt_core::Slo;
use powadapt_device::{catalog, PowerStateId, StorageDevice, GIB, KIB, MIB};
use powadapt_io::Workload;
use powadapt_model::{ConfigPoint, PowerThroughputModel};
use powadapt_place::{PlacementConfig, PlacementMode};
use powadapt_sim::{SimDuration, SimRng};

use crate::selector::SelectionPolicy;
use crate::sim::{ClusterSpec, EnclosureSpec};
use crate::tenant::{TenantArrivals, TenantSpec};
use crate::tree::{NodeKind, PowerTree};

/// Measured-style Fig 10 configuration points for one catalog device:
/// `(power state, planned watts, modeled bytes/s)` at 256 KiB QD64. The
/// planned watts are the state's power cap, so a plan that sums planned
/// watts provably bounds the devices' capped draw. Unknown labels get an
/// empty table.
fn fig10_points(label: &str) -> Vec<ConfigPoint> {
    let pt = |ps: u8, power_w: f64, thr_bps: f64| {
        ConfigPoint::new(
            label,
            Workload::RandWrite,
            PowerStateId(ps),
            256 * KIB,
            64,
            power_w,
            thr_bps,
        )
    };
    match label {
        "SSD1" => vec![pt(0, 25.0, 3.6e9), pt(1, 6.5, 1.44e9), pt(2, 5.4, 1.0e9)],
        "SSD2" => vec![pt(0, 25.0, 3.4e9), pt(1, 12.0, 2.3e9), pt(2, 10.0, 1.8e9)],
        "SSD3" => vec![pt(0, 3.5, 0.4e9)],
        "PM1743" => vec![pt(0, 25.0, 7.0e9), pt(1, 14.0, 2.9e9), pt(2, 9.0, 1.7e9)],
        _ => Vec::new(),
    }
}

/// The scenario's measured power-throughput model for a catalog label
/// (`SSD1`, `SSD2`, `SSD3`, or `PM1743`).
///
/// # Panics
///
/// Panics if `label` is not part of the scenario's device set.
pub fn fig10_model(label: &str) -> PowerThroughputModel {
    match PowerThroughputModel::from_points(label, fig10_points(label)) {
        Some(m) => m,
        None => panic!("no fig10 points for {label}"), // powadapt-lint: allow(D5, reason = "scenario fixture: literal point tables for a fixed label set; a bad label is a programming error, not a runtime fault")
    }
}

/// Measured-style configuration point for the scenario's cold tier: the
/// Exos 7E2000 exposes a single power state, so its model is one point —
/// planned watts at the drive's worst-case active draw, throughput at
/// 256 KiB QD64 with the write cache absorbing bursts.
pub fn exos_model() -> PowerThroughputModel {
    let pt = ConfigPoint::new(
        "HDD",
        Workload::RandWrite,
        PowerStateId(0),
        256 * KIB,
        64,
        5.4,
        0.16e9,
    );
    match PowerThroughputModel::from_points("HDD", vec![pt]) {
        Some(m) => m,
        None => panic!("one valid point always builds a model"), // powadapt-lint: allow(D5, reason = "scenario fixture: a literal one-point table always builds; failure is a programming error, not a runtime fault")
    }
}

/// One arm of the placement evaluation: how the tier routes fresh
/// extents and whether the migration engine and consolidation policy
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementArm {
    /// Energy-aware placement with background migration and spin-down
    /// consolidation — the full subsystem.
    TempDriven,
    /// Class-blind capacity spread, no migration: the static baseline
    /// that lands half the hot traffic on the cold tier.
    StaticSpread,
    /// Energy-aware placement with the migration engine disabled: cold
    /// extents stay where they landed and the HDDs never sleep.
    NoMigration,
}

/// Builds the placement-evaluation cluster for `arm`.
///
/// Topology: `cluster (34 W) → row0 (34 W, 1.25× oversubscribed) →
/// {rack-warm (20 W) → SSD1 + SSD3, rack-cold0..2 (7 W each) → one Exos
/// each}`. The rack caps sum to 41 W against the cluster's 34 W feeder.
/// The warm rack is the efficient tier; three single-HDD cold racks
/// give replica anti-affinity real failure domains and consolidation a
/// drain target outside any extent's existing racks.
///
/// Three tenants drive the story on a seconds-scale clock so the Exos
/// spin transitions (1.5 s down, 6 s up) amortize over the 180 s run:
/// `web` swings through two diurnal cycles, `analytics` offers steady
/// Poisson load — both stay hot enough that their extents never cool
/// through the threshold — and `archive` ingests one burst of data at
/// the start and then falls silent for the rest of the run. Its extents
/// cool within a couple of batch windows, drain to the HDDs, and the
/// HDDs spend the back half of the run pinned in standby — the measured
/// value of consolidation over the baselines, which keep all three
/// spindles turning at 3.76 W for nothing.
pub fn placement_cluster(arm: PlacementArm, seed: u64) -> ClusterSpec {
    let mut tree = PowerTree::root("cluster", NodeKind::Cluster, 34.0, 1.0);
    let row = tree.add_child(tree.root_id(), "row0", NodeKind::Row, 34.0, 1.25);
    let warm = tree.add_child(row, "rack-warm", NodeKind::Rack, 20.0, 1.0);
    tree.add_child(warm, "enc-warm", NodeKind::Enclosure, 20.0, 1.0);
    for i in 0..3 {
        let rack = tree.add_child(row, &format!("rack-cold{i}"), NodeKind::Rack, 7.0, 1.0);
        tree.add_child(rack, &format!("enc-cold{i}"), NodeKind::Enclosure, 7.0, 1.0);
    }

    let dev_root = seed ^ 0x9ace;
    let dev_seed = |i: u64| SimRng::stream_seed(dev_root, i);
    let mut enclosures = vec![EnclosureSpec {
        name: "enc-warm".into(),
        devices: vec![
            Box::new(catalog::ssd1_pm9a3(dev_seed(0))) as Box<dyn StorageDevice>,
            Box::new(catalog::ssd3_d3_p4510(dev_seed(1))),
        ],
        models: vec![fig10_model("SSD1"), fig10_model("SSD3")],
    }];
    for i in 0..3u64 {
        enclosures.push(EnclosureSpec {
            name: format!("enc-cold{i}"),
            devices: vec![
                Box::new(catalog::hdd_exos_7e2000(dev_seed(2 + i))) as Box<dyn StorageDevice>
            ],
            models: vec![exos_model()],
        });
    }

    let tenants = vec![
        TenantSpec {
            name: "web".into(),
            arrivals: TenantArrivals::Diurnal {
                base_rate_iops: 400.0,
                swing: 0.85,
                period: SimDuration::from_secs(90),
            },
            block_size: 256 * KIB,
            read_fraction: 0.7,
            region: (0, 4 * GIB),
            slo: Slo::new().min_throughput_bps(30e6),
        },
        TenantSpec {
            name: "analytics".into(),
            arrivals: TenantArrivals::Poisson { rate_iops: 250.0 },
            block_size: 256 * KIB,
            read_fraction: 0.5,
            region: (4 * GIB, 4 * GIB),
            slo: Slo::new().min_throughput_bps(15e6),
        },
        // One ingest burst (the on/off stream starts on; the off draw is
        // far beyond the horizon) and then silence: the data everyone
        // pays to keep on spinning rust unless someone moves it.
        TenantSpec {
            name: "archive".into(),
            arrivals: TenantArrivals::Bursty {
                burst_rate_iops: 2500.0,
                mean_on: SimDuration::from_secs(8),
                mean_off: SimDuration::from_secs(100_000),
            },
            block_size: 256 * KIB,
            read_fraction: 0.0,
            region: (8 * GIB, 4 * GIB),
            slo: Slo::new().min_throughput_bps(2e6),
        },
    ];

    let (mode, migrate, consolidate) = match arm {
        PlacementArm::TempDriven => (PlacementMode::TempDriven, true, true),
        PlacementArm::StaticSpread => (PlacementMode::StaticSpread, false, false),
        PlacementArm::NoMigration => (PlacementMode::TempDriven, false, false),
    };
    let placement = PlacementConfig {
        extent_bytes: 64 * MIB,
        replicas: 2,
        temp_window: SimDuration::from_secs(3),
        cold_threshold: 2.0,
        batch_window: SimDuration::from_secs(20),
        migration_rate_bps: 400_000_000,
        migration_burst_bytes: 512 * MIB,
        max_active_migrations: 8,
        mode,
        migrate,
        consolidate,
    };

    ClusterSpec {
        tree,
        enclosures,
        tenants,
        policy: SelectionPolicy::ModelDriven,
        control_interval: SimDuration::from_secs(1),
        sample_interval: SimDuration::from_millis(250),
        planning_margin: 0.875,
        duration: SimDuration::from_secs(180),
        seed,
        tree_faults: Vec::new(),
        placement: Some(placement),
    }
}

/// Builds the canonical two-rack oversubscribed cluster for `policy`.
///
/// Device noise streams derive from `seed ^ 0xc1a5` stream seeds and
/// tenant arrival streams from `seed` itself, so the same seed compares
/// the two policies over identical workloads and device noise.
pub fn oversubscribed_cluster(policy: SelectionPolicy, seed: u64) -> ClusterSpec {
    let mut tree = PowerTree::root("cluster", NodeKind::Cluster, 34.0, 1.0);
    let row = tree.add_child(tree.root_id(), "row0", NodeKind::Row, 34.0, 1.2);
    let rack0 = tree.add_child(row, "rack0", NodeKind::Rack, 13.0, 1.0);
    let rack1 = tree.add_child(row, "rack1", NodeKind::Rack, 24.0, 1.0);
    tree.add_child(rack0, "enc0", NodeKind::Enclosure, 13.0, 1.0);
    tree.add_child(rack1, "enc1", NodeKind::Enclosure, 24.0, 1.0);

    let dev_root = seed ^ 0xc1a5;
    let dev_seed = |i: u64| SimRng::stream_seed(dev_root, i);
    let enclosures = vec![
        EnclosureSpec {
            name: "enc0".into(),
            devices: vec![
                Box::new(catalog::ssd1_pm9a3(dev_seed(0))) as Box<dyn StorageDevice>,
                Box::new(catalog::ssd3_d3_p4510(dev_seed(1))),
            ],
            models: vec![fig10_model("SSD1"), fig10_model("SSD3")],
        },
        EnclosureSpec {
            name: "enc1".into(),
            devices: vec![
                Box::new(catalog::ssd2_d7_p5510(dev_seed(2))) as Box<dyn StorageDevice>,
                Box::new(catalog::pm1743(dev_seed(3))),
            ],
            models: vec![fig10_model("SSD2"), fig10_model("PM1743")],
        },
    ];

    let tenants = vec![
        TenantSpec {
            name: "web".into(),
            arrivals: TenantArrivals::Diurnal {
                base_rate_iops: 15_000.0,
                swing: 0.6,
                period: SimDuration::from_millis(40),
            },
            block_size: 256 * KIB,
            read_fraction: 0.7,
            region: (0, 64 * GIB),
            slo: Slo::new().min_throughput_bps(0.9e9),
        },
        TenantSpec {
            name: "analytics".into(),
            arrivals: TenantArrivals::Poisson {
                rate_iops: 12_000.0,
            },
            block_size: 256 * KIB,
            read_fraction: 0.3,
            region: (64 * GIB, 64 * GIB),
            slo: Slo::new().min_throughput_bps(0.7e9),
        },
        TenantSpec {
            name: "backup".into(),
            arrivals: TenantArrivals::Bursty {
                burst_rate_iops: 20_000.0,
                mean_on: SimDuration::from_millis(8),
                mean_off: SimDuration::from_millis(12),
            },
            block_size: 256 * KIB,
            read_fraction: 0.0,
            region: (128 * GIB, 64 * GIB),
            slo: Slo::new().min_throughput_bps(0.35e9),
        },
    ];

    ClusterSpec {
        tree,
        enclosures,
        tenants,
        policy,
        control_interval: SimDuration::from_millis(10),
        sample_interval: SimDuration::from_millis(2),
        planning_margin: 0.875,
        duration: SimDuration::from_millis(120),
        seed,
        tree_faults: Vec::new(),
        placement: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_tree_is_oversubscribed_but_valid() {
        let spec = oversubscribed_cluster(SelectionPolicy::ModelDriven, 1);
        assert!(spec.tree.validate().is_ok());
        let row = crate::tree::NodeId(1);
        assert!(spec.tree.advertised_w(row) > spec.tree.cap_w(row));
        assert_eq!(spec.tree.leaves().len(), spec.enclosures.len());
    }

    #[test]
    fn floors_fit_the_planning_budget() {
        let spec = oversubscribed_cluster(SelectionPolicy::ModelDriven, 1);
        let total_floor: f64 = spec
            .enclosures
            .iter()
            .map(|e| crate::selector::fleet_floor_w(&e.models))
            .sum();
        let plan_cap = spec.tree.cap_w(spec.tree.root_id()) * spec.planning_margin;
        assert!(total_floor <= plan_cap, "{total_floor} > {plan_cap}");
    }

    #[test]
    fn uniform_share_strands_the_fast_rack() {
        let spec = oversubscribed_cluster(SelectionPolicy::UniformStatic, 1);
        let share = spec.tree.cap_w(spec.tree.root_id()) / 4.0;
        let enc1 = crate::selector::uniform_choices(&spec.enclosures[1].models, share);
        assert!(enc1.iter().all(Option::is_none), "SSD2/PM1743 must strand");
        let enc0 = crate::selector::uniform_choices(&spec.enclosures[0].models, share);
        assert!(enc0.iter().all(Option::is_some));
    }
}
