//! Property tests for the energy-attribution ledger: double-entry
//! conservation must hold *exactly* — integer femtojoules, no epsilon —
//! over random power-tree topologies, random leaf power traces, and
//! random tenant byte movements. A ledger that ever reports a violation
//! on lawful inputs, or whose books drift from the metered total by even
//! one femtojoule, fails these tests. The reserved system account
//! (migration traffic) joins the split as a pseudo-tenant, so the
//! balance is `Σ tenant + system + idle == total` — exactly.

// Property tests assert on exact expected values.
#![allow(clippy::unwrap_used)]

use powadapt_cluster::{EnergyLedger, NodeKind, PowerTree, TenantUsage};
use powadapt_sim::SimTime;
use proptest::prelude::*;

/// A random three-level tree: root → 1..=3 racks → 1..=3 enclosures
/// each. Caps are generous so grant checks never trigger; the tests
/// target the *accounting* invariants, not cap policy.
fn tree_shape() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..=3, 1..=3)
}

fn build_tree(racks: &[usize]) -> PowerTree {
    let mut tree = PowerTree::root("dc", NodeKind::Cluster, 100_000.0, 1.0);
    let root = tree.root_id();
    for (r, &encs) in racks.iter().enumerate() {
        let rack = tree.add_child(root, &format!("rack{r}"), NodeKind::Rack, 10_000.0, 1.0);
        for e in 0..encs {
            tree.add_child(rack, &format!("enc{e}"), NodeKind::Enclosure, 1_000.0, 1.0);
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conservation_holds_on_random_topologies(
        racks in tree_shape(),
        n_tenants in 1usize..4,
    ) {
        // Shape-only case: fixed powers/bytes, varying tree.
        let tree = build_tree(&racks);
        let leaves = tree.leaves();
        let mut ledger = EnergyLedger::new(leaves.len(), n_tenants, SimTime::ZERO);
        let grants = vec![0.0f64; tree.len()];

        let mut now = SimTime::ZERO;
        let mut bytes = vec![0u64; n_tenants];
        for step in 1..=4u64 {
            ledger.set_powers(&vec![37.5; leaves.len()]);
            now += powadapt_sim::SimDuration::from_nanos(step * 1_000_000);
            for b in &mut bytes {
                *b += step * 4096;
            }
            let usage: Vec<TenantUsage<'_>> = bytes
                .iter()
                .map(|&b| TenantUsage {
                    name: "t",
                    bytes: b,
                    p99_latency_us: None,
                    slo_p99_us: None,
                })
                .collect();
            ledger.audit(now, &tree, &leaves, &grants, false, &usage, 0);
        }
        prop_assert_eq!(ledger.violations(), 0);
        let books: u128 = (0..n_tenants).map(|i| ledger.tenant_fj(i)).sum::<u128>()
            + ledger.system_fj()
            + ledger.idle_fj();
        prop_assert_eq!(books, ledger.total_fj());
    }

    #[test]
    fn conservation_holds_on_random_traces(
        racks in tree_shape(),
        steps_seed in proptest::collection::vec(0u64..(1 << 48), 1..2),
    ) {
        let tree = build_tree(&racks);
        let leaves = tree.leaves();
        let n_tenants = 3usize;
        let mut ledger = EnergyLedger::new(leaves.len(), n_tenants, SimTime::ZERO);
        let grants = vec![0.0f64; tree.len()];

        // Deterministic per-case trace from the seed: varying powers,
        // byte deltas (including all-zero intervals), and interval
        // lengths exercise the remainder paths in attribution. System
        // (migration) bytes advance on their own cadence, including
        // intervals where only the system moved data.
        let mut state = steps_seed[0] | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut now = SimTime::ZERO;
        let mut bytes = vec![0u64; n_tenants];
        let mut system_bytes = 0u64;
        for _ in 0..8 {
            let watts: Vec<f64> = leaves.iter().map(|_| (next() % 500_000) as f64 * 1e-3).collect();
            ledger.set_powers(&watts);
            now += powadapt_sim::SimDuration::from_nanos(1 + next() % 3_000_000_000);
            for b in &mut bytes {
                // Zero deltas are common: idle tenants in an interval.
                *b += if next() % 3 == 0 { 0 } else { next() % 1_000_000 };
            }
            system_bytes += if next() % 2 == 0 { 0 } else { next() % 4_000_000 };
            let usage: Vec<TenantUsage<'_>> = bytes
                .iter()
                .map(|&b| TenantUsage {
                    name: "t",
                    bytes: b,
                    p99_latency_us: None,
                    slo_p99_us: None,
                })
                .collect();
            ledger.audit(now, &tree, &leaves, &grants, false, &usage, system_bytes);
        }
        prop_assert_eq!(ledger.violations(), 0, "lawful inputs must never violate");
        let books: u128 = (0..n_tenants).map(|i| ledger.tenant_fj(i)).sum::<u128>()
            + ledger.system_fj()
            + ledger.idle_fj();
        prop_assert_eq!(books, ledger.total_fj(), "double-entry books must balance exactly");
        // Structural conservation: propagated subtree energy equals the
        // direct descendant-leaf sum at every node.
        let up = ledger.node_fj(&tree, &leaves);
        prop_assert_eq!(up[tree.root_id().0], ledger.total_fj());
    }

    #[test]
    fn system_only_intervals_bill_the_system_account(
        fj_seed in 1u64..(1 << 40),
    ) {
        // An interval where *only* migrations moved bytes must attribute
        // the whole interval (minus nothing — one account, no remainder
        // split) to the system account.
        let tree = build_tree(&[1]);
        let leaves = tree.leaves();
        let grants = vec![0.0f64; tree.len()];
        let mut ledger = EnergyLedger::new(leaves.len(), 2, SimTime::ZERO);
        ledger.set_powers(&[(fj_seed % 1000) as f64 + 1.0]);
        let usage = [
            TenantUsage { name: "a", bytes: 0, p99_latency_us: None, slo_p99_us: None },
            TenantUsage { name: "b", bytes: 0, p99_latency_us: None, slo_p99_us: None },
        ];
        let now = SimTime::ZERO + powadapt_sim::SimDuration::from_nanos(1 + fj_seed % 1_000_000);
        ledger.audit(now, &tree, &leaves, &grants, false, &usage, 4096);
        prop_assert_eq!(ledger.system_fj(), ledger.total_fj());
        prop_assert_eq!(ledger.tenant_fj(0), 0u128);
        prop_assert_eq!(ledger.idle_fj(), 0u128);
        prop_assert_eq!(ledger.violations(), 0);
    }
}
