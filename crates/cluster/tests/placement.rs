//! End-to-end behavior of the placement tier inside the cluster sim:
//! the three placement-evaluation arms, consolidation reaching the cold
//! tier, ledger attribution of migration traffic, breaker safety under
//! migration load, and bit-exact resume from a mid-migration checkpoint.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use powadapt_cluster::{placement_cluster, run_cluster, ClusterReport, ClusterSim, PlacementArm};
use powadapt_sim::SimDuration;

fn run(arm: PlacementArm) -> ClusterReport {
    run_cluster(placement_cluster(arm, 42)).unwrap()
}

fn joules_per_byte(r: &ClusterReport) -> f64 {
    r.total_joules / r.total_bytes as f64
}

/// Mean power across the cold (HDD) enclosures.
fn cold_tier_mean_w(r: &ClusterReport) -> f64 {
    r.nodes
        .iter()
        .filter(|n| n.path.contains("enc-cold"))
        .map(|n| n.mean_power_w)
        .sum()
}

#[test]
fn temp_driven_consolidates_and_bills_the_system_account() {
    let r = run(PlacementArm::TempDriven);
    assert!(
        r.migrations_completed > 0,
        "consolidation must move extents"
    );
    assert_eq!(
        r.migrations_started, r.migrations_completed,
        "every planned move must finish within the run"
    );
    // Every committed move is one extent read off the source and written
    // to the destination: exactly two legs of extent_bytes each.
    let extent = 64 * powadapt_device::MIB;
    assert_eq!(r.migration_bytes, r.migrations_completed * extent * 2);
    assert!(r.system_joules > 0.0, "migration energy must be attributed");
    assert!(
        r.system_joules < r.total_joules,
        "the system account is a slice of the metered total"
    );
    assert!(
        r.tenants.iter().all(|t| t.slo_ok),
        "SLOs hold under migration load"
    );
    assert!(
        r.caps_respected(),
        "migration must never violate a breaker cap"
    );
}

#[test]
fn static_spread_and_no_migration_never_migrate() {
    for arm in [PlacementArm::StaticSpread, PlacementArm::NoMigration] {
        let r = run(arm);
        assert_eq!(r.migrations_started, 0);
        assert_eq!(r.migration_bytes, 0);
        assert_eq!(r.system_joules, 0.0);
        assert!(r.caps_respected());
    }
}

/// The headline of the placement tier: draining cold extents to the HDD
/// racks and spinning the drives down between batch windows beats both
/// baselines on joules-per-byte — by well over the 20% the evaluation
/// requires against static spreading — and reclaims stranded cold-tier
/// watts, without costing any tenant its SLO.
#[test]
fn temp_driven_wins_on_joules_per_byte() {
    let temp = run(PlacementArm::TempDriven);
    let spread = run(PlacementArm::StaticSpread);
    let nomig = run(PlacementArm::NoMigration);

    // All arms serve the same offered workload; routing shifts which
    // tail IOs complete before the horizon, so allow a sliver of drift
    // while the energy differs by integer factors.
    let close = |a: u64, b: u64| (a as f64 - b as f64).abs() / (a as f64) < 1e-3;
    assert!(close(temp.total_bytes, spread.total_bytes));
    assert!(close(temp.total_bytes, nomig.total_bytes));

    let win_vs_spread = joules_per_byte(&spread) / joules_per_byte(&temp);
    assert!(
        win_vs_spread >= 1.25,
        "temperature-driven placement must beat static spread by >= 25% \
         joules-per-byte, got {win_vs_spread:.3}x"
    );
    assert!(
        joules_per_byte(&nomig) / joules_per_byte(&temp) > 1.0,
        "consolidation must also beat leaving data in place"
    );
    assert!(
        cold_tier_mean_w(&temp) < cold_tier_mean_w(&nomig),
        "spun-down HDDs must draw less than idling ones"
    );
    // Migration load must not regress service against the no-migration
    // baseline: the same IOs get served and nothing is dropped.
    assert!(close(temp.served_ios, nomig.served_ios));
    assert_eq!(temp.dropped, 0);
    assert_eq!(nomig.dropped, 0);
    assert!(temp.tenants.iter().all(|t| t.slo_ok));
}

/// A checkpoint taken between `MigrationStarted` and `MigrationCompleted`
/// — in-flight copy IOs, reserved destination capacity, standby pins and
/// all — resumes bit-exact: the resumed run's full report equals the
/// uninterrupted run's.
#[test]
fn checkpoint_mid_migration_resumes_bit_exact() {
    let spec = || placement_cluster(PlacementArm::TempDriven, 42);
    let straight = ClusterSim::new(spec()).unwrap().finish().unwrap();

    let mut sim = ClusterSim::new(spec()).unwrap();
    // The quarter point sits inside the consolidation drain window for
    // this scenario (batch plans at ~40 s, the drain runs for tens of
    // seconds after).
    let quarter = sim.start_time()
        + SimDuration::from_nanos(sim.end_time().duration_since(sim.start_time()).as_nanos() / 4);
    sim.run_to(quarter).unwrap();
    let pending = sim.placement().unwrap().pending_migrations();
    assert!(
        pending > 0,
        "the checkpoint must land mid-migration to exercise in-flight state"
    );
    let snap = sim.snapshot().unwrap();
    drop(sim);

    let resumed = ClusterSim::resume(spec(), &snap).unwrap().finish().unwrap();
    assert_eq!(resumed, straight);
}
