//! End-to-end acceptance of the cluster layer: at a cluster cap below the
//! sum of device maxima, the model-driven selector beats the naive
//! uniform share by a wide margin while never exceeding any node's cap.

#![allow(clippy::unwrap_used)]

use powadapt_cluster::{oversubscribed_cluster, run_cluster, ClusterReport, SelectionPolicy};

fn run(policy: SelectionPolicy, seed: u64) -> ClusterReport {
    run_cluster(oversubscribed_cluster(policy, seed)).unwrap()
}

#[test]
fn model_driven_wins_oversubscription_without_cap_violations() {
    let model = run(SelectionPolicy::ModelDriven, 42);
    let uniform = run(SelectionPolicy::UniformStatic, 42);

    // Both arms must respect every node's physical cap at every sample.
    assert!(model.caps_respected(), "model arm violated a cap:\n{model}");
    assert!(
        uniform.caps_respected(),
        "uniform arm violated a cap:\n{uniform}"
    );

    // The headline: the model-driven selector turns the stranded watts
    // into at least 1.3x the baseline's aggregate throughput.
    let ratio = model.aggregate_throughput_bps() / uniform.aggregate_throughput_bps();
    assert!(
        ratio >= 1.3,
        "win ratio {ratio:.2} < 1.3\nmodel:\n{model}\nuniform:\n{uniform}"
    );

    // The rebalance loop actually ran and re-planned.
    assert!(model.rebalance_rounds > 0);
    assert!(model.replans > 0);
    assert_eq!(uniform.rebalance_rounds, 0);

    // Tenants fare no worse under the model-driven policy.
    let met = |r: &ClusterReport| r.tenants.iter().filter(|t| t.slo_ok).count();
    assert!(
        met(&model) >= met(&uniform),
        "model meets {} SLOs, uniform {}",
        met(&model),
        met(&uniform)
    );
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = run(SelectionPolicy::ModelDriven, 7);
    let b = run(SelectionPolicy::ModelDriven, 7);
    assert_eq!(a, b);
    let c = run(SelectionPolicy::ModelDriven, 8);
    assert_ne!(a.total_bytes, c.total_bytes);
}

#[test]
fn every_tenant_is_served_in_the_model_arm() {
    let model = run(SelectionPolicy::ModelDriven, 42);
    for t in &model.tenants {
        assert!(t.served > 0, "tenant {} starved:\n{model}", t.name);
        assert!(t.submitted >= t.served);
    }
    assert_eq!(
        model.served_ios,
        model.tenants.iter().map(|t| t.served).sum()
    );
}
