//! A slab allocator: a freelist-backed arena with stable integer keys.
//!
//! Hot simulation state (in-flight IOs, NAND-die operations) is inserted
//! and removed constantly; keeping it in a `BTreeMap` pays an ordered-tree
//! walk and a node allocation per operation. A [`Slab`] stores values in a
//! contiguous `Vec`, reuses freed slots through an intrusive freelist, and
//! hands out the slot index as the key — insert, remove, and lookup are
//! all O(1) with no per-value allocation once the vec has grown.
//!
//! Determinism: slot assignment depends only on the sequence of
//! insert/remove calls (freed slots are reused LIFO), and iteration is in
//! slot-index order — no addresses, no hashing. Keys are *not* generation
//! counted: a key freed by [`Slab::remove`] must not be used again by the
//! caller, as the slot may have been reassigned. The simulation state
//! machines that use slabs own their keys for exactly one in-flight
//! operation, so stale keys cannot occur by construction.

/// Sentinel meaning "no next free slot".
const NONE: usize = usize::MAX;

#[derive(Debug, Clone)]
enum Slot<T> {
    Occupied(T),
    Free { next: usize },
}

/// A freelist arena with O(1) insert/remove/lookup and deterministic,
/// slot-index-ordered iteration.
///
/// # Examples
///
/// ```
/// use powadapt_sim::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.get(a), Some(&"alpha"));
/// assert_eq!(slab.remove(a), Some("alpha"));
/// // Freed slots are reused (LIFO), so growth is bounded by the peak
/// // number of simultaneously live values.
/// let c = slab.insert("gamma");
/// assert_eq!(c, a);
/// assert_eq!(slab.len(), 2);
/// # let _ = b;
/// ```
#[derive(Debug, Clone, Default)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: usize,
    len: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: NONE,
            len: 0,
        }
    }

    /// Creates an empty slab with room for `cap` values before growing.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: NONE,
            len: 0,
        }
    }

    /// Stores `value` and returns its slot key.
    // powadapt-lint: hot
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        if self.free_head == NONE {
            // powadapt-lint: allow(d9, reason = "amortized growth; steady state reuses the free list without pushing")
            self.slots.push(Slot::Occupied(value));
            self.slots.len() - 1
        } else {
            let key = self.free_head;
            let slot = &mut self.slots[key];
            if let Slot::Free { next } = *slot {
                self.free_head = next;
            }
            *slot = Slot::Occupied(value);
            key
        }
    }

    /// Removes and returns the value at `key`, freeing the slot.
    ///
    /// Returns `None` if the slot is vacant or the key out of range.
    // powadapt-lint: hot
    pub fn remove(&mut self, key: usize) -> Option<T> {
        let slot = self.slots.get_mut(key)?;
        if matches!(slot, Slot::Free { .. }) {
            return None;
        }
        let prev = std::mem::replace(
            slot,
            Slot::Free {
                next: self.free_head,
            },
        );
        self.free_head = key;
        self.len -= 1;
        match prev {
            Slot::Occupied(v) => Some(v),
            // Unreachable: vacancy was checked above.
            Slot::Free { .. } => None,
        }
    }

    /// Returns the value at `key`, if occupied.
    pub fn get(&self, key: usize) -> Option<&T> {
        match self.slots.get(key) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Returns the value at `key` mutably, if occupied.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        match self.slots.get_mut(key) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Is `key` an occupied slot?
    pub fn contains(&self, key: usize) -> bool {
        matches!(self.slots.get(key), Some(Slot::Occupied(_)))
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all values and resets the freelist (slot numbering restarts
    /// from zero).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NONE;
        self.len = 0;
    }

    /// Iterates `(key, &value)` over occupied slots in slot-index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied(v) => Some((i, v)),
            Slot::Free { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = Slab::new();
        let a = s.insert(10u32);
        let b = s.insert(20u32);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&10));
        assert_eq!(s.get_mut(b).map(|v| *v), Some(20));
        assert_eq!(s.remove(a), Some(10));
        assert_eq!(s.remove(a), None, "double-remove is None");
        assert!(!s.contains(a));
        assert!(s.contains(b));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut s = Slab::new();
        let keys: Vec<usize> = (0..4u32).map(|i| s.insert(i)).collect();
        s.remove(keys[1]);
        s.remove(keys[3]);
        assert_eq!(s.insert(99), keys[3]);
        assert_eq!(s.insert(98), keys[1]);
        // No free slots left: the next insert grows the vec.
        assert_eq!(s.insert(97), 4);
    }

    #[test]
    fn iteration_is_in_slot_order() {
        let mut s = Slab::new();
        for i in 0..5u32 {
            s.insert(i * 10);
        }
        s.remove(2);
        let got: Vec<(usize, u32)> = s.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(got, vec![(0, 0), (1, 10), (3, 30), (4, 40)]);
    }

    #[test]
    fn out_of_range_keys_are_safe() {
        let mut s: Slab<u8> = Slab::new();
        assert_eq!(s.get(7), None);
        assert_eq!(s.remove(7), None);
        assert!(!s.contains(7));
        assert!(s.is_empty());
    }

    #[test]
    fn clear_resets_numbering() {
        let mut s = Slab::new();
        s.insert(1u8);
        s.insert(2u8);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.insert(3u8), 0);
    }
}
