//! Discrete-event simulation kernel for the `powadapt` suite.
//!
//! This crate provides the substrate every other `powadapt` crate builds on:
//!
//! - [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time,
//! - [`EventQueue`] — a deterministic time-ordered event queue (a calendar
//!   queue; [`HeapQueue`] is the reference binary-heap kernel it is proven
//!   equivalent to),
//! - [`Slab`] — a freelist arena with stable integer keys for in-flight
//!   simulation state,
//! - [`SimRng`] — seeded randomness with the distributions the device and
//!   measurement models need,
//! - [`StepSignal`] — piecewise-constant signals (instantaneous device power
//!   draw) with window integration and trailing averages,
//! - [`Summary`] — summary statistics used for power traces and latency
//!   samples,
//! - [`units`] — typed newtypes ([`units::Watts`], [`units::Joules`],
//!   [`units::Micros`], [`units::Millis`]) for the float-valued quantities
//!   that cross public APIs; enforced by `powadapt-lint` rule D4.
//!
//! # Examples
//!
//! Simulating a square-wave power draw and averaging it:
//!
//! ```
//! use powadapt_sim::{EventQueue, SimDuration, SimTime, StepSignal};
//!
//! let mut power = StepSignal::new(1.0);
//! let mut events = EventQueue::new();
//! events.schedule(SimTime::from_millis(10), 5.0);
//! events.schedule(SimTime::from_millis(20), 1.0);
//! while let Some((t, watts)) = events.pop() {
//!     power.step(t, watts);
//! }
//! let avg = power.mean(SimTime::ZERO, SimTime::from_millis(30));
//! assert!((avg - (1.0 + 5.0 + 1.0) / 3.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Tests assert on exact expected values: unwraps and bit-exact float
// comparisons are the point there, not a hazard (see workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod queue;
mod rng;
mod rolling;
mod signal;
mod slab;
pub mod snapshot;
mod stats;
mod time;
pub mod units;
mod zipf;

pub use queue::{EventId, EventQueue, HeapQueue};
pub use rng::SimRng;
pub use rolling::RollingMean;
pub use signal::StepSignal;
pub use slab::Slab;
pub use stats::{percentile_of_sorted, relative_error, Summary};
pub use time::{SimDuration, SimTime};
pub use zipf::Zipf;
