//! Zipfian sampling for skewed workloads (Gray et al., "Quickly generating
//! billion-record synthetic databases").

use crate::rng::SimRng;

/// A Zipfian distribution over ranks `0..n`: rank `k` is drawn with
/// probability proportional to `1 / (k+1)^theta`.
///
/// Construction is O(n) (it computes the generalized harmonic number);
/// sampling is O(1). Typical storage-workload skews use `theta ≈ 0.99`.
///
/// # Examples
///
/// ```
/// use powadapt_sim::{SimRng, Zipf};
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = SimRng::seed_from(7);
/// let mut hits0 = 0;
/// for _ in 0..10_000 {
///     if zipf.sample(&mut rng) == 0 {
///         hits0 += 1;
///     }
/// }
/// // Rank 0 is by far the hottest.
/// assert!(hits0 > 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta_2: f64,
}

impl Zipf {
    /// Creates a distribution over `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `(0, 5]`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(
            theta > 0.0 && theta <= 5.0 && theta.is_finite(),
            "theta {theta} out of supported range (0, 5]"
        );
        // The closed form is singular at theta = 1; nudge off the pole.
        let theta = if (theta - 1.0).abs() < 1e-9 {
            1.0 + 1e-9
        } else {
            theta
        };
        let zeta = |count: u64| -> f64 { (1..=count).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zeta_n = zeta(n);
        let zeta_2 = zeta(2.min(n));
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        Zipf {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            zeta_2,
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `0..n` (0 is the hottest).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u = rng.uniform();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.zeta_2 {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(n: u64, theta: f64, draws: usize) -> Vec<usize> {
        let zipf = Zipf::new(n, theta);
        let mut rng = SimRng::seed_from(42);
        let mut counts = vec![0usize; n as usize];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn ranks_are_ordered_by_popularity() {
        let counts = frequencies(50, 0.99, 100_000);
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
        assert!(counts[5] > counts[25]);
    }

    #[test]
    fn frequencies_track_the_power_law() {
        let counts = frequencies(100, 1.0, 400_000);
        // P(0)/P(9) should be roughly 10^theta = 10.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn low_theta_flattens_the_distribution() {
        let skewed = frequencies(100, 1.2, 100_000);
        let flat = frequencies(100, 0.1, 100_000);
        let top_share =
            |c: &[usize]| c[..5].iter().sum::<usize>() as f64 / c.iter().sum::<usize>() as f64;
        assert!(top_share(&skewed) > 2.0 * top_share(&flat));
    }

    #[test]
    fn samples_stay_in_domain() {
        let zipf = Zipf::new(7, 0.9);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn degenerate_domain() {
        let zipf = Zipf::new(1, 0.99);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(zipf.sample(&mut rng), 0);
    }

    #[test]
    fn theta_one_is_handled() {
        let zipf = Zipf::new(1000, 1.0);
        assert!(zipf.theta() > 1.0, "nudged off the pole");
        let mut rng = SimRng::seed_from(3);
        let _ = zipf.sample(&mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let zipf = Zipf::new(500, 0.99);
        let a: Vec<u64> = {
            let mut rng = SimRng::seed_from(9);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SimRng::seed_from(9);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn zero_domain_panics() {
        let _ = Zipf::new(0, 0.99);
    }
}
