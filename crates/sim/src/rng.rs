//! Deterministic randomness for simulations.
//!
//! All stochastic components in the suite draw from a [`SimRng`] seeded
//! explicitly, so every experiment is reproducible bit-for-bit. Distribution
//! helpers (normal, exponential, log-normal) are implemented here directly so
//! the dependency set stays minimal.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic random number generator used throughout the suite.
///
/// Wraps a seeded [`StdRng`] and adds the distribution samplers the device
/// and meter models need. Two `SimRng`s created with the same seed produce
/// identical streams.
///
/// # Examples
///
/// ```
/// use powadapt_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator. Useful for giving each
    /// component (device, meter, engine) its own stream so adding draws in
    /// one component does not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.gen())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range [{lo}, {hi})");
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "u64_range requires lo < hi (got {lo}..{hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.uniform() < p
    }

    /// Standard normal sample (mean 0, stddev 1) via Box-Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box-Muller: two uniforms -> two independent standard normals.
        let u1 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev.is_finite() && std_dev >= 0.0, "bad std dev {std_dev}");
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "bad exponential mean {mean}");
        let u = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Log-normal sample parameterized by the mean and stddev of the
    /// underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially disjoint");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Draws from the child do not affect the parent stream.
        let _ = c1.next_u64();
        assert_eq!(parent1.next_u64(), parent2.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform_range(4.0, 4.0), 4.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "stddev {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SimRng::seed_from(17);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn index_bounds() {
        let mut rng = SimRng::seed_from(19);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn chance_rejects_bad_probability() {
        let mut rng = SimRng::seed_from(23);
        rng.chance(1.5);
    }
}
