//! Deterministic randomness for simulations.
//!
//! All stochastic components in the suite draw from a [`SimRng`] seeded
//! explicitly, so every experiment is reproducible bit-for-bit. The
//! generator (xoshiro256++ seeded through splitmix64) and the distribution
//! helpers (normal, exponential, log-normal) are implemented here directly
//! so the suite builds with no external dependencies — including on
//! machines with no access to a crates registry.

/// The splitmix64 finalizer: a bijective avalanche mix on `u64`.
fn mix64(v: u64) -> u64 {
    let mut z = v;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Expands a 64-bit seed into well-mixed state words (splitmix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    mix64(*state)
}

/// Deterministic random number generator used throughout the suite.
///
/// Implements xoshiro256++ with the distribution samplers the device and
/// meter models need. Two `SimRng`s created with the same seed produce
/// identical streams.
///
/// # Examples
///
/// ```
/// use powadapt_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator. Useful for giving each
    /// component (device, meter, engine) its own stream so adding draws in
    /// one component does not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Derives the seed of child stream `index` under `root` without any
    /// shared state — the primitive behind parallel sweeps, where every
    /// cell must get the same stream no matter which worker runs it or in
    /// what order.
    ///
    /// The construction is collision-free by design: `index` goes through
    /// the splitmix64 finalizer (a bijection on `u64`), is added to `root`
    /// (a bijection for fixed `root`), and the sum is finalized again. Two
    /// distinct indices therefore can never yield the same seed for the
    /// same root.
    ///
    /// # Examples
    ///
    /// ```
    /// use powadapt_sim::SimRng;
    ///
    /// assert_eq!(SimRng::stream_seed(42, 7), SimRng::stream_seed(42, 7));
    /// assert_ne!(SimRng::stream_seed(42, 7), SimRng::stream_seed(42, 8));
    /// ```
    pub fn stream_seed(root: u64, index: u64) -> u64 {
        mix64(root.wrapping_add(mix64(index ^ 0x6a09_e667_f3bc_c909)))
    }

    /// Creates the generator for child stream `index` under `root`; see
    /// [`SimRng::stream_seed`].
    pub fn for_stream(root: u64, index: u64) -> SimRng {
        SimRng::seed_from(SimRng::stream_seed(root, index))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, n)` by rejection sampling (unbiased).
    fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mask = n.next_power_of_two().wrapping_sub(1);
        loop {
            let v = self.next_u64() & mask;
            if v < n {
                return v;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits give the full double-precision mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    // Exact equality is the degenerate-range fast path, not a tolerance.
    #[allow(clippy::float_cmp)]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.bounded(n as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "u64_range requires lo < hi (got {lo}..{hi})");
        lo + self.bounded(hi - lo)
    }

    /// Bernoulli trial with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.uniform() < p
    }

    /// Standard normal sample (mean 0, stddev 1) via Box-Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box-Muller: two uniforms -> two independent standard normals.
        let u1 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "bad std dev {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "bad exponential mean {mean}"
        );
        let u = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Log-normal sample parameterized by the mean and stddev of the
    /// underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }
}

impl powadapt_snap::Snapshot for SimRng {
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        for s in self.state {
            w.u64(s);
        }
        w.opt_f64(self.gauss_spare);
        Ok(())
    }
}

impl powadapt_snap::Restore for SimRng {
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        for s in &mut self.state {
            *s = r.u64()?;
        }
        self.gauss_spare = r.opt_f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially disjoint");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Draws from the child do not affect the parent stream.
        let _ = c1.next_u64();
        assert_eq!(parent1.next_u64(), parent2.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform_range(4.0, 4.0), 4.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "stddev {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SimRng::seed_from(17);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn index_bounds() {
        let mut rng = SimRng::seed_from(19);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn chance_rejects_bad_probability() {
        let mut rng = SimRng::seed_from(23);
        rng.chance(1.5);
    }

    #[test]
    fn stream_seeds_are_injective_in_the_index() {
        // The construction is bijective in `index` for a fixed root; spot
        // check a dense block plus scattered large indices.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(SimRng::stream_seed(42, i)), "collision at {i}");
        }
        for i in [u64::MAX, u64::MAX / 2, 1 << 63, 0xdead_beef_0000] {
            assert!(seen.insert(SimRng::stream_seed(42, i)), "collision at {i}");
        }
    }

    #[test]
    fn stream_rngs_are_reproducible_and_distinct() {
        let mut a = SimRng::for_stream(7, 3);
        let mut b = SimRng::for_stream(7, 3);
        let mut c = SimRng::for_stream(7, 4);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut a = SimRng::for_stream(7, 3);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "sibling streams should be essentially disjoint");
    }
}
