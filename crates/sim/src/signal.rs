//! Piecewise-constant signals over simulated time.
//!
//! Device power draw is modeled as a step function: it changes only at
//! simulation events (a die starts programming, the spindle stops, ...).
//! [`StepSignal`] records those steps and supports point queries, window
//! integration, and trailing-window averages — the latter is exactly the
//! semantics of an NVMe power cap ("average power over any 10-second
//! period").

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// A right-continuous step function of simulated time.
///
/// The signal holds an initial value from time zero and a sequence of
/// `(time, value)` steps. Values are `f64` (watts, in the power use case, but
/// the type is unit-agnostic).
///
/// Memory can be bounded with [`StepSignal::set_retention`]: steps older than
/// the retention window (relative to the latest step) are compacted away,
/// which is what long-running experiments use.
///
/// # Examples
///
/// ```
/// use powadapt_sim::{SimDuration, SimTime, StepSignal};
///
/// let mut s = StepSignal::new(1.0);
/// s.step(SimTime::from_millis(10), 3.0);
/// assert_eq!(s.value_at(SimTime::from_millis(5)), 1.0);
/// assert_eq!(s.value_at(SimTime::from_millis(10)), 3.0);
/// // Integral over [0, 20 ms): 10 ms at 1.0 + 10 ms at 3.0.
/// let area = s.integrate(SimTime::ZERO, SimTime::from_millis(20));
/// assert!((area - 0.04).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StepSignal {
    /// Value before the first retained step.
    base: f64,
    /// Time from which `base` holds (start of retained history).
    base_from: SimTime,
    /// Retained steps, in strictly increasing time order.
    steps: VecDeque<(SimTime, f64)>,
    retention: Option<SimDuration>,
}

impl StepSignal {
    /// Creates a signal that holds `initial` from time zero.
    pub fn new(initial: f64) -> Self {
        StepSignal {
            base: initial,
            base_from: SimTime::ZERO,
            steps: VecDeque::new(),
            retention: None,
        }
    }

    /// Limits retained history to `window` behind the most recent step.
    ///
    /// Queries older than the retained history return the compacted base
    /// value, so only enable retention when older history is not needed.
    pub fn set_retention(&mut self, window: SimDuration) {
        self.retention = Some(window);
        self.compact();
    }

    /// Appends a step: from `at` onward the signal has value `value`.
    ///
    /// Steps at the same instant overwrite; out-of-order steps are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the latest recorded step.
    // The exact `==` compactions below are deliberate: a step is a no-op
    // only when the stored bits match, never "close enough".
    #[allow(clippy::float_cmp)]
    pub fn step(&mut self, at: SimTime, value: f64) {
        if let Some(last) = self.steps.back_mut() {
            let (last_t, last_v) = *last;
            assert!(
                at >= last_t,
                "step at {at} precedes latest step at {last_t}"
            );
            if at == last_t {
                last.1 = value;
                return;
            }
            if last_v == value {
                return; // No-op step; keep the history compact.
            }
        } else if self.base == value && at == self.base_from {
            return;
        }
        self.steps.push_back((at, value));
        self.compact();
    }

    /// Current (latest) value of the signal.
    pub fn current(&self) -> f64 {
        self.steps.back().map_or(self.base, |&(_, v)| v)
    }

    /// Value at instant `t` (right-continuous: the step at `t` counts).
    pub fn value_at(&self, t: SimTime) -> f64 {
        // Find the last step at or before t.
        let mut v = self.base;
        for &(st, sv) in &self.steps {
            if st <= t {
                v = sv;
            } else {
                break;
            }
        }
        v
    }

    /// Integral of the signal over `[from, to)`, in value·seconds.
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn integrate(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from <= to, "integrate: from {from} after to {to}");
        if from == to {
            return 0.0;
        }
        let mut area = 0.0;
        let mut cursor = from;
        let mut value = self.value_at(from);
        for &(st, sv) in &self.steps {
            if st <= cursor {
                continue;
            }
            if st >= to {
                break;
            }
            area += value * (st - cursor).as_secs_f64();
            cursor = st;
            value = sv;
        }
        area += value * (to - cursor).as_secs_f64();
        area
    }

    /// Mean value over `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to`.
    pub fn mean(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from < to, "mean requires a non-empty window");
        self.integrate(from, to) / (to - from).as_secs_f64()
    }

    /// Mean over the trailing `window` ending at `now`. If `now` is earlier
    /// than `window`, averages from time zero.
    pub fn trailing_mean(&self, now: SimTime, window: SimDuration) -> f64 {
        let from = if now.as_nanos() > window.as_nanos() {
            now - window
        } else {
            SimTime::ZERO
        };
        if from == now {
            return self.value_at(now);
        }
        self.mean(from, now)
    }

    /// Number of retained steps (diagnostic).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    fn compact(&mut self) {
        let Some(window) = self.retention else {
            return;
        };
        let Some(&(latest, _)) = self.steps.back() else {
            return;
        };
        let horizon = latest.saturating_duration_since(SimTime::ZERO);
        if horizon <= window {
            return;
        }
        let cutoff = latest - window;
        while let Some(&(t, v)) = self.steps.front() {
            // Keep one step at or before the cutoff so value_at(cutoff) stays
            // exact; fold strictly older steps into the base.
            if let Some(&(t2, _)) = self.steps.get(1) {
                if t2 <= cutoff {
                    self.base = v;
                    self.base_from = t;
                    self.steps.pop_front();
                    continue;
                }
            }
            break;
        }
    }
}

impl Default for StepSignal {
    fn default() -> Self {
        StepSignal::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn value_queries() {
        let mut s = StepSignal::new(2.0);
        s.step(ms(10), 5.0);
        s.step(ms(20), 1.0);
        assert_eq!(s.value_at(ms(0)), 2.0);
        assert_eq!(s.value_at(ms(9)), 2.0);
        assert_eq!(s.value_at(ms(10)), 5.0);
        assert_eq!(s.value_at(ms(19)), 5.0);
        assert_eq!(s.value_at(ms(25)), 1.0);
        assert_eq!(s.current(), 1.0);
    }

    #[test]
    fn integration_spans_steps() {
        let mut s = StepSignal::new(0.0);
        s.step(ms(100), 10.0);
        s.step(ms(200), 0.0);
        // 100 ms at 10 W = 1 J.
        let j = s.integrate(SimTime::ZERO, ms(300));
        assert!((j - 1.0).abs() < 1e-12, "{j}");
        // Partial overlap.
        let j = s.integrate(ms(150), ms(250));
        assert!((j - 0.5).abs() < 1e-12, "{j}");
    }

    #[test]
    fn integrate_empty_window_is_zero() {
        let s = StepSignal::new(3.0);
        assert_eq!(s.integrate(ms(5), ms(5)), 0.0);
    }

    #[test]
    fn mean_and_trailing_mean() {
        let mut s = StepSignal::new(4.0);
        s.step(ms(50), 8.0);
        // [0,100): half at 4, half at 8 -> 6.
        assert!((s.mean(ms(0), ms(100)) - 6.0).abs() < 1e-12);
        // Trailing 100 ms at t=100 ms.
        assert!((s.trailing_mean(ms(100), SimDuration::from_millis(100)) - 6.0).abs() < 1e-12);
        // Trailing window longer than history clamps to zero.
        assert!((s.trailing_mean(ms(100), SimDuration::from_secs(10)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn same_instant_step_overwrites() {
        let mut s = StepSignal::new(0.0);
        s.step(ms(10), 1.0);
        s.step(ms(10), 2.0);
        assert_eq!(s.value_at(ms(10)), 2.0);
        assert_eq!(s.step_count(), 1);
    }

    #[test]
    fn redundant_steps_are_dropped() {
        let mut s = StepSignal::new(1.0);
        s.step(ms(10), 5.0);
        s.step(ms(20), 5.0);
        assert_eq!(s.step_count(), 1);
    }

    #[test]
    #[should_panic(expected = "precedes latest step")]
    fn out_of_order_step_panics() {
        let mut s = StepSignal::new(0.0);
        s.step(ms(10), 1.0);
        s.step(ms(5), 2.0);
    }

    #[test]
    fn retention_compacts_but_preserves_recent_values() {
        let mut s = StepSignal::new(0.0);
        s.set_retention(SimDuration::from_millis(100));
        for i in 1..=1000u64 {
            s.step(ms(i), i as f64);
        }
        assert!(s.step_count() <= 110, "retained {}", s.step_count());
        // Recent history still exact.
        assert_eq!(s.value_at(ms(1000)), 1000.0);
        assert_eq!(s.value_at(ms(950)), 950.0);
        // [950, 1000): one ms at each of 950..=999 -> mean 974.5.
        let m = s.trailing_mean(ms(1000), SimDuration::from_millis(50));
        assert!((m - 974.5).abs() < 1.0, "{m}");
    }

    #[test]
    fn trailing_mean_with_no_elapsed_time_returns_point_value() {
        let s = StepSignal::new(7.0);
        assert_eq!(
            s.trailing_mean(SimTime::ZERO, SimDuration::from_secs(10)),
            7.0
        );
    }
}
