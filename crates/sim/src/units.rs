//! Typed unit quantities for power, energy, and float-valued time.
//!
//! Raw `f64`s travel through the meter/model/core crates as watts, joules,
//! and (micro/milli)seconds; a transposed argument is silent data
//! corruption that no test may catch. These newtypes make the unit part of
//! the signature. They are *exact* wrappers — construction and extraction
//! never transform the value — so migrating an API from `f64` to a newtype
//! cannot perturb a golden fixture by even one bit.
//!
//! Integer-nanosecond simulation time stays [`SimTime`]/[`SimDuration`]
//! (`crate::time`); [`Micros`]/[`Millis`] are for the float-valued latency
//! and interval *measurements* that appear in figures, where the paper's
//! own units are microseconds and milliseconds.
//!
//! The `powadapt-lint` rule **D4** enforces adoption: a public `fn` in
//! `meter`/`model`/`core` with a raw `f64` parameter named `*_watts`,
//! `*_joules`, `*_ms`, or `*_us` is a build-blocking diagnostic.
//!
//! # Examples
//!
//! ```
//! use powadapt_sim::units::{Joules, Micros, Watts};
//! use powadapt_sim::SimDuration;
//!
//! let p = Watts::new(5.5);
//! let e: Joules = p * SimDuration::from_millis(200);
//! assert!((e.get() - 1.1).abs() < 1e-12);
//!
//! let lat = Micros::new(850.0);
//! assert_eq!(lat.as_millis().get(), 0.85);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::time::SimDuration;

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw value already expressed in this unit.
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// The raw value, exactly as constructed.
            pub const fn get(self) -> f64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// Instantaneous power in watts.
    Watts,
    "W"
);
unit_newtype!(
    /// Energy in joules.
    Joules,
    "J"
);
unit_newtype!(
    /// A float-valued interval in milliseconds (figure/statistics use;
    /// simulation time itself is integer-nanosecond [`SimTime`]).
    ///
    /// [`SimTime`]: crate::SimTime
    Millis,
    "ms"
);
unit_newtype!(
    /// A float-valued interval in microseconds (the paper's latency unit).
    Micros,
    "us"
);

/// Power sustained over a duration is energy: `W × s = J`.
impl Mul<SimDuration> for Watts {
    type Output = Joules;
    fn mul(self, rhs: SimDuration) -> Joules {
        Joules(self.0 * rhs.as_secs_f64())
    }
}

/// Energy over a duration is average power: `J / s = W`.
impl Div<SimDuration> for Joules {
    type Output = Watts;
    fn div(self, rhs: SimDuration) -> Watts {
        Watts(self.0 / rhs.as_secs_f64())
    }
}

impl Micros {
    /// The same interval in milliseconds.
    pub fn as_millis(self) -> Millis {
        Millis(self.0 / 1_000.0)
    }
}

impl Millis {
    /// The same interval in microseconds.
    pub fn as_micros(self) -> Micros {
        Micros(self.0 * 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrappers_are_exact() {
        // Bit-exact round trip, including values that decimal conversions
        // would perturb.
        for v in [0.1 + 0.2, 1e-300, 7.234_567_890_123_456e18, -0.0] {
            assert_eq!(Watts::new(v).get().to_bits(), v.to_bits());
            assert_eq!(Micros::new(v).get().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(2.5) * SimDuration::from_secs_f64(4.0);
        assert!((e.get() - 10.0).abs() < 1e-12);
        let p = e / SimDuration::from_secs_f64(4.0);
        assert!((p.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Joules = [Joules::new(1.0), Joules::new(2.0)].into_iter().sum();
        assert!((total.get() - 3.0).abs() < 1e-12);
        let mut w = Watts::new(1.0);
        w += Watts::new(0.5);
        assert!(((w * 2.0).get() - 3.0).abs() < 1e-12);
        assert!(((w - Watts::new(1.0)).get() - 0.5).abs() < 1e-12);
        assert!(((w / 3.0).get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interval_conversions() {
        assert!((Micros::new(1_500.0).as_millis().get() - 1.5).abs() < 1e-12);
        assert!((Millis::new(0.25).as_micros().get() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn display_carries_unit() {
        assert_eq!(Watts::new(5.5).to_string(), "5.5 W");
        assert_eq!(Micros::new(850.0).to_string(), "850 us");
        assert_eq!(Joules::ZERO.to_string(), "0 J");
        assert_eq!(Millis::new(1.0).to_string(), "1 ms");
    }
}
