//! Small statistics toolkit shared by the measurement and IO crates.

use std::fmt;

/// Summary statistics over a sample of `f64` values.
///
/// # Examples
///
/// ```
/// use powadapt_sim::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    std_dev: f64,
}

impl Summary {
    /// Builds a summary from samples. Returns `None` if `samples` is empty
    /// or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Some(Summary {
            sorted,
            mean,
            std_dev: var.sqrt(),
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the summary is over zero samples (never constructible; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Percentile in `[0, 100]` with linear interpolation between ranks.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        percentile_of_sorted(&self.sorted, p)
    }

    /// The sorted samples backing this summary.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Density estimate over `bins` equal-width bins spanning `[min, max]` —
    /// the data behind a violin plot. Returns `(bin_centers, counts)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn violin_bins(&self, bins: usize) -> (Vec<f64>, Vec<usize>) {
        assert!(bins > 0, "violin_bins requires at least one bin");
        let lo = self.min();
        let hi = self.max();
        let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &x in &self.sorted {
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let centers = (0..bins).map(|i| lo + width * (i as f64 + 0.5)).collect();
        (centers, counts)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} p50={:.4} p99={:.4} max={:.4}",
            self.len(),
            self.mean(),
            self.std_dev(),
            self.min(),
            self.median(),
            self.percentile(99.0),
            self.max()
        )
    }
}

/// Percentile of a pre-sorted slice with linear interpolation.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Relative error of `measured` against `truth`, as a fraction.
///
/// # Panics
///
/// Panics if `truth` is zero.
pub fn relative_error(measured: f64, truth: f64) -> f64 {
    // powadapt-lint: allow(D3, reason = "exact-zero sentinel check backing the documented panic contract; NaN-safe")
    assert!(truth != 0.0, "relative error against zero truth");
    ((measured - truth) / truth).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean(), 5.0);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn empty_and_nonfinite_rejected() {
        assert!(Summary::from_samples(&[]).is_none());
        assert!(Summary::from_samples(&[1.0, f64::NAN]).is_none());
        assert!(Summary::from_samples(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_samples(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert_eq!(s.median(), 25.0);
        assert!((s.percentile(25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile_of_sorted(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn violin_bins_cover_all_samples() {
        let s = Summary::from_samples(&[1.0, 1.1, 1.2, 5.0, 9.0, 9.1]).unwrap();
        let (centers, counts) = s.violin_bins(4);
        assert_eq!(centers.len(), 4);
        assert_eq!(counts.iter().sum::<usize>(), 6);
        // Mass concentrates at the ends.
        assert!(counts[0] >= 3);
        assert!(counts[3] >= 2);
    }

    #[test]
    fn violin_bins_degenerate_distribution() {
        let s = Summary::from_samples(&[3.0, 3.0, 3.0]).unwrap();
        let (_, counts) = s.violin_bins(5);
        assert_eq!(counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(101.0, 100.0) - 0.01).abs() < 1e-12);
        assert!((relative_error(99.0, 100.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::from_samples(&[1.0, 2.0]).unwrap();
        assert!(!s.to_string().is_empty());
    }
}
