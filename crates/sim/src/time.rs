//! Virtual time for the discrete-event simulation.
//!
//! Time is represented in integer nanoseconds since the start of the
//! simulation. Using an integer representation keeps event ordering exact
//! and reproducible; floating-point seconds are only used at the edges
//! (statistics, reporting).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds from simulation
/// start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Arithmetic
/// with [`SimDuration`] is checked in debug builds (overflow panics) and
/// saturating is available explicitly via [`SimTime::saturating_add`].
///
/// # Examples
///
/// ```
/// use powadapt_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// # Examples
///
/// ```
/// use powadapt_sim::SimDuration;
///
/// let d = SimDuration::from_micros(250) * 4;
/// assert_eq!(d, SimDuration::from_millis(1));
/// assert_eq!(d.as_secs_f64(), 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates an instant from floating-point seconds since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid simulation time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Duration since `earlier`, or [`SimDuration::ZERO`] if `earlier` is in
    /// the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from floating-point seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid duration factor {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn duration_construction_and_conversion() {
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(3);
        assert_eq!((t + d).as_millis(), 13);
        assert_eq!((t - d).as_millis(), 7);
        assert_eq!(((t + d) - t).as_millis(), 3);
    }

    #[test]
    fn duration_since_and_saturation() {
        let a = SimTime::from_millis(4);
        let b = SimTime::from_millis(9);
        assert_eq!(b.duration_since(a).as_millis(), 5);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(100);
        assert_eq!((d * 10).as_millis(), 1);
        assert_eq!((d / 4).as_micros(), 25);
        assert_eq!(d.mul_f64(2.5).as_micros(), 250);
    }

    #[test]
    fn duration_min_max_sum() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total.as_millis(), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn std_duration_conversion() {
        let d: std::time::Duration = SimDuration::from_millis(250).into();
        assert_eq!(d.as_millis(), 250);
    }
}
