//! Snapshot codec helpers for the kernel's time types.
//!
//! Virtual time is integer nanoseconds, so [`SimTime`] and [`SimDuration`]
//! serialize as their raw `u64` — exact by construction. Every other
//! crate's `write_state`/`read_state` goes through these helpers so time
//! has exactly one on-disk representation.

use powadapt_snap::{SnapError, SnapReader, SnapWriter};

use crate::time::{SimDuration, SimTime};

/// Writes a [`SimTime`] as its nanosecond count.
pub fn write_time(w: &mut SnapWriter, t: SimTime) {
    w.u64(t.as_nanos());
}

/// Reads a [`SimTime`] written by [`write_time`].
///
/// # Errors
///
/// Propagates [`SnapError::Truncated`] from the reader.
pub fn read_time(r: &mut SnapReader<'_>) -> Result<SimTime, SnapError> {
    Ok(SimTime::from_nanos(r.u64()?))
}

/// Writes a [`SimDuration`] as its nanosecond count.
pub fn write_duration(w: &mut SnapWriter, d: SimDuration) {
    w.u64(d.as_nanos());
}

/// Reads a [`SimDuration`] written by [`write_duration`].
///
/// # Errors
///
/// Propagates [`SnapError::Truncated`] from the reader.
pub fn read_duration(r: &mut SnapReader<'_>) -> Result<SimDuration, SnapError> {
    Ok(SimDuration::from_nanos(r.u64()?))
}

/// Writes an `Option<SimTime>` with a presence byte.
pub fn write_opt_time(w: &mut SnapWriter, t: Option<SimTime>) {
    match t {
        Some(t) => {
            w.bool(true);
            write_time(w, t);
        }
        None => w.bool(false),
    }
}

/// Reads an `Option<SimTime>` written by [`write_opt_time`].
///
/// # Errors
///
/// Propagates any decoding error from the reader.
pub fn read_opt_time(r: &mut SnapReader<'_>) -> Result<Option<SimTime>, SnapError> {
    if r.bool()? {
        Ok(Some(read_time(r)?))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn time_round_trips() {
        let mut w = SnapWriter::new();
        write_time(&mut w, SimTime::from_micros(123_456));
        write_duration(&mut w, SimDuration::from_millis(7));
        write_opt_time(&mut w, Some(SimTime::from_secs(9)));
        write_opt_time(&mut w, None);
        let payload = w.into_payload();
        let mut r = SnapReader::new(&payload);
        assert_eq!(read_time(&mut r).unwrap(), SimTime::from_micros(123_456));
        assert_eq!(read_duration(&mut r).unwrap(), SimDuration::from_millis(7));
        assert_eq!(read_opt_time(&mut r).unwrap(), Some(SimTime::from_secs(9)));
        assert_eq!(read_opt_time(&mut r).unwrap(), None);
        r.finish().unwrap();
    }
}
