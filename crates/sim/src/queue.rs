//! A generic discrete-event queue.
//!
//! Events carry a payload of type `E` and fire in timestamp order. Ties are
//! broken by insertion order so simulations are fully deterministic.
//!
//! Two implementations share one API and one observable behavior:
//!
//! - [`EventQueue`] — the production kernel: a *calendar queue*. The near
//!   future is a ring of fixed-width time buckets (amortized O(1)
//!   schedule/pop); everything past the ring's horizon waits in a
//!   `BTreeMap` overflow tier keyed by `(time, seq)` so tie-breaks stay
//!   stable. Cancellation is O(1) and lazy: a per-sequence flag marks the
//!   entry dead and the physical record is discarded when the sweep
//!   reaches it ("tombstone"); resolved flags are compacted from the front
//!   as the oldest ids settle, and a long-lived straggler spills to a
//!   sparse set instead of pinning the dense window open.
//! - [`HeapQueue`] — the original `BinaryHeap` kernel, kept as the
//!   reference implementation. The differential harness
//!   (`tests/queue_equivalence.rs`) drives both with identical scripts and
//!   asserts identical `(time, id, payload)` streams, and `kernel_bench`
//!   measures the calendar queue's speedup against it.
//!
//! Both serialize through `powadapt-snap` with the *same* byte layout
//! (`next_seq`, then live entries sorted by `(time, seq)`), so snapshots
//! are interchangeable between implementations and across versions.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
///
/// Ids are unique within one [`EventQueue`] and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, for ties,
        // first-inserted) entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// log2 of the calendar bucket width in nanoseconds (65.536 µs): wide
/// enough that a typical device op (NAND read, interface transfer) and its
/// completion land within a few buckets, narrow enough that one bucket's
/// sort stays small at fleet event rates.
const BUCKET_BITS: u32 = 16;
/// Calendar bucket width in nanoseconds.
const BUCKET_W: u64 = 1 << BUCKET_BITS;
/// Number of buckets in the ring (must be a power of two). The ring spans
/// `BUCKET_COUNT * BUCKET_W` ≈ 16.8 ms of simulated time; timers beyond
/// that (standby wakes, HDD spin-ups, multi-second ticks) use the
/// overflow tier.
const BUCKET_COUNT: usize = 256;
/// Ring span in nanoseconds.
const SPAN: u64 = (BUCKET_COUNT as u64) << BUCKET_BITS;

/// Cancellation-flag states, indexed by `seq - flag_base`.
const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const FIRED: u8 = 2;

/// Floor of the dense flag deque's spill threshold. One long-lived
/// pending event (a far-future standby wake, say) would otherwise pin
/// `flag_base` while millions of later seqs resolve, growing the deque
/// one byte per seq. Past `max(FLAG_SPILL_MIN, 8 * live_len)` the stuck
/// front is spilled into the sparse `old_live` set, so flag memory
/// tracks the *count* of outstanding events, never the seq span — while
/// a healthy queue, whose window is a small multiple of its live set,
/// never spills and never pays the `BTreeSet` lookup.
const FLAG_SPILL_MIN: usize = 1 << 16;

/// A time-ordered queue of simulation events (calendar-queue kernel).
///
/// # Examples
///
/// ```
/// use powadapt_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "later");
/// q.schedule(SimTime::from_millis(1), "sooner");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t.as_millis(), ev), (1, "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Entries with `at < active_end`, sorted *descending* by `(at, seq)`
    /// so the next event to fire is at the back (O(1) pop). Late
    /// schedules into the already-swept window binary-insert here.
    active: Vec<Entry<E>>,
    /// Ring of unsorted buckets covering `[active_end, active_end + SPAN)`;
    /// bucket index for time `t` is `(t >> BUCKET_BITS) % BUCKET_COUNT`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Exclusive upper bound (nanoseconds) of the swept window; always a
    /// multiple of `BUCKET_W` except in the saturated far-future corner
    /// where it is `u64::MAX`.
    // powadapt-lint: allow(d6, reason = "sweep cursor; read_state rebuilds the window from the live entries")
    active_end: u64,
    /// Entries with `at >= active_end + SPAN`, keyed `(at, seq)` so
    /// iteration order is exactly fire order.
    overflow: BTreeMap<(SimTime, u64), E>,
    /// Physical entries in `active` + `buckets` (live or tombstoned).
    // powadapt-lint: allow(d6, reason = "occupancy counter; recomputed as read_state re-inserts entries")
    near_phys: usize,
    /// Live (scheduled, not fired, not cancelled) entries.
    live_len: usize,
    /// Per-sequence state for seqs in `[flag_base, next_seq)`. Seqs
    /// below `flag_base` are resolved (fired or cancelled) unless listed
    /// in `old_live`. The front is compacted whenever the oldest
    /// outstanding seq resolves, and spilled into `old_live` when a
    /// long-lived entry would let the deque outgrow the spill threshold
    /// (see [`FLAG_SPILL_MIN`]).
    // powadapt-lint: allow(d6, reason = "dense liveness window; read_state restores liveness sparsely via old_live")
    flags: VecDeque<u8>,
    flag_base: u64,
    /// Sparse tier: seqs below `flag_base` that are still live — spilled
    /// long-lived entries plus everything restored from a snapshot.
    /// Usually empty, so the O(log n) lookups never bite the hot path.
    old_live: BTreeSet<u64>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            active: Vec::new(),
            buckets: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            active_end: 0,
            overflow: BTreeMap::new(),
            near_phys: 0,
            live_len: 0,
            flags: VecDeque::new(),
            flag_base: 0,
            old_live: BTreeSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns an id usable with
    /// [`EventQueue::cancel`].
    // powadapt-lint: hot
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        // powadapt-lint: allow(d9, reason = "amortized: the flag window is recycled and spilled once it outgrows the live set")
        self.flags.push_back(LIVE);
        if self.flags.len() > FLAG_SPILL_MIN.max(self.live_len * 8) {
            self.spill_flags();
        }
        self.live_len += 1;
        self.place(Entry { at, seq, payload });
        EventId(seq)
    }

    /// Routes a physical entry to the tier its timestamp belongs to.
    // powadapt-lint: hot
    fn place(&mut self, e: Entry<E>) {
        let t = e.at.as_nanos();
        if t < self.active_end {
            // The sweep already passed this window: keep `active` sorted
            // descending so the earliest entry stays at the back. Equal
            // timestamps sort by seq, preserving insertion-order ties.
            let key = (e.at, e.seq);
            let idx = self.active.partition_point(|x| (x.at, x.seq) > key);
            // powadapt-lint: allow(d9, reason = "late schedules into the swept window are rare; the insert is bounded by the active window")
            self.active.insert(idx, e);
            self.near_phys += 1;
        } else if t < self.active_end.saturating_add(SPAN) {
            let idx = ((t >> BUCKET_BITS) as usize) & (BUCKET_COUNT - 1);
            // powadapt-lint: allow(d9, reason = "amortized: bucket storage is recycled across ring revolutions")
            self.buckets[idx].push(e);
            self.near_phys += 1;
        } else {
            // powadapt-lint: allow(d9, reason = "far-future timers take the overflow tree, off the per-event fast path")
            self.overflow.insert((e.at, e.seq), e.payload);
        }
    }

    fn flag(&self, seq: u64) -> u8 {
        if seq < self.flag_base {
            // Below the dense window: resolved long ago and compacted
            // away — unless it was spilled or restored into the sparse
            // tier while still pending.
            if self.old_live.contains(&seq) {
                LIVE
            } else {
                CANCELLED
            }
        } else {
            self.flags[(seq - self.flag_base) as usize]
        }
    }

    fn set_flag(&mut self, seq: u64, state: u8) {
        debug_assert_ne!(state, LIVE, "entries only ever resolve here");
        if seq < self.flag_base {
            self.old_live.remove(&seq);
            return;
        }
        let i = (seq - self.flag_base) as usize;
        self.flags[i] = state;
        if i == 0 {
            self.compact_flags();
        }
    }

    /// Advances `flag_base` past resolved entries — the "tombstone
    /// compaction" that keeps the flag window proportional to the number
    /// of outstanding events rather than the total ever scheduled.
    fn compact_flags(&mut self) {
        while let Some(&f) = self.flags.front() {
            if f == LIVE {
                break;
            }
            self.flags.pop_front();
            self.flag_base += 1;
        }
    }

    /// The dense deque outgrew its threshold because its front is stuck
    /// on a long-lived entry: move the oldest seqs into the sparse tier
    /// until the deque is back under it. Each spilled seq is handled
    /// once, so schedule stays amortized O(1); the `BTreeSet` only ever
    /// holds the (rare) long-lived stragglers.
    // powadapt-lint: hot
    fn spill_flags(&mut self) {
        let target = FLAG_SPILL_MIN.max(self.live_len * 8);
        while self.flags.len() > target {
            let Some(f) = self.flags.pop_front() else {
                return;
            };
            if f == LIVE {
                // powadapt-lint: allow(d9, reason = "spill cost is amortized over the events that grew the flag window")
                self.old_live.insert(self.flag_base);
            }
            self.flag_base += 1;
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    /// Cancellation is O(1) and lazy: the entry is only marked dead here
    /// and is physically discarded when the sweep reaches it.
    // powadapt-lint: hot
    pub fn cancel(&mut self, id: EventId) -> bool {
        let seq = id.0;
        if seq >= self.next_seq || self.flag(seq) != LIVE {
            return false;
        }
        self.set_flag(seq, CANCELLED);
        self.live_len -= 1;
        // Overflow entries can be reclaimed eagerly at O(log n) only by
        // key — which we don't know here. They are dropped when the
        // window sweeps over them, like near-tier tombstones.
        true
    }

    /// Cancels a batch of events, returning how many were still live.
    ///
    /// Equivalent to calling [`EventQueue::cancel`] per id; each
    /// cancellation is O(1), so cancel-heavy paths (retry timers, idle
    /// timers) pay no per-event ordering cost.
    // powadapt-lint: hot
    pub fn cancel_many<I>(&mut self, ids: I) -> usize
    where
        I: IntoIterator<Item = EventId>,
    {
        ids.into_iter().filter(|&id| self.cancel(id)).count()
    }

    /// Timestamp of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        if self.ensure_front() {
            self.active.last().map(|e| e.at)
        } else {
            None
        }
    }

    /// Removes and returns the next live event as `(time, payload)`.
    // powadapt-lint: hot
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.ensure_front() {
            return None;
        }
        let e = self.active.pop()?;
        self.near_phys -= 1;
        self.live_len -= 1;
        self.set_flag(e.seq, FIRED);
        Some((e.at, e.payload))
    }

    /// Removes and returns the next live event only if it fires at or before
    /// `t`.
    // powadapt-lint: hot
    pub fn pop_at_or_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self.next_time() {
            Some(at) if at <= t => self.pop(),
            _ => None,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live_len
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live_len == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.active.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.active_end = 0;
        self.near_phys = 0;
        self.live_len = 0;
        self.flags.clear();
        self.old_live.clear();
        self.flag_base = self.next_seq;
    }

    /// Makes the next live event (if any) the back element of `active`.
    /// Returns `false` iff no live events remain.
    // powadapt-lint: hot
    fn ensure_front(&mut self) -> bool {
        if self.live_len == 0 {
            return false;
        }
        loop {
            // Drop tombstones off the back of the sorted window.
            while let Some(e) = self.active.last() {
                if self.flag(e.seq) == LIVE {
                    return true;
                }
                self.active.pop();
                self.near_phys -= 1;
            }
            if self.near_phys > 0 {
                // Some bucket within the ring is non-empty; sweep forward
                // one bucket width. The outer loop re-checks the counters
                // after each step, so a bucket holding only tombstones
                // cannot wedge the sweep.
                self.activate_next_bucket();
            } else if self.overflow.is_empty() {
                // live_len > 0 but nothing physical: unreachable by
                // construction (every live entry has a physical record).
                return false;
            } else {
                self.refill_from_overflow();
            }
        }
    }

    /// Activates the bucket starting at `active_end`: moves its live
    /// entries into `active` (sorted), advances the window, and migrates
    /// any overflow entries that now fall inside the ring into the freed
    /// bucket. The drain must happen *before* the migration — migrated
    /// entries belong to the freed bucket's next revolution, a full SPAN
    /// later, and must not ride along into `active` now.
    // powadapt-lint: hot
    fn activate_next_bucket(&mut self) {
        let idx = ((self.active_end >> BUCKET_BITS) as usize) & (BUCKET_COUNT - 1);
        {
            let EventQueue {
                active,
                buckets,
                near_phys,
                flags,
                flag_base,
                old_live,
                ..
            } = self;
            for e in buckets[idx].drain(..) {
                let live = if e.seq >= *flag_base {
                    flags[(e.seq - *flag_base) as usize] == LIVE
                } else {
                    old_live.contains(&e.seq)
                };
                if live {
                    active.push(e);
                } else {
                    *near_phys -= 1;
                }
            }
            // Descending, so the earliest (and lowest-seq) entry pops first.
            active.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
        }
        // Saturating: near u64::MAX the window narrows instead of
        // wrapping; `refill_from_overflow` owns the saturated corner.
        self.active_end = self.active_end.saturating_add(BUCKET_W);
        // The freed bucket's window advanced by a full SPAN; pull the
        // overflow entries that now belong to it. They share `idx`
        // because the ring length is exactly SPAN.
        let limit = self.active_end.saturating_add(SPAN);
        self.migrate_overflow_below(limit);
    }

    /// Moves overflow entries with `at < limit` (nanoseconds) into their
    /// ring buckets.
    // powadapt-lint: hot
    fn migrate_overflow_below(&mut self, limit: u64) {
        let first_in = self
            .overflow
            .first_key_value()
            .is_some_and(|((at, _), _)| at.as_nanos() < limit);
        if !first_in {
            return;
        }
        let rest = self.overflow.split_off(&(SimTime::from_nanos(limit), 0));
        let movable = std::mem::replace(&mut self.overflow, rest);
        for ((at, seq), payload) in movable {
            let idx = ((at.as_nanos() >> BUCKET_BITS) as usize) & (BUCKET_COUNT - 1);
            // powadapt-lint: allow(d9, reason = "overflow migration recycles bucket storage; amortized over a full SPAN")
            self.buckets[idx].push(Entry { at, seq, payload });
            self.near_phys += 1;
        }
    }

    /// The near tier is physically empty: jump the window forward to the
    /// first overflow entry instead of sweeping empty buckets.
    // powadapt-lint: hot
    fn refill_from_overflow(&mut self) {
        let Some((&(at, _), _)) = self.overflow.first_key_value() else {
            return;
        };
        let base = (at.as_nanos() >> BUCKET_BITS) << BUCKET_BITS;
        if base.saturating_add(SPAN) == u64::MAX {
            // Far-future corner (times near u64::MAX): bucket arithmetic
            // would saturate, so serve the remaining entries straight from
            // the sorted overflow via `active`. Entries at exactly
            // `active_end == u64::MAX` may then sit in `active`; the sort
            // keeps their order correct.
            self.active_end = u64::MAX;
            let movable = std::mem::take(&mut self.overflow);
            for ((at, seq), payload) in movable {
                // powadapt-lint: allow(d9, reason = "far-future corner: remaining entries are served once from the sorted overflow")
                self.active.push(Entry { at, seq, payload });
                self.near_phys += 1;
            }
            self.active
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
        } else {
            self.active_end = base;
            self.migrate_overflow_below(base.saturating_add(SPAN));
        }
    }

    /// Serializes the queue's live entries and sequence counter. The
    /// payload codec is supplied by the caller because `E` is theirs.
    ///
    /// The calendar layout (which bucket or tier an entry sits in, how far
    /// the sweep has advanced) is an implementation detail, so entries are
    /// emitted sorted by `(at, seq)` — the queue's own pop order — making
    /// the byte stream deterministic and identical to what the original
    /// heap kernel wrote. Cancelled entries are dropped here: lazy
    /// cancellation is an optimization, not observable state. `next_seq`
    /// is preserved exactly so event ids never collide across a restore.
    ///
    /// # Errors
    ///
    /// Propagates errors from the payload codec.
    pub fn write_state<F>(
        &self,
        w: &mut powadapt_snap::SnapWriter,
        mut item: F,
    ) -> Result<(), powadapt_snap::SnapError>
    where
        F: FnMut(&mut powadapt_snap::SnapWriter, &E) -> Result<(), powadapt_snap::SnapError>,
    {
        w.u64(self.next_seq);
        let mut live: Vec<(SimTime, u64, &E)> = Vec::with_capacity(self.live_len);
        for e in self.active.iter().chain(self.buckets.iter().flatten()) {
            if self.flag(e.seq) == LIVE {
                live.push((e.at, e.seq, &e.payload));
            }
        }
        for (&(at, seq), payload) in &self.overflow {
            if self.flag(seq) == LIVE {
                live.push((at, seq, payload));
            }
        }
        live.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        w.seq_len(live.len());
        for (at, seq, payload) in live {
            crate::snapshot::write_time(w, at);
            w.u64(seq);
            item(w, payload)?;
        }
        Ok(())
    }

    /// Replaces the queue's contents with entries from a snapshot written
    /// by [`EventQueue::write_state`], preserving each entry's sequence
    /// number (and therefore every tie-break) exactly.
    ///
    /// The restored flag state is sparse — live seqs go straight into
    /// the `old_live` tier, never a per-seq dense window — so any
    /// `next_seq`-to-oldest-live gap a legitimate `write_state` can
    /// produce (e.g. one far-future timer outliving millions of resolved
    /// events) restores in memory proportional to the live count.
    ///
    /// # Errors
    ///
    /// [`SnapError::InvalidValue`](powadapt_snap::SnapError::InvalidValue)
    /// on duplicate or out-of-range sequence numbers, or any error from
    /// the payload codec.
    pub fn read_state<F>(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
        mut item: F,
    ) -> Result<(), powadapt_snap::SnapError>
    where
        F: FnMut(&mut powadapt_snap::SnapReader<'_>) -> Result<E, powadapt_snap::SnapError>,
    {
        let next_seq = r.u64()?;
        let n = r.seq_len()?;
        let mut entries: Vec<(SimTime, u64)> = Vec::with_capacity(n);
        let mut payloads: Vec<E> = Vec::with_capacity(n);
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for _ in 0..n {
            let at = crate::snapshot::read_time(r)?;
            let seq = r.u64()?;
            if seq >= next_seq {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "event seq {seq} not below next_seq {next_seq}"
                )));
            }
            if !seen.insert(seq) {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "duplicate event seq {seq}"
                )));
            }
            entries.push((at, seq));
            payloads.push(item(r)?);
        }
        self.clear();
        self.next_seq = next_seq;
        // Seqs below next_seq that are not in the snapshot were resolved
        // before it was taken; the recorded ones come back live through
        // the sparse tier, so restore memory never depends on the seq
        // gap a long-lived pending event leaves behind.
        self.flag_base = next_seq;
        self.old_live = seen;
        self.live_len = entries.len();
        for ((at, seq), payload) in entries.into_iter().zip(payloads) {
            self.place(Entry { at, seq, payload });
        }
        Ok(())
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The original `BinaryHeap`-based event queue, kept as the reference
/// kernel for the differential harness and the `kernel_bench` baseline.
///
/// Behavior is identical to [`EventQueue`] — same API, same `(time,
/// insertion-order)` total order, same snapshot byte layout — but
/// `schedule`/`pop` are O(log n) and `cancel` pays two `BTreeSet`
/// operations.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: BTreeSet<u64>,
    /// Seqs scheduled but not yet fired or cancelled.
    live: BTreeSet<u64>,
    next_seq: u64,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            live: BTreeSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns an id usable with
    /// [`HeapQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.live.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    /// Cancellation is lazy: the entry is skipped when it reaches the front.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Timestamp of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the next live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        self.heap.pop().map(|e| {
            self.live.remove(&e.seq);
            (e.at, e.payload)
        })
    }

    /// Removes and returns the next live event only if it fires at or before
    /// `t`.
    pub fn pop_at_or_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self.next_time() {
            Some(at) if at <= t => self.pop(),
            _ => None,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live.clear();
    }

    fn skip_cancelled(&mut self) {
        while let Some(e) = self.heap.peek() {
            if self.cancelled.remove(&e.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Serializes the queue exactly like [`EventQueue::write_state`]:
    /// `next_seq`, then live entries sorted by `(at, seq)`.
    ///
    /// # Errors
    ///
    /// Propagates errors from the payload codec.
    pub fn write_state<F>(
        &self,
        w: &mut powadapt_snap::SnapWriter,
        mut item: F,
    ) -> Result<(), powadapt_snap::SnapError>
    where
        F: FnMut(&mut powadapt_snap::SnapWriter, &E) -> Result<(), powadapt_snap::SnapError>,
    {
        w.u64(self.next_seq);
        let mut live: Vec<&Entry<E>> = self
            .heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .collect();
        live.sort_by_key(|e| (e.at, e.seq));
        w.seq_len(live.len());
        for e in live {
            crate::snapshot::write_time(w, e.at);
            w.u64(e.seq);
            item(w, &e.payload)?;
        }
        Ok(())
    }

    /// Restores state written by [`HeapQueue::write_state`] (or
    /// [`EventQueue::write_state`] — the formats are identical).
    ///
    /// # Errors
    ///
    /// [`SnapError::InvalidValue`](powadapt_snap::SnapError::InvalidValue)
    /// on duplicate or out-of-range sequence numbers, or any error from
    /// the payload codec.
    pub fn read_state<F>(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
        mut item: F,
    ) -> Result<(), powadapt_snap::SnapError>
    where
        F: FnMut(&mut powadapt_snap::SnapReader<'_>) -> Result<E, powadapt_snap::SnapError>,
    {
        let next_seq = r.u64()?;
        let n = r.seq_len()?;
        self.heap.clear();
        self.cancelled.clear();
        self.live.clear();
        for _ in 0..n {
            let at = crate::snapshot::read_time(r)?;
            let seq = r.u64()?;
            if seq >= next_seq {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "event seq {seq} not below next_seq {next_seq}"
                )));
            }
            let payload = item(r)?;
            if !self.live.insert(seq) {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "duplicate event seq {seq}"
                )));
            }
            self.heap.push(Entry { at, seq, payload });
        }
        self.next_seq = next_seq;
        Ok(())
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    // `SnapReader::u32` as a fn path can't satisfy the codec's HRTB
    // (the reader lifetime must stay universally quantified), so the
    // closure clippy calls redundant is in fact required.
    #![allow(clippy::redundant_closure_for_method_calls)]

    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), 3u32);
        q.schedule(SimTime::from_millis(1), 1u32);
        q.schedule(SimTime::from_millis(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        let b = q.schedule(SimTime::from_millis(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(!q.cancel(b), "cancel after fire reports false");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        let id = q.schedule(SimTime::ZERO, ());
        q.pop();
        // An id from a different (imaginary) queue position.
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancel_many_counts_live_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..8u32)
            .map(|i| q.schedule(SimTime::from_millis(u64::from(i)), i))
            .collect();
        assert!(q.cancel(ids[3]));
        q.pop();
        assert_eq!(q.cancel_many(ids.iter().copied()), 6);
        assert!(q.is_empty());
    }

    #[test]
    fn next_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(5), "b");
        q.cancel(a);
        assert_eq!(q.next_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn pop_at_or_before() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(4), "x");
        assert!(q.pop_at_or_before(SimTime::from_millis(3)).is_none());
        assert!(q.pop_at_or_before(SimTime::from_millis(4)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_clear_is_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), 1u32);
        q.clear();
        assert!(!q.cancel(id));
        // Ids allocated after the clear still cancel normally.
        let id2 = q.schedule(SimTime::from_millis(2), 2u32);
        assert!(q.cancel(id2));
    }

    #[test]
    fn overflow_tier_preserves_order_across_the_horizon() {
        // Entries far beyond the ring span exercise the overflow tier and
        // the window jump; interleave near and far schedules.
        let mut q = EventQueue::new();
        let far = SimTime::from_nanos(3 * SPAN);
        q.schedule(far, "far");
        q.schedule(SimTime::from_nanos(10), "near");
        q.schedule(far, "far2");
        assert_eq!(q.pop().map(|(_, e)| e), Some("near"));
        // After the jump the two far entries keep insertion order.
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("far2"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_entry_fires_before_later_near_entry() {
        // Regression for the window-migration invariant: an entry parked
        // in overflow must still fire before a near-tier entry scheduled
        // later (in wall order) but with a later timestamp.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(SPAN + 5), "overflowed");
        // Drain a near entry so the window sweeps forward.
        q.schedule(SimTime::from_nanos(1), "first");
        assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
        // Now the horizon has moved; this lands in a ring bucket even
        // though it fires *after* the overflowed entry.
        q.schedule(SimTime::from_nanos(SPAN + 10), "later");
        assert_eq!(q.pop().map(|(_, e)| e), Some("overflowed"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("later"));
    }

    #[test]
    fn schedule_into_swept_window_still_fires_in_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), "a");
        assert_eq!(q.next_time(), Some(SimTime::from_millis(5)));
        // The sweep has passed t=1; a late schedule there must still fire
        // first.
        q.schedule(SimTime::from_millis(1), "late");
        assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
    }

    #[test]
    fn far_future_saturation_corner() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "end");
        q.schedule(SimTime::from_nanos(u64::MAX - 1), "almost");
        q.schedule(SimTime::MAX, "end2");
        assert_eq!(q.pop().map(|(_, e)| e), Some("almost"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("end"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("end2"));
        assert!(q.pop().is_none());
        // The queue keeps working after the saturated window.
        q.schedule(SimTime::from_millis(1), "again");
        assert_eq!(q.pop().map(|(_, e)| e), Some("again"));
    }

    #[test]
    fn tombstone_compaction_bounds_flag_window() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            let id = q.schedule(SimTime::from_micros(round), round);
            if round % 2 == 0 {
                q.cancel(id);
            } else {
                q.pop();
            }
        }
        assert!(q.is_empty());
        // Every seq resolved in order, so the flag window is empty and
        // fully compacted.
        assert_eq!(q.flags.len(), 0);
        assert_eq!(q.flag_base, q.next_seq);
    }

    #[test]
    fn long_lived_event_spills_flags_instead_of_growing() {
        // One far-future timer pins the oldest live seq while far more
        // events than the dense flag cap resolve behind it: the deque
        // must spill to the sparse tier, not grow one byte per seq.
        let mut q: EventQueue<u32> = EventQueue::new();
        let far_t = SimTime::from_nanos(100 * SPAN);
        let far = q.schedule(far_t, u32::MAX);
        for i in 0..(FLAG_SPILL_MIN as u64 + 1_000) {
            q.schedule(SimTime::from_nanos(i + 1), 0u32);
            assert_eq!(q.pop(), Some((SimTime::from_nanos(i + 1), 0)));
        }
        assert!(
            q.flags.len() <= FLAG_SPILL_MIN,
            "dense flag window grew past the spill cap: {}",
            q.flags.len()
        );
        assert_eq!(q.old_live.len(), 1, "only the straggler is spilled");
        assert_eq!(q.len(), 1);

        // A spilled queue snapshots and restores like any other.
        let mut w = powadapt_snap::SnapWriter::new();
        q.write_state(&mut w, |w, &e| {
            w.u32(e);
            Ok(())
        })
        .unwrap();
        let payload = w.into_payload();
        let mut restored: EventQueue<u32> = EventQueue::new();
        let mut r = powadapt_snap::SnapReader::new(&payload);
        restored.read_state(&mut r, |r| r.u32()).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.pop(), Some((far_t, u32::MAX)));
        assert!(restored.pop().is_none());

        // Cancel semantics survive the spill: once live, then resolved.
        assert!(q.cancel(far));
        assert!(!q.cancel(far));
        assert!(q.pop().is_none());
    }

    #[test]
    fn restore_accepts_unbounded_seq_gap() {
        // A snapshot whose only live entry sits billions of seqs behind
        // next_seq — the shape a multi-day run leaves when one standby
        // timer outlives ~2^40 resolved events — must restore in memory
        // proportional to the live count, not the gap.
        let mut w = powadapt_snap::SnapWriter::new();
        w.u64(1 << 40); // next_seq
        w.seq_len(1);
        crate::snapshot::write_time(&mut w, SimTime::from_millis(5));
        w.u64(3); // live seq, gap of (1 << 40) - 4
        w.u32(99); // payload
        let payload = w.into_payload();
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut r = powadapt_snap::SnapReader::new(&payload);
        q.read_state(&mut r, |r| r.u32()).unwrap();
        r.finish().unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.flags.len(), 0, "restore must not materialize the gap");
        // Fresh ids continue past the snapshot's counter, and the
        // restored entry still fires (and cancels) normally.
        let id = q.schedule(SimTime::from_millis(9), 1);
        assert_eq!(id, EventId(1 << 40));
        assert_eq!(q.pop(), Some((SimTime::from_millis(5), 99)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(9), 1)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn heap_queue_matches_on_basics() {
        let mut q = HeapQueue::new();
        q.schedule(SimTime::from_millis(3), 3u32);
        let id = q.schedule(SimTime::from_millis(1), 1u32);
        q.schedule(SimTime::from_millis(2), 2u32);
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
        assert_eq!(q.len(), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![2, 3]);
    }
}
