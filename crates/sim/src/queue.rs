//! A generic discrete-event queue.
//!
//! Events carry a payload of type `E` and fire in timestamp order. Ties are
//! broken by insertion order so simulations are fully deterministic.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
///
/// Ids are unique within one [`EventQueue`] and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, for ties,
        // first-inserted) entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use powadapt_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "later");
/// q.schedule(SimTime::from_millis(1), "sooner");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t.as_millis(), ev), (1, "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: BTreeSet<u64>,
    /// Seqs scheduled but not yet fired or cancelled.
    live: BTreeSet<u64>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            live: BTreeSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns an id usable with
    /// [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.live.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    /// Cancellation is lazy: the entry is skipped when it reaches the front.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Timestamp of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the next live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        self.heap.pop().map(|e| {
            self.live.remove(&e.seq);
            (e.at, e.payload)
        })
    }

    /// Removes and returns the next live event only if it fires at or before
    /// `t`.
    pub fn pop_at_or_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self.next_time() {
            Some(at) if at <= t => self.pop(),
            _ => None,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live.clear();
    }

    fn skip_cancelled(&mut self) {
        while let Some(e) = self.heap.peek() {
            if self.cancelled.remove(&e.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Serializes the queue's live entries and sequence counter. The
    /// payload codec is supplied by the caller because `E` is theirs.
    ///
    /// `BinaryHeap` iterates in arbitrary order, so entries are emitted
    /// sorted by `(at, seq)` — the queue's own pop order — making the
    /// byte stream deterministic. Cancelled entries are dropped here:
    /// lazy cancellation is an optimization, not observable state.
    /// `next_seq` is preserved exactly so event ids never collide across
    /// a restore.
    ///
    /// # Errors
    ///
    /// Propagates errors from the payload codec.
    pub fn write_state<F>(
        &self,
        w: &mut powadapt_snap::SnapWriter,
        mut item: F,
    ) -> Result<(), powadapt_snap::SnapError>
    where
        F: FnMut(&mut powadapt_snap::SnapWriter, &E) -> Result<(), powadapt_snap::SnapError>,
    {
        w.u64(self.next_seq);
        let mut live: Vec<&Entry<E>> = self
            .heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .collect();
        live.sort_by_key(|e| (e.at, e.seq));
        w.seq_len(live.len());
        for e in live {
            crate::snapshot::write_time(w, e.at);
            w.u64(e.seq);
            item(w, &e.payload)?;
        }
        Ok(())
    }

    /// Replaces the queue's contents with entries from a snapshot written
    /// by [`EventQueue::write_state`], preserving each entry's sequence
    /// number (and therefore every tie-break) exactly.
    ///
    /// # Errors
    ///
    /// [`SnapError::InvalidValue`](powadapt_snap::SnapError::InvalidValue)
    /// on duplicate or out-of-range sequence numbers, or any error from
    /// the payload codec.
    pub fn read_state<F>(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
        mut item: F,
    ) -> Result<(), powadapt_snap::SnapError>
    where
        F: FnMut(&mut powadapt_snap::SnapReader<'_>) -> Result<E, powadapt_snap::SnapError>,
    {
        let next_seq = r.u64()?;
        let n = r.seq_len()?;
        self.heap.clear();
        self.cancelled.clear();
        self.live.clear();
        for _ in 0..n {
            let at = crate::snapshot::read_time(r)?;
            let seq = r.u64()?;
            if seq >= next_seq {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "event seq {seq} not below next_seq {next_seq}"
                )));
            }
            let payload = item(r)?;
            if !self.live.insert(seq) {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "duplicate event seq {seq}"
                )));
            }
            self.heap.push(Entry { at, seq, payload });
        }
        self.next_seq = next_seq;
        Ok(())
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), 3u32);
        q.schedule(SimTime::from_millis(1), 1u32);
        q.schedule(SimTime::from_millis(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        let b = q.schedule(SimTime::from_millis(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(!q.cancel(b), "cancel after fire reports false");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        let id = q.schedule(SimTime::ZERO, ());
        q.pop();
        // An id from a different (imaginary) queue position.
        assert!(!q.cancel(id));
    }

    #[test]
    fn next_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(5), "b");
        q.cancel(a);
        assert_eq!(q.next_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn pop_at_or_before() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(4), "x");
        assert!(q.pop_at_or_before(SimTime::from_millis(3)).is_none());
        assert!(q.pop_at_or_before(SimTime::from_millis(4)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
