//! Constant-time trailing-window averages of a step signal.
//!
//! [`RollingMean`] tracks the mean of a piecewise-constant signal over a
//! fixed trailing window with amortized O(1) updates, unlike
//! [`StepSignal::trailing_mean`](crate::StepSignal::trailing_mean) which
//! scans retained history. Device power-cap governors query this on every
//! scheduling decision, so it must be cheap.
//!
//! Queries must be monotone in time: both [`RollingMean::push`] and
//! [`RollingMean::mean_at`] advance an internal cursor and evict history
//! older than the window.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// Trailing-window mean of a step signal with monotone-time queries.
///
/// # Examples
///
/// ```
/// use powadapt_sim::{RollingMean, SimDuration, SimTime};
///
/// let mut rm = RollingMean::new(SimDuration::from_secs(10), 0.0);
/// rm.push(SimTime::from_secs(1), 10.0);
/// // At t=2s: 1 s at 0 W + 1 s at 10 W over a 2 s history -> 5 W.
/// let m = rm.mean_at(SimTime::from_secs(2));
/// assert!((m - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct RollingMean {
    // powadapt-lint: allow(d6, reason = "window length is configuration; rebuilt from the spec on restore")
    window: SimDuration,
    /// Completed segments `(start, end, value)` inside the window, oldest first.
    segments: VecDeque<(SimTime, SimTime, f64)>,
    /// Sum of `value * seconds` over `segments`.
    area: f64,
    /// Start time and value of the still-open segment.
    open_since: SimTime,
    open_value: f64,
}

impl RollingMean {
    /// Creates a tracker over a trailing `window`, with the signal holding
    /// `initial` from time zero.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration, initial: f64) -> Self {
        assert!(!window.is_zero(), "rolling window must be non-zero");
        RollingMean {
            window,
            segments: VecDeque::new(),
            area: 0.0,
            open_since: SimTime::ZERO,
            open_value: initial,
        }
    }

    /// The window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Current (latest) signal value.
    pub fn current(&self) -> f64 {
        self.open_value
    }

    /// Records that the signal takes value `value` from time `at` onward.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the latest recorded step.
    pub fn push(&mut self, at: SimTime, value: f64) {
        assert!(
            at >= self.open_since,
            "push at {at} precedes open segment start {}",
            self.open_since
        );
        if at > self.open_since {
            let seg = (self.open_since, at, self.open_value);
            self.area += self.open_value * (at - self.open_since).as_secs_f64();
            self.segments.push_back(seg);
        }
        self.open_since = at;
        self.open_value = value;
        self.evict(at);
    }

    /// Mean of the signal over `[now - window, now]` (clamped at time zero).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the latest recorded step.
    pub fn mean_at(&mut self, now: SimTime) -> f64 {
        assert!(
            now >= self.open_since,
            "mean_at {now} precedes open segment start {}",
            self.open_since
        );
        self.evict(now);
        let from = if now.as_nanos() > self.window.as_nanos() {
            now - self.window
        } else {
            SimTime::ZERO
        };
        let span = (now - from).as_secs_f64();
        // powadapt-lint: allow(D3, reason = "exact-zero guard for a degenerate window; span is a finite duration, never NaN")
        if span == 0.0 {
            return self.open_value;
        }
        // Area of completed segments clipped to [from, now] plus the open tail.
        let mut area = self.area;
        // The front segment may straddle `from`; subtract the part before it.
        if let Some(&(s, e, v)) = self.segments.front() {
            if s < from {
                let clipped_end = e.min(from);
                area -= v * (clipped_end - s).as_secs_f64();
            }
        }
        let open_from = self.open_since.max(from);
        area += self.open_value * (now - open_from).as_secs_f64();
        area / span
    }

    /// Mean the window would have at `now` if the signal additionally held
    /// `extra` over the whole window — a cheap upper-bound probe used by cap
    /// governors ("would starting this op keep the average under the cap?").
    pub fn mean_if_added(&mut self, now: SimTime, extra: f64) -> f64 {
        self.mean_at(now) + extra
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = if now.as_nanos() > self.window.as_nanos() {
            now - self.window
        } else {
            return;
        };
        // Drop segments that ended at or before the cutoff.
        while let Some(&(s, e, v)) = self.segments.front() {
            if e <= cutoff {
                self.area -= v * (e - s).as_secs_f64();
                self.segments.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of retained segments (diagnostic).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

// The window length is configuration (rebuilt from the spec); everything
// else — retained segments, the area accumulator, and the open segment —
// is dynamic state. The accumulated `area` is serialized bit-exactly
// rather than recomputed from the segments so restored means match a
// straight run to the last bit.
impl powadapt_snap::Snapshot for RollingMean {
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        w.seq_len(self.segments.len());
        for &(s, e, v) in &self.segments {
            crate::snapshot::write_time(w, s);
            crate::snapshot::write_time(w, e);
            w.f64(v);
        }
        w.f64(self.area);
        crate::snapshot::write_time(w, self.open_since);
        w.f64(self.open_value);
        Ok(())
    }
}

impl powadapt_snap::Restore for RollingMean {
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        let n = r.seq_len()?;
        self.segments.clear();
        for _ in 0..n {
            let s = crate::snapshot::read_time(r)?;
            let e = crate::snapshot::read_time(r)?;
            let v = r.f64()?;
            if e < s {
                return Err(powadapt_snap::SnapError::InvalidValue(format!(
                    "rolling segment ends at {e} before it starts at {s}"
                )));
            }
            self.segments.push_back((s, e, v));
        }
        self.area = r.f64()?;
        self.open_since = crate::snapshot::read_time(r)?;
        self.open_value = r.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn mean_over_partial_history() {
        let mut rm = RollingMean::new(SimDuration::from_secs(10), 2.0);
        assert_eq!(rm.mean_at(SimTime::ZERO), 2.0);
        assert!((rm.mean_at(s(1)) - 2.0).abs() < 1e-12);
        rm.push(s(2), 6.0);
        // At t=4: 2 s at 2 + 2 s at 6 over 4 s -> 4.
        assert!((rm.mean_at(s(4)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn window_clips_old_history() {
        let mut rm = RollingMean::new(SimDuration::from_secs(10), 0.0);
        rm.push(s(5), 10.0);
        // At t=20: window [10, 20] entirely at 10 W.
        assert!((rm.mean_at(s(20)) - 10.0).abs() < 1e-12);
        // At t=14: window [4, 14]: 1 s at 0 + 9 s at 10 -> 9.
        assert!((rm.mean_at(s(14)) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn straddling_front_segment_is_clipped() {
        let mut rm = RollingMean::new(SimDuration::from_secs(4), 8.0);
        rm.push(s(6), 0.0);
        // At t=8: window [4, 8]: 2 s at 8 + 2 s at 0 -> 4.
        assert!((rm.mean_at(s(8)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_bounds_memory() {
        let mut rm = RollingMean::new(SimDuration::from_millis(10), 0.0);
        for i in 0..100_000u64 {
            rm.push(SimTime::from_micros(i * 5), (i % 7) as f64);
        }
        assert!(rm.segment_count() < 3000, "{}", rm.segment_count());
    }

    #[test]
    fn matches_step_signal_reference() {
        use crate::signal::StepSignal;
        let mut rm = RollingMean::new(SimDuration::from_millis(50), 1.0);
        let mut sig = StepSignal::new(1.0);
        let mut rng = crate::rng::SimRng::seed_from(5);
        let mut t = 0u64;
        for _ in 0..500 {
            t += rng.u64_range(1, 2000);
            let v = rng.uniform_range(0.0, 20.0);
            let at = SimTime::from_micros(t);
            rm.push(at, v);
            sig.step(at, v);
            let now = SimTime::from_micros(t + 100);
            let a = rm.mean_at(now);
            let b = sig.trailing_mean(now, SimDuration::from_millis(50));
            assert!((a - b).abs() < 1e-9, "{a} vs {b} at {now}");
        }
    }

    #[test]
    fn mean_if_added_probe() {
        let mut rm = RollingMean::new(SimDuration::from_secs(10), 3.0);
        let m = rm.mean_if_added(s(1), 2.0);
        assert!((m - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "precedes open segment")]
    fn non_monotone_push_panics() {
        let mut rm = RollingMean::new(SimDuration::from_secs(1), 0.0);
        rm.push(s(5), 1.0);
        rm.push(s(4), 2.0);
    }

    #[test]
    fn same_instant_push_replaces_value() {
        let mut rm = RollingMean::new(SimDuration::from_secs(10), 0.0);
        rm.push(s(1), 5.0);
        rm.push(s(1), 7.0);
        assert_eq!(rm.current(), 7.0);
        // At t=2: 1 s at 0 + 1 s at 7 -> 3.5.
        assert!((rm.mean_at(s(2)) - 3.5).abs() < 1e-12);
    }
}
