//! Property-based tests for the simulation kernel.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use proptest::prelude::*;

use powadapt_sim::{EventQueue, RollingMean, SimDuration, SimRng, SimTime, StepSignal, Summary};

proptest! {
    /// Events always pop in non-decreasing time order regardless of the
    /// insertion order.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Events scheduled at identical times preserve insertion order (FIFO).
    #[test]
    fn event_queue_fifo_at_same_time(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_millis(42), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Cancelling a subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation_is_exact(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_nanos(t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            let cancel = cancel_mask.get(*i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(*i);
            }
        }
        let mut got: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Integrating a step signal over adjacent windows is additive.
    #[test]
    fn signal_integration_is_additive(
        steps in prop::collection::vec((1u64..1_000_000, 0.0f64..100.0), 0..50),
        split in 0u64..2_000_000,
    ) {
        let mut sorted = steps.clone();
        sorted.sort_by_key(|&(t, _)| t);
        sorted.dedup_by_key(|&mut (t, _)| t);
        let mut s = StepSignal::new(1.0);
        for &(t, v) in &sorted {
            s.step(SimTime::from_nanos(t), v);
        }
        let end = SimTime::from_nanos(2_000_000);
        let mid = SimTime::from_nanos(split.min(2_000_000));
        let whole = s.integrate(SimTime::ZERO, end);
        let parts = s.integrate(SimTime::ZERO, mid) + s.integrate(mid, end);
        prop_assert!((whole - parts).abs() < 1e-9 * whole.abs().max(1.0));
    }

    /// The trailing mean always lies within [min, max] of the step values
    /// seen so far.
    #[test]
    fn trailing_mean_is_bounded(
        steps in prop::collection::vec((1u64..1_000_000, 0.5f64..50.0), 1..40),
    ) {
        let mut sorted = steps.clone();
        sorted.sort_by_key(|&(t, _)| t);
        sorted.dedup_by_key(|&mut (t, _)| t);
        let initial = 10.0;
        let mut s = StepSignal::new(initial);
        let mut lo = initial;
        let mut hi = initial;
        for &(t, v) in &sorted {
            s.step(SimTime::from_nanos(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let now = SimTime::from_nanos(1_500_000);
        let m = s.trailing_mean(now, SimDuration::from_millis(2));
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "mean {} outside [{}, {}]", m, lo, hi);
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_samples(&samples).unwrap();
        let mut last = s.min();
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(v + 1e-9 >= last, "percentile({}) = {} < {}", p, v, last);
            last = v;
        }
        prop_assert!(s.percentile(100.0) <= s.max() + 1e-9);
    }

    /// Violin bins always partition the full sample set.
    #[test]
    fn violin_bins_partition(
        samples in prop::collection::vec(0.0f64..100.0, 1..300),
        bins in 1usize..32,
    ) {
        let s = Summary::from_samples(&samples).unwrap();
        let (centers, counts) = s.violin_bins(bins);
        prop_assert_eq!(centers.len(), bins);
        prop_assert_eq!(counts.iter().sum::<usize>(), samples.len());
    }

    /// Child streams derived from (root seed, cell index) never collide for
    /// distinct indices — the determinism contract of the parallel sweep
    /// executor, which seeds each cell by its stable index.
    #[test]
    fn stream_seeds_never_collide_for_distinct_indices(
        root in any::<u64>(),
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000_000,
    ) {
        if a != b {
            prop_assert_ne!(SimRng::stream_seed(root, a), SimRng::stream_seed(root, b));
        }
        // And indices far apart in magnitude do not collide either.
        prop_assert_ne!(
            SimRng::stream_seed(root, a),
            SimRng::stream_seed(root, a.wrapping_add(1 << 40))
        );
    }

    /// Stream derivation is a pure function: the same (root, index) always
    /// yields the same generator, producing the same draws across calls.
    #[test]
    fn stream_rngs_are_reproducible_across_calls(
        root in any::<u64>(),
        index in any::<u64>(),
        draws in 1usize..64,
    ) {
        let a: Vec<u64> = {
            let mut r = SimRng::for_stream(root, index);
            (0..draws).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::for_stream(root, index);
            (0..draws).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(a, b);
    }

    /// Sibling streams are statistically independent: the first draws of
    /// adjacent cells share no more than coincidental equality.
    #[test]
    fn sibling_streams_diverge(root in any::<u64>(), index in 0u64..1_000_000) {
        let mut a = SimRng::for_stream(root, index);
        let mut b = SimRng::for_stream(root, index + 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert!(same < 4, "adjacent streams overlapped {} of 32 draws", same);
    }

    /// `stream_seed` is a bijection in the index for any fixed root: every
    /// contiguous window of indices below 2^20 maps to all-distinct seeds.
    /// (The exhaustive 2^20 sweep is pinned separately below.)
    #[test]
    fn stream_seed_windows_below_2_20_are_collision_free(
        root in any::<u64>(),
        base in 0u64..(1u64 << 20) - 4_096,
    ) {
        let mut seeds: Vec<u64> = (base..base + 4_096)
            .map(|i| SimRng::stream_seed(root, i))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), 4_096);
    }

    /// Roots are streams of streams: for a fixed index, distinct roots
    /// never share a seed either (derivation is bijective in the root too).
    #[test]
    fn stream_seed_is_injective_in_the_root(
        index in 0u64..(1u64 << 20),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        if a != b {
            prop_assert_ne!(SimRng::stream_seed(a, index), SimRng::stream_seed(b, index));
        }
    }

    /// `RollingMean` eviction agrees with the scanning reference exactly at
    /// window boundaries. Probing at `edge + window` puts the eviction
    /// cutoff exactly on a retained segment edge — the worst case for an
    /// off-by-one in the `end <= cutoff` drop condition. Probes stay
    /// monotone, as the rolling tracker requires.
    #[test]
    fn rolling_mean_matches_reference_at_exact_window_boundaries(
        window_us in 1u64..200,
        steps in prop::collection::vec((1u64..300, 0.0f64..50.0), 1..80),
    ) {
        let window = SimDuration::from_micros(window_us);
        let mut rm = RollingMean::new(window, 0.0);
        let mut sig = StepSignal::new(0.0);
        let mut t = 0u64;
        for &(dt, v) in &steps {
            let prev = t;
            t += dt;
            let at = SimTime::from_micros(t);
            rm.push(at, v);
            sig.step(at, v);
            // Cutoff exactly on the previous segment's end (when that probe
            // is not already behind the new step), then exactly on the new
            // segment's start.
            for edge in [prev, t] {
                if edge + window_us >= t {
                    let now = SimTime::from_micros(edge + window_us);
                    let a = rm.mean_at(now);
                    let b = sig.trailing_mean(now, window);
                    prop_assert!((a - b).abs() < 1e-9, "{} vs {} at {}", a, b, now);
                }
            }
        }
    }
}

/// Exhaustive bijectivity pin: all 2^20 indices of a root map to distinct
/// seeds. `stream_seed` finishes with a `mix64` of a value that is itself
/// injective in the index, so this holds over the whole `u64` domain; the
/// first 2^20 indices are what parallel sweeps actually consume.
#[test]
fn stream_seed_is_bijective_up_to_2_20() {
    for root in [0u64, 0x9e37_79b9_7f4a_7c15] {
        let mut seeds: Vec<u64> = (0..1u64 << 20)
            .map(|i| SimRng::stream_seed(root, i))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1 << 20, "seed collision under root {root:#x}");
    }
}
