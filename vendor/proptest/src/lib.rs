//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Implements exactly the API surface the `powadapt` test suites use —
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range / tuple /
//! `vec` / `select` / `any::<bool>()` strategies, and
//! [`ProptestConfig`](test_runner::ProptestConfig) — so the workspace
//! builds and tests on machines with no crates-registry access.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with its case index and the
//!   generated arguments; cases are deterministic (seeded from the test's
//!   module path and name), so a failure reproduces on every run.
//! - **No persistence.** `*.proptest-regressions` files are ignored.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.bounded(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.bounded(span + 1) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.uniform() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
}

pub mod arbitrary {
    //! `any::<T>()` for types with a canonical strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec`]: a half-open `[lo, hi)` range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    macro_rules! size_range_from {
        ($($t:ty),*) => {$(
            impl From<::std::ops::Range<$t>> for SizeRange {
                fn from(r: ::std::ops::Range<$t>) -> Self {
                    SizeRange { lo: r.start as usize, hi: r.end as usize }
                }
            }
            impl From<::std::ops::RangeInclusive<$t>> for SizeRange {
                fn from(r: ::std::ops::RangeInclusive<$t>) -> Self {
                    SizeRange { lo: *r.start() as usize, hi: *r.end() as usize + 1 }
                }
            }
        )*};
    }
    size_range_from!(usize, u32, i32);

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.lo < self.len.hi, "empty vec length range");
            let span = (self.len.hi - self.len.lo) as u64;
            let n = self.len.lo + rng.bounded(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values whose length is drawn from
    /// `len` (typically a `usize` range).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.bounded(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Picks uniformly from the given options.
    ///
    /// # Panics
    ///
    /// Panics (on generation) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

pub mod test_runner {
    //! Deterministic case generation and failure reporting.

    use std::fmt;

    /// Run configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed `prop_assert!` within one generated case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-case RNG (splitmix64 over a name+case seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; unbiased via rejection sampling.
        pub fn bounded(&mut self, n: u64) -> u64 {
            assert!(n > 0, "bounded(0)");
            let mask = n.next_power_of_two().wrapping_sub(1);
            loop {
                let v = self.next_u64() & mask;
                if v < n {
                    return v;
                }
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` test, failing the current case
/// (with the generated arguments printed) rather than aborting the process
/// mid-panic-free-path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `fn` runs `cases` times against values
/// drawn from its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let desc = format!("{:?}", ($(&$arg,)*));
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  args: {}",
                        case, cfg.cases, e, desc
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("x", 3);
        let mut b = crate::test_runner::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.0f64..4.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..4.5).contains(&y));
        }

        #[test]
        fn vec_and_select_compose(
            v in prop::collection::vec(0u32..5, 1..10),
            pick in prop::sample::select(vec![10usize, 20, 30]),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert_eq!(pick % 10, 0);
            prop_assert_ne!(flag, !flag);
        }

        #[test]
        fn prop_map_applies(n in (0u64..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 20);
        }
    }
}
