//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, implementing the API surface the `powadapt-bench` benches use:
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], and [`BatchSize`].
//!
//! Measurement is deliberately simple — warm up briefly, then time a fixed
//! number of sample batches with `std::time::Instant` and report the
//! median and mean nanoseconds per iteration on stdout. No statistics
//! beyond that, no HTML reports, no CLI filtering.

use std::time::{Duration, Instant};

/// How batched inputs are grouped between setup calls. Only used to pick
/// the per-batch iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per setup.
    SmallInput,
    /// Large inputs: one iteration per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl BatchSize {
    fn iters_per_batch(self) -> u64 {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            target,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly 1/20 of the measurement target.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target / 20 || n >= 1 << 20 {
                break;
            }
            n *= 2;
        }
        let deadline = Instant::now() + self.target;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / n as f64);
        }
    }

    /// Times `routine` over values produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_batch = size.iters_per_batch();
        let deadline = Instant::now() + self.target;
        while Instant::now() < deadline {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / per_batch as f64);
        }
    }
}

fn report(name: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{name:50} no samples");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:50} median {:>12.1} ns/iter   mean {:>12.1} ns/iter   ({} samples)",
        median,
        mean,
        samples.len()
    );
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// No-op CLI hook kept for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets how long each benchmark is measured for.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.measurement_time);
        body(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Opens a named group; benchmarks in it are prefixed with its name.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// No-op sample-count hint kept for API compatibility (this harness
    /// samples for a fixed wall-clock window instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets how long each benchmark in the group is measured for.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, body);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(10),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_and_routine() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(
            || vec![1u64, 2, 3],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(!b.samples.is_empty());
    }
}
