//! Cross-crate policy validation: the §4 policies' *analytic* predictions
//! (mechanism choice, tiering energetics, domain safety) checked against
//! *measured* simulations of the same scenarios.

use powadapt::core::{
    choose_mechanism, AbsorptionProfile, ConsolidatingRouter, Mechanism, PowerDomain,
    RedirectionConfig, SpinProfile, TieringPolicy,
};
use powadapt::device::{catalog, StorageDevice, GIB, KIB};
use powadapt::io::{
    full_sweep, run_fleet, AccessPattern, Arrivals, LeastLoadedRouter, OpenLoopSpec, SweepScale,
    Workload,
};
use powadapt::meter::PowerRig;
use powadapt::model::PowerThroughputModel;
use powadapt::sim::{SimDuration, SimRng, SimTime};

fn evo_model() -> PowerThroughputModel {
    let factory = || catalog::by_label("860EVO", 31).expect("known label");
    let sweep = full_sweep(
        factory,
        &[Workload::RandRead],
        &[64 * KIB],
        &[1, 8, 32],
        &[powadapt::device::PowerStateId(0)],
        SweepScale {
            runtime: SimDuration::from_millis(300),
            size_limit: GIB,
            ramp: SimDuration::from_millis(80),
        },
        31,
    )
    .expect("sweep runs");
    PowerThroughputModel::from_sweep(&sweep)
        .into_iter()
        .next()
        .expect("single model")
}

#[test]
fn mechanism_prediction_matches_measured_consolidation_savings() {
    // Analytic side: at a demand well below one device's capacity, the §4.1
    // comparison must prefer redirect+standby for a 4-EVO fleet.
    let model = evo_model();
    let demand_bps = 40e6; // 40 MB/s
    let choice = choose_mechanism(&model, 4, demand_bps, 0.17);
    assert_eq!(choice.preferred, Mechanism::RedirectAndStandby);
    let predicted_saving =
        choice.cap_shape_w.expect("feasible") - choice.redirect_w.expect("feasible");
    assert!(predicted_saving > 0.0);

    // Measured side: the consolidating router on real simulated devices
    // must realize a saving of the same sign and magnitude class.
    let spec = OpenLoopSpec {
        arrivals: Arrivals::Poisson { rate_iops: 640.0 }, // 640 * 64 KiB = 40 MiB/s
        block_size: 64 * KIB,
        read_fraction: 1.0,
        pattern: AccessPattern::Random,
        region: (0, 4 * GIB),
        duration: SimDuration::from_millis(1500),
        seed: 31,
        zipf_theta: None,
    };
    let fleet = || -> Vec<Box<dyn StorageDevice>> {
        (0..4)
            .map(|i| Box::new(catalog::evo_860(600 + i)) as Box<dyn StorageDevice>)
            .collect()
    };
    let interval = SimDuration::from_millis(100);
    let baseline = {
        let mut devices = fleet();
        let mut router = LeastLoadedRouter::default();
        run_fleet(&mut devices, &mut router, &spec, interval).expect("runs")
    };
    let consolidated = {
        let cfg = RedirectionConfig {
            per_device_capacity_bps: 0.4e9,
            active_power_w: 2.0,
            standby_power_w: 0.17,
            wake_latency: SimDuration::from_millis(400),
            grow_threshold: 0.85,
            shrink_threshold: 0.6,
        };
        let mut devices = fleet();
        let mut router = ConsolidatingRouter::new(4, cfg).expect("valid");
        run_fleet(&mut devices, &mut router, &spec, interval).expect("runs")
    };
    let measured_saving = baseline.avg_power_w() - consolidated.avg_power_w();
    assert!(
        measured_saving > 0.1,
        "measured saving {measured_saving:.2} W should be clearly positive \
         (baseline {:.2} W, consolidated {:.2} W)",
        baseline.avg_power_w(),
        consolidated.avg_power_w()
    );
}

#[test]
fn tiering_energetics_match_the_simulated_hdd() {
    // Analytic profile taken from the catalog HDD.
    let policy = TieringPolicy::new(
        SpinProfile {
            idle_w: 3.76,
            standby_w: 1.1,
            down: SimDuration::from_millis(1500),
            down_w: 2.5,
            up: SimDuration::from_secs(6),
            up_w: 5.2,
        },
        AbsorptionProfile {
            absorb_bw_bps: 500e6,
            absorb_capacity_bytes: 8 * GIB,
        },
    )
    .expect("valid profiles");

    // Measured: meter a real simulated HDD through a 60 s standby cycle
    // (sleep at t=0, wake so that spin-up completes by t=60).
    let period = SimDuration::from_secs(60);
    let mut dev = catalog::hdd_exos_7e2000(5);
    let mut rng = SimRng::seed_from(5);
    let mut rig = PowerRig::paper_rig(12.0, &mut rng);
    dev.request_standby().expect("idle disk accepts standby");
    let wake_at = SimTime::ZERO + period - SimDuration::from_secs(6);
    let mut woke = false;
    loop {
        let t = rig.next_sample();
        if t >= SimTime::ZERO + period {
            break;
        }
        if !woke && t >= wake_at {
            dev.request_wake().expect("wake accepted");
            woke = true;
        }
        dev.advance_to(t);
        rig.sample(t, dev.power_w());
    }
    let measured_j = rig.trace().energy_j();
    let predicted_j = policy.energy_standby_j(period);
    let err = (measured_j - predicted_j).abs() / predicted_j;
    assert!(
        err < 0.05,
        "standby-cycle energy: measured {measured_j:.1} J vs predicted {predicted_j:.1} J"
    );

    // And the idle side of the comparison.
    let idle_j = policy.energy_idle_j(period);
    assert!((idle_j - 3.76 * 60.0).abs() < 1e-9);
    assert!(policy.savings_j(period) > 0.0);
    assert!(measured_j < idle_j, "the cycle must actually save energy");
}

#[test]
fn domain_safety_checks_catch_an_unsafe_rollout_plan() {
    // A rack populated with the catalog devices, each budgeted at a
    // conservative 16 W worst case (above every measured Table 1 maximum).
    let peaks: Vec<(String, f64)> = ["SSD1", "SSD2", "SSD3", "HDD"]
        .iter()
        .map(|l| {
            let dev = catalog::by_label(l, 1).expect("known label");
            (dev.spec().label().to_string(), 16.0)
        })
        .collect();

    let mut safe_rack = PowerDomain::new("rack-safe", 100.0);
    for (label, peak) in &peaks {
        safe_rack = safe_rack.device(label.clone(), *peak, true);
    }
    let parent = PowerDomain::new("row", 500.0)
        .child(safe_rack.clone())
        .child(safe_rack);
    assert!(parent.check_safety(0.5).is_empty());

    // Same devices behind an undersized breaker: violation.
    let mut hot_rack = PowerDomain::new("rack-hot", 40.0);
    for (label, peak) in &peaks {
        hot_rack = hot_rack.device(label.clone(), *peak, true);
    }
    let violations = hot_rack.check_safety(1.0);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].to_string().contains("breaker"));
}
