//! End-to-end tests spanning every crate: sweep simulated devices with the
//! fio-like engine, build models, hand them to the adaptive controller, and
//! verify the closed loop actually keeps measured fleet power within budget.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use powadapt::core::choose_config;
use powadapt::core::{AdaptiveController, BudgetSchedule, ControlError, PowerEventCause, Slo};
use powadapt::device::{catalog, StandbyState, StorageDevice, GIB, KIB};
use powadapt::io::{full_sweep, run_experiment, JobSpec, SweepScale, Workload};
use powadapt::model::{pareto_frontier, ConfigPoint, LatencyModel, PowerThroughputModel};
use powadapt::sim::{SimDuration, SimTime};

fn sweep_scale() -> SweepScale {
    SweepScale {
        runtime: SimDuration::from_millis(400),
        size_limit: 2 * GIB,
        ramp: SimDuration::from_millis(100),
    }
}

fn model_for(label: &str) -> PowerThroughputModel {
    let factory = || catalog::by_label(label, 11).expect("known label");
    let states: Vec<_> = factory().power_states().iter().map(|d| d.id).collect();
    let sweep = full_sweep(
        factory,
        &[Workload::RandWrite],
        &[64 * KIB, 1024 * KIB],
        &[1, 64],
        &states,
        sweep_scale(),
        11,
    )
    .expect("sweep runs");
    PowerThroughputModel::from_sweep(&sweep)
        .into_iter()
        .next()
        .expect("single device")
}

#[test]
fn measured_models_have_sane_frontiers() {
    for label in ["SSD1", "SSD2", "HDD"] {
        let m = model_for(label);
        assert!(
            m.points().len() >= 4,
            "{label}: {} points",
            m.points().len()
        );
        let frontier = pareto_frontier(m.points());
        assert!(!frontier.is_empty());
        // Frontier is monotone: more power, more throughput.
        for w in frontier.windows(2) {
            assert!(w[0].power_w() < w[1].power_w());
            assert!(w[0].throughput_bps() < w[1].throughput_bps());
        }
        // Every frontier point is a real measured configuration.
        for p in &frontier {
            assert_eq!(p.device(), label);
            assert!(p.power_w() > 0.0 && p.throughput_bps() > 0.0);
        }
    }
}

#[test]
fn controller_tracks_a_budget_schedule_end_to_end() {
    let devices: Vec<Box<dyn StorageDevice>> = vec![
        Box::new(catalog::ssd2_d7_p5510(21)),
        Box::new(catalog::hdd_exos_7e2000(22)),
    ];
    let models = vec![model_for("SSD2"), model_for("HDD")];
    let mut ctl = AdaptiveController::new(devices, models).expect("labels match");

    let mut schedule = BudgetSchedule::new(25.0);
    schedule.push(
        SimTime::from_secs(1),
        12.0,
        PowerEventCause::Oversubscription,
    );
    schedule.push(SimTime::from_secs(2), 25.0, PowerEventCause::Recovery);

    // Initial budget: everything can run at full power.
    let plan = ctl.apply_budget(schedule.initial_w()).expect("feasible");
    assert!(plan.expected_power_w <= 25.0);

    // Emergency: 12 W forces the HDD into standby and the SSD down-state.
    let plan = ctl
        .apply_budget(schedule.budget_at(SimTime::from_secs(1)))
        .expect("feasible with standby");
    assert!(plan.expected_power_w <= 12.0);
    assert!(
        plan.actions.iter().any(|(label, a)| label == "HDD"
            && matches!(a, powadapt::core::DeviceAction::Standby { .. })),
        "HDD should sleep under 12 W: {plan}"
    );

    // Recovery: back to full throughput.
    let plan = ctl
        .apply_budget(schedule.budget_at(SimTime::from_secs(3)))
        .expect("feasible");
    assert!(plan.expected_throughput_bps > 1.0e9);
}

#[test]
fn applied_plan_is_honored_by_the_real_devices() {
    // Apply a tight budget, then actually run the advised workload on the
    // SSD and check the *measured* power obeys the plan.
    let devices: Vec<Box<dyn StorageDevice>> = vec![Box::new(catalog::ssd2_d7_p5510(31))];
    let model = model_for("SSD2");
    let mut ctl = AdaptiveController::new(devices, vec![model]).expect("labels match");

    let budget = 11.0;
    let plan = ctl.apply_budget(budget).expect("feasible");
    let advised = match &plan.actions[0].1 {
        powadapt::core::DeviceAction::Operate(p) => p.clone(),
        other => panic!("expected an operate action, got {other:?}"),
    };

    let mut devices = ctl.into_devices();
    let dev = devices[0].as_mut();
    let job = JobSpec::new(advised.workload())
        .block_size(advised.chunk())
        .io_depth(advised.depth())
        .runtime(SimDuration::from_millis(600))
        .size_limit(2 * GIB)
        .ramp(SimDuration::from_millis(150))
        .seed(31);
    let r = run_experiment(dev, &job).expect("job runs");
    assert!(
        r.avg_power_w() <= budget * 1.05,
        "measured {:.2} W exceeds the {budget} W budget",
        r.avg_power_w()
    );
    assert!(
        r.io.throughput_bps() > 0.5 * advised.throughput_bps(),
        "throughput {:.0} far below the model's {:.0}",
        r.io.throughput_bps(),
        advised.throughput_bps()
    );
}

#[test]
fn slo_constrained_selection_respects_both_axes() {
    let model = model_for("SSD2");
    let slo = Slo::new().min_throughput_bps(0.2e9);
    let choice = choose_config(&model, 11.0, &slo).expect("feasible");
    assert!(choice.power_w() <= 11.0);
    assert!(choice.throughput_bps() >= 0.2e9);

    // An impossible SLO under the same budget.
    let greedy = Slo::new().min_throughput_bps(50e9);
    assert!(choose_config(&model, 11.0, &greedy).is_none());
}

#[test]
fn latency_model_from_a_real_sweep_reproduces_the_cap_blowup() {
    // Sweep SSD2 randwrite at QD1 across two states; the latency model
    // built from the measurements must show the ps2 tail blowup.
    let factory = || catalog::by_label("SSD2", 13).expect("known label");
    let sweep = full_sweep(
        factory,
        &[Workload::RandWrite],
        &[256 * KIB, 2048 * KIB],
        &[1],
        &[
            powadapt::device::PowerStateId(0),
            powadapt::device::PowerStateId(2),
        ],
        SweepScale {
            runtime: SimDuration::from_millis(600),
            size_limit: 2 * GIB,
            ramp: SimDuration::from_millis(120),
        },
        13,
    )
    .expect("sweep runs");
    let points: Vec<ConfigPoint> = sweep.iter().map(ConfigPoint::from).collect();
    let model = LatencyModel::from_points(points).expect("latencies measured");

    let worst = model
        .max_p99_ratio_vs(
            powadapt::device::PowerStateId(0),
            powadapt::device::PowerStateId(2),
        )
        .expect("matched shapes");
    assert!(
        worst > 2.0,
        "capping should blow up the measured tail (got {worst:.2}x)"
    );

    // The SLO solver picks a cap-compliant point when the tail budget is
    // loose, and refuses when it is tighter than physics allows.
    let base_p99 = model
        .points()
        .iter()
        .map(powadapt::model::ConfigPoint::p99_latency_us)
        .fold(f64::INFINITY, f64::min);
    assert!(model.min_power_within(base_p99 * 0.5, 0.0).is_none());
    let ok = model
        .min_power_within(f64::INFINITY, 0.0)
        .expect("anything qualifies");
    let cheapest = model
        .points()
        .iter()
        .map(powadapt::model::ConfigPoint::power_w)
        .fold(f64::INFINITY, f64::min);
    assert!((ok.power_w() - cheapest).abs() < 1e-9);
}

#[test]
fn infeasible_budgets_surface_the_floor() {
    let devices: Vec<Box<dyn StorageDevice>> = vec![Box::new(catalog::ssd2_d7_p5510(41))];
    let mut ctl = AdaptiveController::new(devices, vec![model_for("SSD2")]).unwrap();
    match ctl.apply_budget(1.0) {
        Err(ControlError::Infeasible { floor_w, .. }) => {
            assert!(floor_w > 1.0, "floor {floor_w}");
        }
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn standby_fleet_member_wakes_on_io() {
    // A device the controller put to sleep still serves IO (auto-wake),
    // paying the wake latency — the §4 redirection trade-off.
    let mut hdd = catalog::hdd_exos_7e2000(51);
    hdd.request_standby().expect("idle disk sleeps");
    while let Some(t) = hdd.next_event() {
        hdd.advance_to(t);
    }
    assert_eq!(hdd.standby_state(), StandbyState::Standby);

    let job = JobSpec::new(Workload::RandRead)
        .block_size(4 * KIB)
        .io_depth(1)
        .runtime(SimDuration::from_secs(30))
        .size_limit(64 * KIB)
        .seed(51);
    let r = run_experiment(&mut hdd, &job).expect("job runs");
    assert!(r.io.ios() > 0);
    assert!(
        r.io.latency_summary().expect("has latencies").max() > 5e6,
        "first IO pays multi-second spin-up"
    );
}
