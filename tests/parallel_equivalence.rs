//! Parallel-equivalence regression suite: every figure's summary must be
//! byte-identical to its committed golden fixture, and identical at 1, 2,
//! and 8 workers. This pins the determinism contract of the work-stealing
//! sweep executor — results depend only on `(root seed, cell index)`, never
//! on worker count or scheduling.
//!
//! Fixtures live in `crates/bench/goldens/`. After an intentional change to
//! the device models, the runner, or a figure, regenerate them with
//! `cargo run -p powadapt-bench --bin regen_goldens` and commit the diff.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::fs;
use std::time::Instant;

use powadapt::device::{catalog, FaultInjector, FaultPlan, StorageDevice, KIB, MIB};
use powadapt::io::{run_cells, run_fresh, JobSpec, ParallelConfig, SweepScale, Workload};
use powadapt::sim::{SimDuration, SimRng, SimTime};
use powadapt_bench::figures::fig10;
use powadapt_bench::golden::{figure_summary, golden_scale, goldens_dir, GOLDEN_SEED};
use powadapt_device::PowerStateId;

fn committed_fixture(name: &str) -> String {
    let path = goldens_dir().join(format!("{name}.json"));
    fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             regenerate with: cargo run -p powadapt-bench --bin regen_goldens",
            path.display()
        )
    })
}

fn assert_figure_equivalence(name: &str) {
    let scale = golden_scale();
    let seq = figure_summary(name, scale, GOLDEN_SEED, &ParallelConfig::sequential());
    assert_eq!(
        seq,
        committed_fixture(name),
        "{name}: summary drifted from the committed golden fixture.\n\
         If the change is intentional, regenerate the fixtures with\n\
         `cargo run -p powadapt-bench --bin regen_goldens` and commit them."
    );
    for workers in [2usize, 8] {
        let par = figure_summary(
            name,
            scale,
            GOLDEN_SEED,
            &ParallelConfig::with_workers(workers),
        );
        assert_eq!(
            seq, par,
            "{name}: parallel summary diverged from sequential at {workers} workers"
        );
    }
}

macro_rules! golden_figure_test {
    ($($test:ident => $name:literal),+ $(,)?) => {
        $(
            #[test]
            fn $test() {
                assert_figure_equivalence($name);
            }
        )+
    };
}

golden_figure_test! {
    table1_matches_golden_at_every_worker_count => "table1",
    fig2_matches_golden_at_every_worker_count => "fig2",
    fig3_matches_golden_at_every_worker_count => "fig3",
    fig4_matches_golden_at_every_worker_count => "fig4",
    fig5_matches_golden_at_every_worker_count => "fig5",
    fig6_matches_golden_at_every_worker_count => "fig6",
    fig7_matches_golden_at_every_worker_count => "fig7",
    fig8_matches_golden_at_every_worker_count => "fig8",
    fig9_matches_golden_at_every_worker_count => "fig9",
    fig10_matches_golden_at_every_worker_count => "fig10",
}

/// The cluster evaluation cells obey the same executor contract as the
/// figure sweeps: a `ClusterReport` depends only on `(policy, seed)`, never
/// on worker count. The byte-level golden comparison (with tracing on)
/// lives in `tests/obs_determinism.rs` because it installs the global
/// recorder; this test is recorder-free and additionally pins the ISSUE's
/// headline bar — the model-driven selector sustains >= 1.3x the aggregate
/// throughput of the naive uniform-cap baseline without violating any cap.
#[test]
fn cluster_eval_reports_are_worker_count_invariant() {
    use powadapt::cluster::{oversubscribed_cluster, run_cluster, ClusterReport, SelectionPolicy};

    let cells: Vec<(SelectionPolicy, u64)> = [GOLDEN_SEED, GOLDEN_SEED + 1]
        .iter()
        .flat_map(|&s| {
            [
                (SelectionPolicy::ModelDriven, s),
                (SelectionPolicy::UniformStatic, s),
            ]
        })
        .collect();
    let sweep = |workers: usize| -> Vec<ClusterReport> {
        run_cells(
            &cells,
            &ParallelConfig::with_workers(workers),
            |_, &(policy, seed)| run_cluster(oversubscribed_cluster(policy, seed)).unwrap(),
        )
    };
    let seq = sweep(1);
    for workers in [2usize, 8] {
        assert_eq!(
            seq,
            sweep(workers),
            "cluster reports diverged at {workers} workers"
        );
    }
    for pair in seq.chunks(2) {
        let (model, uniform) = (&pair[0], &pair[1]);
        assert!(model.caps_respected() && uniform.caps_respected());
        let win = model.aggregate_throughput_bps() / uniform.aggregate_throughput_bps();
        assert!(
            win >= 1.3,
            "model-driven selector won only {win:.2}x over the uniform baseline"
        );
    }
}

/// Fault schedules are part of the determinism contract: a sweep over
/// fault-injected devices — including a cell whose device drops out and
/// fails the experiment — produces identical outcomes (results *and*
/// errors) at every worker count.
#[test]
fn fault_injection_is_deterministic_under_parallelism() {
    // Cells 0..4 vary the latency-spike rate; cell 4 hits a dropout window
    // and must fail identically everywhere.
    let cells: Vec<u64> = (0..5).collect();
    let sweep = |workers: usize| -> Vec<Result<(u64, u64, u64, u64), String>> {
        run_cells(
            &cells,
            &ParallelConfig::with_workers(workers),
            |i, &cell| {
                let plan = if cell == 4 {
                    FaultPlan::none().dropout(SimTime::from_millis(10), SimTime::from_millis(500))
                } else {
                    FaultPlan::none()
                        .latency_spikes(0.05 + 0.05 * cell as f64, SimDuration::from_millis(2))
                };
                let injector_seed = SimRng::stream_seed(7, i as u64);
                let factory = || {
                    Box::new(FaultInjector::seeded(
                        Box::new(catalog::ssd3_d3_p4510(9)),
                        plan.clone(),
                        injector_seed,
                    )) as Box<dyn StorageDevice>
                };
                let job = JobSpec::new(Workload::RandRead)
                    .block_size(16 * KIB)
                    .io_depth(8)
                    .runtime(SimDuration::from_millis(60))
                    .size_limit(64 * MIB)
                    .ramp(SimDuration::from_millis(10))
                    .seed(SimRng::stream_seed(7, i as u64));
                run_fresh(factory, PowerStateId(0), &job)
                    .map(|r| {
                        let power_bits = r.power.samples().iter().fold(0u64, |acc, w| {
                            acc.wrapping_mul(31).wrapping_add(w.to_bits())
                        });
                        (
                            r.io.ios(),
                            r.io.bytes(),
                            power_bits,
                            r.io.p99_latency_us().to_bits(),
                        )
                    })
                    .map_err(|e| e.to_string())
            },
        )
    };
    let seq = sweep(1);
    assert!(
        seq[4].is_err(),
        "dropout cell should fail the experiment deterministically"
    );
    assert!(seq[..4].iter().all(std::result::Result::is_ok));
    for workers in [2, 8] {
        assert_eq!(
            seq,
            sweep(workers),
            "fault schedule diverged at {workers} workers"
        );
    }
}

/// On multi-core hosts the executor must actually pay off: the ISSUE's
/// acceptance bar is >= 2x on the figure sweeps at 4 workers. Single-core
/// runners (where threads cannot overlap) only check that parallel
/// execution is not pathologically slower.
#[test]
fn parallel_sweep_speedup_on_multicore_hosts() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let scale = SweepScale {
        runtime: SimDuration::from_millis(40),
        size_limit: 4 * powadapt::device::GIB,
        ramp: SimDuration::from_millis(10),
    };
    // Warm-up pass so allocator and page-cache effects don't skew the
    // sequential baseline.
    let _ = fig10::device_sweep_with("SSD2", scale, 5, &ParallelConfig::sequential());

    let t0 = Instant::now();
    let seq = fig10::device_sweep_with("SSD2", scale, 5, &ParallelConfig::sequential());
    let sequential = t0.elapsed();

    let workers = cores.clamp(2, 8);
    let t1 = Instant::now();
    let par = fig10::device_sweep_with("SSD2", scale, 5, &ParallelConfig::with_workers(workers));
    let parallel = t1.elapsed();

    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(
            a.result.avg_power_w().to_bits(),
            b.result.avg_power_w().to_bits()
        );
    }

    if cores >= 4 {
        assert!(
            parallel.as_secs_f64() * 2.0 <= sequential.as_secs_f64(),
            "expected >= 2x speedup with {workers} workers on {cores} cores: \
             sequential {sequential:?}, parallel {parallel:?}"
        );
    } else {
        assert!(
            parallel.as_secs_f64() <= sequential.as_secs_f64() * 3.0,
            "parallel run pathologically slow on {cores} core(s): \
             sequential {sequential:?}, parallel {parallel:?}"
        );
    }
}
