//! Property: a fault schedule is part of the experiment, so two runs with
//! the same seeds and the same [`FaultPlan`] must be bit-for-bit
//! identical — fault injection must never smuggle nondeterminism into a
//! measurement.

use proptest::prelude::*;

use powadapt::device::{catalog, FaultInjector, FaultPlan, StorageDevice};
use powadapt::io::{
    run_fleet, AccessPattern, Arrivals, BreakerConfig, CircuitBreakerRouter, FleetResult,
    LeastLoadedRouter, OpenLoopSpec,
};
use powadapt::sim::{SimDuration, SimTime};

const GIB: u64 = 1 << 30;

fn run_once(
    fleet_size: usize,
    fault_seed: u64,
    stream_seed: u64,
    io_error_rate: f64,
    spike_rate: f64,
    dropout_from_ms: u64,
    dropout_len_ms: u64,
) -> FleetResult {
    let plan = FaultPlan::none()
        .io_errors(io_error_rate)
        .latency_spikes(spike_rate, SimDuration::from_millis(25))
        .dropout(
            SimTime::from_millis(dropout_from_ms),
            SimTime::from_millis(dropout_from_ms + dropout_len_ms),
        );
    let mut devices: Vec<Box<dyn StorageDevice>> = (0..fleet_size)
        .map(|i| {
            let inner = Box::new(catalog::ssd3_d3_p4510(10 + i as u64));
            // Only device 0 is faulted; the rest absorb the failover.
            let p = if i == 0 {
                plan.clone()
            } else {
                FaultPlan::none()
            };
            Box::new(FaultInjector::seeded(inner, p, fault_seed ^ i as u64))
                as Box<dyn StorageDevice>
        })
        .collect();
    let mut router =
        CircuitBreakerRouter::new(LeastLoadedRouter::default(), BreakerConfig::default());
    let spec = OpenLoopSpec {
        arrivals: Arrivals::Poisson { rate_iops: 1_500.0 },
        block_size: 64 * 1024,
        read_fraction: 0.6,
        pattern: AccessPattern::Random,
        region: (0, 4 * GIB),
        duration: SimDuration::from_millis(200),
        seed: stream_seed,
        zipf_theta: None,
    };
    run_fleet(
        &mut devices,
        &mut router,
        &spec,
        SimDuration::from_millis(20),
    )
    .expect("fault-injected run completes")
}

/// Everything observable about a run, in comparable form.
fn fingerprint(r: &FleetResult) -> (u64, u64, u64, u64, u64, u64, usize) {
    (
        r.total.ios(),
        r.total.bytes(),
        r.energy_j.to_bits(),
        r.io_errors,
        r.dropped,
        r.command_errors,
        r.power.len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn same_seed_and_plan_reproduce_the_fleet_result(
        fleet_size in 1usize..4,
        fault_seed in 0u64..1_000,
        stream_seed in 0u64..1_000,
        io_error_rate in 0.0f64..0.4,
        spike_rate in 0.0f64..0.4,
        dropout_from_ms in 0u64..150,
        dropout_len_ms in 1u64..80,
    ) {
        let a = run_once(
            fleet_size, fault_seed, stream_seed,
            io_error_rate, spike_rate, dropout_from_ms, dropout_len_ms,
        );
        let b = run_once(
            fleet_size, fault_seed, stream_seed,
            io_error_rate, spike_rate, dropout_from_ms, dropout_len_ms,
        );
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn fault_seed_changes_the_fault_stream_not_the_arrivals(
        stream_seed in 0u64..1_000,
    ) {
        // Heavy probabilistic faults with two different fault seeds: the
        // arrival process is untouched, so served + dropped is invariant.
        let a = run_once(2, 1, stream_seed, 0.5, 0.0, 0, 1);
        let b = run_once(2, 2, stream_seed, 0.5, 0.0, 0, 1);
        prop_assert_eq!(a.total.ios() + a.dropped, b.total.ios() + b.dropped);
    }
}
