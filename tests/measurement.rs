//! Measurement-infrastructure claims (§3 of the paper): sub-10 ms sampling
//! period, sub-1 % relative error, and correct behaviour of the full
//! device → shunt → amplifier → ADC → trace pipeline.

use powadapt::device::{catalog, StorageDevice};
use powadapt::meter::{MeasurementChain, PowerRig, DEFAULT_PERIOD};
use powadapt::sim::{relative_error, SimDuration, SimRng, SimTime};

#[test]
fn sampling_period_is_sub_10ms_as_claimed() {
    // The paper claims "a sub-10 ms period"; the rig samples at 1 kHz.
    assert!(DEFAULT_PERIOD < SimDuration::from_millis(10));
    assert_eq!(DEFAULT_PERIOD, SimDuration::from_millis(1));
}

#[test]
fn chain_error_stays_under_one_percent_across_device_range() {
    // Across the power levels of Table 1 (0.35 W idle to 15.1 W active),
    // averaged readings stay within 1 % of the truth for any rig instance.
    // Low-power SATA devices are instrumented on their 5 V rail (larger
    // shunt signal); NVMe devices on the 12 V rail — as in the paper's rig.
    for rig_seed in 0..10u64 {
        let mut build = SimRng::seed_from(rig_seed);
        let sata = MeasurementChain::paper_rig(5.0, &mut build);
        let nvme = MeasurementChain::paper_rig(12.0, &mut build);
        let mut sample = SimRng::seed_from(rig_seed ^ 0xffff);
        let cases = [
            (&sata, 0.35),
            (&sata, 1.1),
            (&sata, 3.76),
            (&nvme, 8.19),
            (&nvme, 15.1),
        ];
        for (chain, truth) in cases {
            let avg: f64 = (0..300)
                .map(|_| chain.measure(truth, &mut sample))
                .sum::<f64>()
                / 300.0;
            assert!(
                relative_error(avg, truth) < 0.01,
                "rig {rig_seed}: {truth} W read as {avg:.4} W"
            );
        }
    }
}

#[test]
fn metered_idle_device_reads_its_true_floor() {
    // Full pipeline on a real (simulated) device sitting idle.
    let mut dev = catalog::ssd2_d7_p5510(1);
    let mut rng = SimRng::seed_from(9);
    let mut rig = PowerRig::paper_rig(12.0, &mut rng);
    for _ in 0..500 {
        let t = rig.next_sample();
        dev.advance_to(t);
        rig.sample(t, dev.power_w());
    }
    let mean = rig.trace().mean();
    assert!(
        relative_error(mean, 5.0) < 0.01,
        "idle SSD2 floor read as {mean:.3} W"
    );
}

#[test]
fn trace_captures_millisecond_scale_steps() {
    // A power step between two samples is visible at the next sample — the
    // paper's point about needing ms-scale sampling to see device dynamics.
    let mut dev = catalog::hdd_exos_7e2000(2);
    let mut rng = SimRng::seed_from(10);
    let mut rig = PowerRig::paper_rig(12.0, &mut rng);
    // Idle for 20 ms, then request standby (spin-down power changes).
    let mut requested = false;
    for i in 0..100 {
        let t = rig.next_sample();
        if i == 20 && !requested {
            dev.request_standby().expect("idle disk accepts standby");
            requested = true;
        }
        dev.advance_to(t);
        rig.sample(t, dev.power_w());
    }
    let trace = rig.trace();
    let before = trace.samples()[10];
    let after = trace.samples()[40];
    assert!((before - 3.76).abs() < 0.1, "pre-transition {before}");
    assert!((after - 2.5).abs() < 0.1, "spin-down power {after}");
}

#[test]
fn calibration_survives_device_level_noise() {
    let mut rng = SimRng::seed_from(12);
    let mut rig = PowerRig::paper_rig(12.0, &mut rng);
    rig.calibrate(10.0, 400);
    let mut dev = catalog::ssd2_d7_p5510(3);
    rig.restart_at(SimTime::ZERO);
    for _ in 0..300 {
        let t = rig.next_sample();
        dev.advance_to(t);
        rig.sample(t, dev.power_w());
    }
    assert!(relative_error(rig.trace().mean(), 5.0) < 0.005);
}

#[test]
fn alpm_ladder_partial_and_slumber_are_both_measurable() {
    use powadapt::device::{AhciLink, LinkPowerState};

    // Measure each rung of the EVO's ALPM ladder through the metering rig:
    // PARTIAL saves less than SLUMBER but recovers orders of magnitude
    // faster — the trade the paper's §3.2.2 ladder exists to offer.
    let measure_floor = |state: LinkPowerState, rig_seed: u64| {
        let mut dev = catalog::evo_860(5);
        let mut link = AhciLink::new(&mut dev).expect("SATA device");
        link.set_link_pm(state).expect("EVO implements the ladder");
        assert_eq!(link.link_state(), state);
        let mut rng = SimRng::seed_from(rig_seed);
        let mut rig = PowerRig::paper_rig(5.0, &mut rng);
        // Floor levels sit at the bottom of the ADC range, so calibrate
        // against a known load first, as the rig tests do (§3.1).
        rig.calibrate(0.25, 400);
        // Let the transition finish (SLUMBER entry takes 300 ms), then
        // sample the settled floor.
        dev.advance_to(SimTime::from_millis(500));
        assert_eq!(dev.standby_state(), powadapt::device::StandbyState::Standby);
        rig.restart_at(dev.now());
        for _ in 0..300 {
            let t = rig.next_sample();
            dev.advance_to(t);
            rig.sample(t, dev.power_w());
        }
        rig.trace().mean()
    };

    let partial = measure_floor(LinkPowerState::Partial, 21);
    let slumber = measure_floor(LinkPowerState::Slumber, 22);
    assert!(
        relative_error(partial, 0.26) < 0.01,
        "PARTIAL floor read as {partial:.4} W"
    );
    assert!(
        relative_error(slumber, 0.17) < 0.01,
        "SLUMBER floor read as {slumber:.4} W"
    );
    assert!(slumber < partial, "SLUMBER is the deeper rung");
}

#[test]
fn dynamic_range_of_a_trace_matches_device_behaviour() {
    use powadapt::device::{IoId, IoKind, IoRequest, MIB};
    let mut dev = catalog::ssd2_d7_p5510(4);
    let mut rng = SimRng::seed_from(13);
    let mut rig = PowerRig::paper_rig(12.0, &mut rng);
    // 100 ms idle, then a write burst, then idle again.
    let mut id = 0u64;
    for i in 0..400 {
        let t = rig.next_sample();
        if i == 100 {
            for _ in 0..8 {
                dev.submit(IoRequest::new(
                    IoId(id),
                    IoKind::Write,
                    id * 8 * MIB,
                    8 * MIB,
                ))
                .expect("valid request");
                id += 1;
            }
        }
        dev.advance_to(t);
        rig.sample(t, dev.power_w());
    }
    let range = rig.trace().dynamic_range().expect("non-empty");
    assert!(
        range > 0.4,
        "idle->burst trace should show a wide dynamic range, got {range:.3}"
    );
}
