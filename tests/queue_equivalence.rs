//! Differential equivalence harness for the sim kernel's event queues.
//!
//! The calendar-bucket [`EventQueue`] is a drop-in replacement for the
//! binary-heap [`HeapQueue`] reference kernel. This harness drives both
//! with the same randomized schedule/cancel/pop scripts and asserts they
//! are observationally identical: every returned `(time, id, payload)`,
//! every cancel verdict, every `next_time`/`len` probe, and every
//! serialized snapshot byte. Scripts deliberately span the calendar
//! queue's tiers — the sorted active run, the bucket ring, the far
//! overflow map, and the `u64::MAX` saturation corner — so tier
//! transitions (window advances, overflow migration, refills) are
//! exercised against an implementation that has none of them.

// The payload-codec closures `|r| r.u32()` are not replaceable with the
// method path: `SnapReader::u32` is monomorphic in the reader's lifetime
// and fails the higher-ranked `FnMut` bound that a closure satisfies.
#![allow(clippy::unwrap_used, clippy::redundant_closure_for_method_calls)]

use powadapt::sim::{EventId, EventQueue, HeapQueue, SimTime};
use powadapt::snap::{SnapReader, SnapWriter};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Mirror of the calendar queue's near-tier span (bucket count x width).
/// Scripts use multiples of this so ops land in every tier.
const SPAN: u64 = 256 << 16;

/// One op applied identically to both queues. Decoded from a
/// `(selector, raw)` pair so proptest scripts stay shrink-free flat data.
fn op_name(sel: u8) -> &'static str {
    match sel {
        0..=2 => "schedule-near",
        3 => "schedule-tie",
        4 => "schedule-overflow",
        5 => "schedule-saturated",
        6..=8 => "pop",
        9 => "pop-at-or-before",
        10 | 11 => "cancel",
        12 => "cancel-reschedule",
        _ => "probe",
    }
}

/// The calendar queue and the heap reference, driven in lockstep.
struct Pair {
    cal: EventQueue<u32>,
    heap: HeapQueue<u32>,
    /// Every id ever returned by `schedule`, with the time it was
    /// scheduled at. Cancel ops index into this, so popped and
    /// already-cancelled ids get re-cancelled regularly.
    ids: Vec<(EventId, u64)>,
    next_payload: u32,
}

impl Pair {
    fn new() -> Self {
        Pair {
            cal: EventQueue::new(),
            heap: HeapQueue::new(),
            ids: Vec::new(),
            next_payload: 0,
        }
    }

    fn schedule(&mut self, t: u64) -> Result<(), TestCaseError> {
        let at = SimTime::from_nanos(t);
        let p = self.next_payload;
        self.next_payload += 1;
        let a = self.cal.schedule(at, p);
        let b = self.heap.schedule(at, p);
        // Ids are the tie-break: both kernels must hand out the same one.
        prop_assert_eq!(a, b, "schedule id diverged at t={}", t);
        self.ids.push((a, t));
        Ok(())
    }

    fn apply(&mut self, sel: u8, raw: u64) -> Result<(), TestCaseError> {
        match sel {
            // Near tier: inside (or just past) the initial calendar window.
            0..=2 => self.schedule(raw % (2 * SPAN))?,
            // Same-time bursts: forces FIFO tie-breaks through the id.
            3 => self.schedule((raw % 8) * 1_000)?,
            // Far future: lands in the overflow map, migrates inward later.
            4 => self.schedule(3 * SPAN + raw % (50 * SPAN))?,
            // Saturation corner: windows near SimTime's representable max.
            5 => self.schedule(u64::MAX - raw % 4_096)?,
            6..=8 => {
                let (a, b) = (self.cal.pop(), self.heap.pop());
                prop_assert_eq!(a, b, "pop diverged");
            }
            9 => {
                let t = SimTime::from_nanos(raw % (4 * SPAN));
                let (a, b) = (self.cal.pop_at_or_before(t), self.heap.pop_at_or_before(t));
                prop_assert_eq!(a, b, "pop_at_or_before({}) diverged", t);
            }
            10 | 11 => {
                if !self.ids.is_empty() {
                    let (id, t) = self.ids[(raw as usize) % self.ids.len()];
                    let (a, b) = (self.cal.cancel(id), self.heap.cancel(id));
                    prop_assert_eq!(a, b, "cancel of {:?} (t={}) diverged", id, t);
                }
            }
            12 => {
                // Cancel-then-reschedule at the exact same instant: the
                // replacement must sort after survivors at that time.
                if !self.ids.is_empty() {
                    let (id, t) = self.ids[(raw as usize) % self.ids.len()];
                    let (a, b) = (self.cal.cancel(id), self.heap.cancel(id));
                    prop_assert_eq!(a, b, "cancel before reschedule diverged");
                    self.schedule(t)?;
                }
            }
            _ => {
                prop_assert_eq!(self.cal.next_time(), self.heap.next_time());
                prop_assert_eq!(self.cal.len(), self.heap.len());
                prop_assert_eq!(self.cal.is_empty(), self.heap.is_empty());
            }
        }
        Ok(())
    }

    fn run(&mut self, ops: &[(u8, u64)]) -> Result<(), TestCaseError> {
        for &(sel, raw) in ops {
            self.apply(sel, raw)
                .map_err(|e| TestCaseError::fail(format!("{} ({}): {e}", op_name(sel), raw)))?;
        }
        Ok(())
    }

    /// Pops both queues dry, checking each step, and verifies both agree
    /// they are empty afterwards.
    fn drain(&mut self) -> Result<(), TestCaseError> {
        loop {
            prop_assert_eq!(self.cal.next_time(), self.heap.next_time());
            let (a, b) = (self.cal.pop(), self.heap.pop());
            prop_assert_eq!(a, b, "drain pop diverged");
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(self.cal.len(), 0usize);
        prop_assert_eq!(self.heap.len(), 0usize);
        Ok(())
    }
}

fn snap_cal(q: &EventQueue<u32>) -> Vec<u8> {
    let mut w = SnapWriter::new();
    q.write_state(&mut w, |w, p| {
        w.u32(*p);
        Ok(())
    })
    .unwrap();
    w.into_payload()
}

fn snap_heap(q: &HeapQueue<u32>) -> Vec<u8> {
    let mut w = SnapWriter::new();
    q.write_state(&mut w, |w, p| {
        w.u32(*p);
        Ok(())
    })
    .unwrap();
    w.into_payload()
}

fn restore_cal(bytes: &[u8]) -> EventQueue<u32> {
    let mut q = EventQueue::new();
    let mut r = SnapReader::new(bytes);
    q.read_state(&mut r, |r| r.u32()).unwrap();
    r.finish().unwrap();
    q
}

fn restore_heap(bytes: &[u8]) -> HeapQueue<u32> {
    let mut q = HeapQueue::new();
    let mut r = SnapReader::new(bytes);
    q.read_state(&mut r, |r| r.u32()).unwrap();
    r.finish().unwrap();
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// The core differential property: any schedule/cancel/pop script
    /// observed through the calendar queue is indistinguishable from the
    /// heap reference, including a full drain at the end.
    #[test]
    fn calendar_queue_matches_heap_reference(
        ops in prop::collection::vec((0u8..16, any::<u64>()), 1..120),
    ) {
        let mut pair = Pair::new();
        pair.run(&ops)?;
        pair.drain()?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Mid-flight snapshots round-trip through `powadapt-snap`: bytes
    /// written by the calendar queue equal bytes written by the heap
    /// reference at the same logical state, restore into either kernel,
    /// and the restored pair stays equivalent to the original pair under
    /// a continued script.
    #[test]
    fn snapshot_roundtrip_preserves_equivalence(
        pre in prop::collection::vec((0u8..16, any::<u64>()), 1..80),
        post in prop::collection::vec((0u8..16, any::<u64>()), 1..60),
    ) {
        let mut pair = Pair::new();
        pair.run(&pre)?;

        // Both kernels serialize the same logical state to the same bytes,
        // no matter how differently they lay it out in memory.
        let bytes = snap_cal(&pair.cal);
        prop_assert_eq!(&bytes, &snap_heap(&pair.heap), "snapshot bytes diverged");

        // Restore into both kernels and continue the script on the
        // restored pair and the original pair in lockstep.
        let mut restored = Pair {
            cal: restore_cal(&bytes),
            heap: restore_heap(&bytes),
            ids: pair.ids.clone(),
            next_payload: pair.next_payload,
        };
        // A re-snapshot of the restored queue is byte-identical: the
        // serialized form depends only on logical state, not on bucket
        // layout or tombstone history.
        prop_assert_eq!(&bytes, &snap_cal(&restored.cal), "re-snapshot bytes drifted");

        pair.run(&post)?;
        restored.run(&post)?;

        // The four queues must now agree pairwise on the full remainder.
        loop {
            let orig = pair.cal.pop();
            prop_assert_eq!(orig, pair.heap.pop());
            prop_assert_eq!(orig, restored.cal.pop());
            prop_assert_eq!(orig, restored.heap.pop());
            if orig.is_none() {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic cancellation edge cases (each asserted on BOTH kernels).
// ---------------------------------------------------------------------------

#[test]
fn cancel_after_pop_is_false_in_both() {
    let mut pair = Pair::new();
    pair.schedule(100).unwrap();
    pair.schedule(200).unwrap();
    let (popped_id, _) = pair.ids[0];
    assert_eq!(pair.cal.pop(), Some((SimTime::from_nanos(100), 0)));
    assert_eq!(pair.heap.pop(), Some((SimTime::from_nanos(100), 0)));
    assert!(
        !pair.cal.cancel(popped_id),
        "calendar cancelled a fired event"
    );
    assert!(!pair.heap.cancel(popped_id), "heap cancelled a fired event");
    // The survivor is still cancellable exactly once.
    let (live_id, _) = pair.ids[1];
    assert!(pair.cal.cancel(live_id));
    assert!(pair.heap.cancel(live_id));
}

#[test]
fn double_cancel_is_false_in_both() {
    let mut pair = Pair::new();
    pair.schedule(5_000).unwrap();
    let (id, _) = pair.ids[0];
    assert!(pair.cal.cancel(id));
    assert!(pair.heap.cancel(id));
    assert!(!pair.cal.cancel(id), "calendar double-cancel returned true");
    assert!(!pair.heap.cancel(id), "heap double-cancel returned true");
    assert!(pair.cal.pop().is_none());
    assert!(pair.heap.pop().is_none());
}

#[test]
fn cancel_then_reschedule_same_instant_keeps_fifo() {
    // Three events at one instant; the middle one is cancelled and a
    // replacement scheduled at the same time. Replacements get fresh ids,
    // so both kernels must order: first, third, replacement.
    let mut pair = Pair::new();
    let t = 7_777u64;
    pair.schedule(t).unwrap(); // payload 0
    pair.schedule(t).unwrap(); // payload 1 (cancelled below)
    pair.schedule(t).unwrap(); // payload 2
    let (victim, _) = pair.ids[1];
    assert!(pair.cal.cancel(victim));
    assert!(pair.heap.cancel(victim));
    pair.schedule(t).unwrap(); // payload 3, same instant
    let at = SimTime::from_nanos(t);
    for expect in [0u32, 2, 3] {
        assert_eq!(pair.cal.pop(), Some((at, expect)));
        assert_eq!(pair.heap.pop(), Some((at, expect)));
    }
    assert!(pair.cal.pop().is_none());
    assert!(pair.heap.pop().is_none());
}

#[test]
fn cancel_storm_with_tombstone_compaction_matches() {
    // Heavy lazy-cancellation load: schedule a long run, cancel all but
    // every 97th, and interleave pops so the calendar queue's tombstone
    // window compacts while the heap does exact removal. Streams must be
    // identical throughout, across near, overflow, and tie-heavy times.
    let mut pair = Pair::new();
    for i in 0..10_000u64 {
        let t = match i % 3 {
            0 => (i * 131) % (2 * SPAN),
            1 => 3 * SPAN + (i * 977) % (20 * SPAN),
            _ => (i % 5) * 10_000,
        };
        pair.schedule(t).unwrap();
    }
    let ids: Vec<(EventId, u64)> = pair.ids.clone();
    for (k, &(id, _)) in ids.iter().enumerate() {
        if k % 97 != 0 {
            assert_eq!(pair.cal.cancel(id), pair.heap.cancel(id));
        }
        if k % 400 == 0 {
            assert_eq!(pair.cal.pop(), pair.heap.pop());
        }
    }
    pair.drain().unwrap();
}

// ---------------------------------------------------------------------------
// Snapshot byte-order regression pins.
// ---------------------------------------------------------------------------

/// Pins the serialized layout: `next_seq`, live count, then each live
/// entry as `(time, id, payload)` sorted by `(time, id)` — regardless of
/// which tier (active run / bucket ring / overflow) holds the entry and
/// regardless of tombstones. A layout change here breaks every committed
/// checkpoint, so this test spells the bytes out by hand.
#[test]
fn snapshot_byte_layout_is_pinned() {
    let mut q: EventQueue<u32> = EventQueue::new();
    let a = q.schedule(SimTime::from_nanos(500), 7); // seq 0, cancelled below
    let _ = q.schedule(SimTime::from_nanos(200), 9); // seq 1
    let _ = q.schedule(SimTime::from_nanos(200), 11); // seq 2, ties with seq 1
    let far = 3 * SPAN; // seq 3, overflow tier
    let _ = q.schedule(SimTime::from_nanos(far), 13);
    assert!(q.cancel(a));

    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&4u64.to_le_bytes()); // next_seq
    expect.extend_from_slice(&3u64.to_le_bytes()); // live entry count
    for (t, seq, payload) in [(200u64, 1u64, 9u32), (200, 2, 11), (far, 3, 13)] {
        expect.extend_from_slice(&t.to_le_bytes());
        expect.extend_from_slice(&seq.to_le_bytes());
        expect.extend_from_slice(&payload.to_le_bytes());
    }
    assert_eq!(
        snap_cal(&q),
        expect,
        "calendar snapshot bytes changed layout"
    );

    // The heap reference emits the exact same bytes for the same history.
    let mut h: HeapQueue<u32> = HeapQueue::new();
    let a = h.schedule(SimTime::from_nanos(500), 7);
    let _ = h.schedule(SimTime::from_nanos(200), 9);
    let _ = h.schedule(SimTime::from_nanos(200), 11);
    let _ = h.schedule(SimTime::from_nanos(far), 13);
    assert!(h.cancel(a));
    assert_eq!(snap_heap(&h), expect, "heap snapshot bytes changed layout");
}

/// Bytes depend only on logical state, not bucket alignment: a queue whose
/// window has advanced across several buckets (scattering survivors over
/// the active run, the ring, and overflow) serializes identically to a
/// fresh queue restored from those bytes, whose layout starts from zero.
#[test]
fn snapshot_bytes_stable_across_bucket_layouts() {
    let mut q: EventQueue<u32> = EventQueue::new();
    // Survivors across all tiers plus tombstones, then pops that advance
    // the calendar window so the physical layout is mid-revolution.
    for i in 0..500u64 {
        q.schedule(SimTime::from_nanos(i * 40_000), i as u32);
    }
    let far = q.schedule(SimTime::from_nanos(10 * SPAN), 9_000);
    q.schedule(SimTime::from_nanos(11 * SPAN), 9_001);
    for _ in 0..200 {
        q.pop();
    }
    assert!(q.cancel(far));
    let bytes = snap_cal(&q);

    let restored = restore_cal(&bytes);
    assert_eq!(
        snap_cal(&restored),
        bytes,
        "snapshot bytes depend on bucket layout"
    );
    let heap = restore_heap(&bytes);
    assert_eq!(
        snap_heap(&heap),
        bytes,
        "heap re-encode of calendar snapshot drifted"
    );
}
