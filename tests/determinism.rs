//! Reproducibility: identical seeds give bit-identical experiments across
//! the whole stack (device + meter + engine); different seeds differ.

use powadapt::device::{catalog, GIB, KIB};
use powadapt::io::{run_experiment, ExperimentResult, JobSpec, Workload};
use powadapt::sim::SimDuration;

fn experiment(device_seed: u64, job_seed: u64) -> ExperimentResult {
    let mut dev = catalog::ssd2_d7_p5510(device_seed);
    let job = JobSpec::new(Workload::RandWrite)
        .block_size(64 * KIB)
        .io_depth(16)
        .runtime(SimDuration::from_millis(300))
        .size_limit(GIB)
        .ramp(SimDuration::from_millis(50))
        .seed(job_seed);
    run_experiment(&mut dev, &job).expect("experiment runs")
}

fn fingerprint(r: &ExperimentResult) -> (u64, u64, usize, u64) {
    // Hash-free exact fingerprint: counts plus bit patterns of the floats.
    let power_bits = r.power.samples().iter().fold(0u64, |acc, w| {
        acc.wrapping_mul(31).wrapping_add(w.to_bits())
    });
    (r.io.ios(), r.io.bytes(), r.power.len(), power_bits)
}

#[test]
fn identical_seeds_are_bit_identical() {
    let a = experiment(7, 99);
    let b = experiment(7, 99);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(
        a.io.avg_latency_us().to_bits(),
        b.io.avg_latency_us().to_bits()
    );
    assert_eq!(a.avg_power_w().to_bits(), b.avg_power_w().to_bits());
}

#[test]
fn different_device_seeds_change_only_noise() {
    let a = experiment(7, 99);
    let b = experiment(8, 99);
    // The workload is identical, so IO accounting matches...
    assert_eq!(a.io.ios(), b.io.ios());
    assert_eq!(a.io.bytes(), b.io.bytes());
    // ...but the power noise stream differs.
    assert_ne!(fingerprint(&a).3, fingerprint(&b).3);
    // While staying statistically close.
    assert!((a.avg_power_w() - b.avg_power_w()).abs() < 0.5);
}

#[test]
fn different_job_seeds_change_the_offset_stream() {
    let a = experiment(7, 99);
    let b = experiment(7, 100);
    // Random offsets differ; aggregate behaviour stays close.
    assert!((a.io.throughput_mibs() - b.io.throughput_mibs()).abs() / a.io.throughput_mibs() < 0.1);
    assert_ne!(fingerprint(&a).3, fingerprint(&b).3);
}

#[test]
fn hdd_runs_are_reproducible_too() {
    let run = || {
        let mut dev = catalog::hdd_exos_7e2000(3);
        let job = JobSpec::new(Workload::RandRead)
            .block_size(4 * KIB)
            .io_depth(8)
            .runtime(SimDuration::from_millis(500))
            .size_limit(GIB)
            .seed(3);
        let r = run_experiment(&mut dev, &job).expect("experiment runs");
        (fingerprint(&r), r.io.p99_latency_us().to_bits())
    };
    assert_eq!(run(), run());
}
