//! Reproducibility: identical seeds give bit-identical experiments across
//! the whole stack (device + meter + engine); different seeds differ.

use powadapt::device::{catalog, FaultInjector, FaultPlan, StorageDevice, GIB, KIB};
use powadapt::io::{
    run_experiment, run_fleet, AccessPattern, Arrivals, BreakerConfig, CircuitBreakerRouter,
    ExperimentResult, JobSpec, LeastLoadedRouter, OpenLoopSpec, Workload,
};
use powadapt::sim::{SimDuration, SimTime};

fn experiment(device_seed: u64, job_seed: u64) -> ExperimentResult {
    let mut dev = catalog::ssd2_d7_p5510(device_seed);
    let job = JobSpec::new(Workload::RandWrite)
        .block_size(64 * KIB)
        .io_depth(16)
        .runtime(SimDuration::from_millis(300))
        .size_limit(GIB)
        .ramp(SimDuration::from_millis(50))
        .seed(job_seed);
    run_experiment(&mut dev, &job).expect("experiment runs")
}

fn fingerprint(r: &ExperimentResult) -> (u64, u64, usize, u64) {
    // Hash-free exact fingerprint: counts plus bit patterns of the floats.
    let power_bits = r.power.samples().iter().fold(0u64, |acc, w| {
        acc.wrapping_mul(31).wrapping_add(w.to_bits())
    });
    (r.io.ios(), r.io.bytes(), r.power.len(), power_bits)
}

#[test]
fn identical_seeds_are_bit_identical() {
    let a = experiment(7, 99);
    let b = experiment(7, 99);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(
        a.io.avg_latency_us().to_bits(),
        b.io.avg_latency_us().to_bits()
    );
    assert_eq!(a.avg_power_w().to_bits(), b.avg_power_w().to_bits());
}

#[test]
fn different_device_seeds_change_only_noise() {
    let a = experiment(7, 99);
    let b = experiment(8, 99);
    // The workload is identical, so IO accounting matches...
    assert_eq!(a.io.ios(), b.io.ios());
    assert_eq!(a.io.bytes(), b.io.bytes());
    // ...but the power noise stream differs.
    assert_ne!(fingerprint(&a).3, fingerprint(&b).3);
    // While staying statistically close.
    assert!((a.avg_power_w() - b.avg_power_w()).abs() < 0.5);
}

#[test]
fn different_job_seeds_change_the_offset_stream() {
    let a = experiment(7, 99);
    let b = experiment(7, 100);
    // Random offsets differ; aggregate behaviour stays close.
    assert!((a.io.throughput_mibs() - b.io.throughput_mibs()).abs() / a.io.throughput_mibs() < 0.1);
    assert_ne!(fingerprint(&a).3, fingerprint(&b).3);
}

#[test]
fn fleet_runs_are_bit_identical_across_runs() {
    // A full fleet scenario — Poisson arrivals, least-loaded routing behind
    // a circuit breaker, and a fault injector dropping device 0 mid-run —
    // must replay bit-identically: same IoStats, same power-trace checksum.
    let run = || {
        let mut devices: Vec<Box<dyn StorageDevice>> = (0..4)
            .map(|i| {
                let inner = Box::new(catalog::ssd3_d3_p4510(50 + i));
                let plan = if i == 0 {
                    FaultPlan::none()
                        .io_errors(0.01)
                        .dropout(SimTime::from_millis(150), SimTime::from_millis(350))
                } else {
                    FaultPlan::none()
                };
                Box::new(FaultInjector::seeded(inner, plan, 40 + i)) as Box<dyn StorageDevice>
            })
            .collect();
        let cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_millis(100),
            probe_successes: 2,
        };
        let mut router = CircuitBreakerRouter::new(LeastLoadedRouter::default(), cfg);
        let spec = OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: 6_000.0 },
            block_size: 64 * KIB,
            read_fraction: 0.7,
            pattern: AccessPattern::Random,
            region: (0, GIB),
            duration: SimDuration::from_millis(600),
            seed: 21,
            zipf_theta: None,
        };
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(20),
        )
        .expect("fleet runs");
        let power_bits = r.power.samples().iter().fold(0u64, |acc, w| {
            acc.wrapping_mul(31).wrapping_add(w.to_bits())
        });
        (
            (r.total.ios(), r.total.bytes(), r.dropped, r.io_errors),
            (r.reads.ios(), r.writes.ios()),
            (r.power.len(), power_bits, r.energy_j.to_bits()),
        )
    };
    let a = run();
    assert_eq!(a, run());
    // The scenario must actually exercise the fault path to be a meaningful
    // determinism witness.
    assert!(a.0 .3 > 0, "fault injector produced no IO errors");
}

#[test]
fn hdd_runs_are_reproducible_too() {
    let run = || {
        let mut dev = catalog::hdd_exos_7e2000(3);
        let job = JobSpec::new(Workload::RandRead)
            .block_size(4 * KIB)
            .io_depth(8)
            .runtime(SimDuration::from_millis(500))
            .size_limit(GIB)
            .seed(3);
        let r = run_experiment(&mut dev, &job).expect("experiment runs");
        (fingerprint(&r), r.io.p99_latency_us().to_bits())
    };
    assert_eq!(run(), run());
}
