//! Shape assertions for every table and figure of the paper.
//!
//! The simulated testbed cannot match the authors' absolute numbers, but
//! the *shape* of each result — who wins, by roughly what factor, where the
//! trade-offs bite — must hold. Each test encodes one figure's claims with
//! tolerances; `EXPERIMENTS.md` records exact measured values from the full
//! harness.

use powadapt::device::{catalog, PowerStateId, StorageDevice, GIB, KIB, MIB};
use powadapt::io::{run_fresh, JobSpec, SweepScale, Workload};
use powadapt::sim::SimDuration;

/// The test scale: long enough for steady state, short enough for CI.
fn scale() -> SweepScale {
    SweepScale {
        runtime: SimDuration::from_millis(700),
        size_limit: 4 * GIB,
        ramp: SimDuration::from_millis(150),
    }
}

fn job(w: Workload, chunk: u64, depth: usize) -> JobSpec {
    let s = scale();
    JobSpec::new(w)
        .block_size(chunk)
        .io_depth(depth)
        .runtime(s.runtime)
        .size_limit(s.size_limit)
        .ramp(s.ramp)
        .seed(1234)
}

fn run(label: &str, ps: u8, j: &JobSpec) -> powadapt::io::ExperimentResult {
    run_fresh(
        || catalog::by_label(label, 77).expect("known label"),
        PowerStateId(ps),
        j,
    )
    .expect("experiment runs")
}

// ---------------------------------------------------------------- Table 1

#[test]
fn table1_idle_floors_match_paper() {
    // The paper's measured minima: SSD1 3.5, SSD2 5, SSD3 1, HDD ~1 (standby).
    assert!((catalog::ssd1_pm9a3(1).power_w() - 3.5).abs() < 0.1);
    assert!((catalog::ssd2_d7_p5510(1).power_w() - 5.0).abs() < 0.1);
    assert!((catalog::ssd3_d3_p4510(1).power_w() - 1.0).abs() < 0.1);
    assert!((catalog::hdd_exos_7e2000(1).power_w() - 3.76).abs() < 0.1);
}

#[test]
fn table1_power_ranges_are_in_band() {
    // Peak measured power within ±25 % of the paper's maxima.
    let cases = [
        ("SSD1", 13.5, Workload::SeqWrite),
        ("SSD2", 15.1, Workload::SeqWrite),
        ("SSD3", 3.5, Workload::SeqWrite),
        ("HDD", 5.3, Workload::RandRead),
    ];
    for (label, paper_max, w) in cases {
        let r = run(label, 0, &job(w, 2 * MIB, 64));
        let measured = r.power.summary().expect("trace non-empty").max();
        assert!(
            (measured - paper_max).abs() / paper_max < 0.25,
            "{label}: measured max {measured:.1} W vs paper {paper_max} W"
        );
    }
}

// ----------------------------------------------------------------- Fig 2

#[test]
fn fig2_traces_show_ms_scale_variability_and_median_tracks_mean() {
    // SSD1 under randwrite 256 KiB QD64: substantial instantaneous
    // variability at millisecond resolution (the reason the paper built a
    // 1 kHz rig), with median and mean nearly overlapping for the steadier
    // devices.
    let r = run("SSD1", 0, &job(Workload::RandWrite, 256 * KIB, 64));
    let s = r.power.summary().expect("trace non-empty");
    assert!(
        s.max() - s.min() > 2.0,
        "SSD1 instantaneous power should swing by watts (saw {:.2}-{:.2})",
        s.min(),
        s.max()
    );
    // The trace's extremes differ from its mean: instantaneous != average
    // (the paper's Fig. 2 vs Fig. 3 point).
    assert!(s.max() > s.mean() * 1.1);

    // SSD2 is saturated under the same workload: tight distribution with
    // median ~ mean.
    let r = run("SSD2", 0, &job(Workload::RandWrite, 256 * KIB, 64));
    let s = r.power.summary().expect("trace non-empty");
    assert!(
        (s.median() - s.mean()).abs() / s.mean() < 0.05,
        "median {:.2} vs mean {:.2}",
        s.median(),
        s.mean()
    );
}

// ------------------------------------------------------------- Figs 3 & 4

#[test]
fn fig3_power_caps_hold_under_heavy_writes() {
    for (ps, cap) in [(1u8, 12.0), (2u8, 10.0)] {
        let r = run("SSD2", ps, &job(Workload::RandWrite, 256 * KIB, 64));
        let avg = r.avg_power_w();
        assert!(
            avg <= cap * 1.05,
            "ps{ps}: average {avg:.2} W exceeds the {cap} W cap"
        );
        assert!(
            avg >= cap * 0.75,
            "ps{ps}: average {avg:.2} W — the cap should bind, not starve"
        );
    }
}

#[test]
fn fig3_power_rises_with_chunk_size() {
    let small = run("SSD2", 0, &job(Workload::RandWrite, 4 * KIB, 64));
    let large = run("SSD2", 0, &job(Workload::RandWrite, 2 * MIB, 64));
    assert!(
        large.avg_power_w() > small.avg_power_w() * 1.1,
        "2 MiB ({:.1} W) should clearly out-draw 4 KiB ({:.1} W)",
        large.avg_power_w(),
        small.avg_power_w()
    );
}

#[test]
fn fig4_caps_throttle_writes_much_more_than_reads() {
    let w0 = run("SSD2", 0, &job(Workload::SeqWrite, 2 * MIB, 64));
    let w1 = run("SSD2", 1, &job(Workload::SeqWrite, 2 * MIB, 64));
    let w2 = run("SSD2", 2, &job(Workload::SeqWrite, 2 * MIB, 64));
    let r0 = run("SSD2", 0, &job(Workload::SeqRead, 2 * MIB, 64));
    let r2 = run("SSD2", 2, &job(Workload::SeqRead, 2 * MIB, 64));

    let w1_ratio = w1.io.throughput_mibs() / w0.io.throughput_mibs();
    let w2_ratio = w2.io.throughput_mibs() / w0.io.throughput_mibs();
    // Paper: 74 % and 55 %. Accept a generous band around those.
    assert!(
        (0.55..=0.85).contains(&w1_ratio),
        "seq write ps1/ps0 = {w1_ratio:.2} (paper ~0.74)"
    );
    assert!(
        (0.35..=0.65).contains(&w2_ratio),
        "seq write ps2/ps0 = {w2_ratio:.2} (paper ~0.55)"
    );
    assert!(w2_ratio < w1_ratio, "deeper caps cut deeper");

    let read_ratio = r2.io.throughput_mibs() / r0.io.throughput_mibs();
    assert!(
        read_ratio > 0.92,
        "seq read ps2/ps0 = {read_ratio:.2}; the paper reports a minimal drop"
    );
}

// ------------------------------------------------------------- Figs 5 & 6

#[test]
fn fig5_capped_write_latency_degrades_with_tail_blowup() {
    // Large chunks at QD1 create enough load for the ps2 cap to bite.
    let base = run("SSD2", 0, &job(Workload::RandWrite, 2 * MIB, 1));
    let capped = run("SSD2", 2, &job(Workload::RandWrite, 2 * MIB, 1));
    let avg_ratio = capped.io.avg_latency_us() / base.io.avg_latency_us();
    assert!(
        (1.3..=3.0).contains(&avg_ratio),
        "avg latency ratio {avg_ratio:.2} (paper: up to ~2x)"
    );

    let base = run("SSD2", 0, &job(Workload::RandWrite, 256 * KIB, 1));
    let capped = run("SSD2", 2, &job(Workload::RandWrite, 256 * KIB, 1));
    let p99_ratio = capped.io.p99_latency_us() / base.io.p99_latency_us();
    assert!(
        (2.5..=12.0).contains(&p99_ratio),
        "p99 latency ratio {p99_ratio:.2} (paper: up to 6.19x)"
    );
}

#[test]
fn fig6_read_latency_is_immune_to_caps_at_qd1() {
    for chunk in [4 * KIB, 256 * KIB, 2 * MIB] {
        let base = run("SSD2", 0, &job(Workload::RandRead, chunk, 1));
        let capped = run("SSD2", 2, &job(Workload::RandRead, chunk, 1));
        let avg_dev = (capped.io.avg_latency_us() / base.io.avg_latency_us() - 1.0).abs();
        let p99_dev = (capped.io.p99_latency_us() / base.io.p99_latency_us() - 1.0).abs();
        assert!(
            avg_dev < 0.05 && p99_dev < 0.05,
            "chunk {chunk}: read latency moved (avg {avg_dev:.3}, p99 {p99_dev:.3})"
        );
    }
}

// ----------------------------------------------------------------- Fig 7

#[test]
fn fig7_evo_standby_halves_idle_power_within_half_a_second() {
    let mut evo = catalog::evo_860(5);
    let idle = evo.power_w();
    assert!((idle - 0.35).abs() < 0.02, "idle {idle}");
    let t0 = evo.now();
    evo.request_standby().expect("idle device accepts standby");
    while let Some(t) = evo.next_event() {
        evo.advance_to(t);
    }
    let took = evo.now().duration_since(t0);
    assert!(
        took <= SimDuration::from_millis(500),
        "EVO transitions within 0.5 s (took {took})"
    );
    let slumber = evo.power_w();
    assert!((slumber - 0.17).abs() < 0.02, "SLUMBER {slumber}");
    assert!(slumber < idle / 2.0 + 0.01, "standby halves idle power");
}

#[test]
fn fig7_hdd_spin_cycle_matches_paper_energetics() {
    let mut hdd = catalog::hdd_exos_7e2000(5);
    let idle = hdd.power_w();
    hdd.request_standby().expect("idle disk accepts standby");
    while let Some(t) = hdd.next_event() {
        hdd.advance_to(t);
    }
    let standby = hdd.power_w();
    // Paper: 1.1 W standby vs 3.76 W idle — saves 2.66 W.
    assert!((standby - 1.1).abs() < 0.05, "standby {standby}");
    assert!(
        (idle - standby - 2.66).abs() < 0.15,
        "saving {}",
        idle - standby
    );

    // IO against the sleeping disk pays the multi-second spin-up.
    use powadapt::device::{IoId, IoKind, IoRequest};
    hdd.submit(IoRequest::new(IoId(0), IoKind::Read, GIB, 4 * KIB))
        .expect("valid request");
    let done = powadapt::device::drain(&mut hdd);
    assert!(
        done[0].latency() >= SimDuration::from_secs(5),
        "spin-up dominates: {}",
        done[0].latency()
    );
}

// ------------------------------------------------------------- Figs 8 & 9

#[test]
fn fig8_small_chunks_trade_throughput_for_power() {
    for label in ["SSD1", "SSD2"] {
        let small = run(label, 0, &job(Workload::RandWrite, 4 * KIB, 64));
        let large = run(label, 0, &job(Workload::RandWrite, 2 * MIB, 64));
        let power_ratio = small.avg_power_w() / large.avg_power_w();
        let thr_ratio = small.io.throughput_mibs() / large.io.throughput_mibs();
        assert!(
            (0.6..=0.95).contains(&power_ratio),
            "{label}: 4K power ratio {power_ratio:.2} (paper: up to 30% less)"
        );
        assert!(
            (0.15..=0.6).contains(&thr_ratio),
            "{label}: 4K throughput ratio {thr_ratio:.2} (paper: ~50% loss)"
        );
    }
}

#[test]
fn fig9_queue_depth_one_saves_power_but_starves_throughput() {
    for label in ["SSD1", "SSD2", "SSD3"] {
        let qd1 = run(label, 0, &job(Workload::RandRead, 4 * KIB, 1));
        let qd64 = run(label, 0, &job(Workload::RandRead, 4 * KIB, 64));
        let power_ratio = qd1.avg_power_w() / qd64.avg_power_w();
        let thr_ratio = qd1.io.throughput_mibs() / qd64.io.throughput_mibs();
        assert!(
            (0.4..=0.85).contains(&power_ratio),
            "{label}: QD1 power ratio {power_ratio:.2} (paper: up to 40% less)"
        );
        assert!(
            thr_ratio < 0.15,
            "{label}: QD1 throughput ratio {thr_ratio:.2} (paper: may be only ~10%)"
        );
    }
}

// ---------------------------------------------------------- Fig 10 / §3.3

#[test]
fn fig10_ssd1_operating_point_matches_the_case_study() {
    let r = run("SSD1", 0, &job(Workload::RandWrite, 256 * KIB, 64));
    let gib = r.io.throughput_bps() / GIB as f64;
    // Paper: 3.3 GiB/s at 8.19 W.
    assert!((gib - 3.3).abs() < 0.35, "throughput {gib:.2} GiB/s");
    assert!(
        (r.avg_power_w() - 8.19).abs() < 1.0,
        "power {:.2} W",
        r.avg_power_w()
    );

    // The QD1 shape: roughly -40 % throughput for -20 % power.
    let q1 = run("SSD1", 0, &job(Workload::RandWrite, 256 * KIB, 1));
    let thr_ratio = q1.io.throughput_bps() / r.io.throughput_bps();
    let pow_ratio = q1.avg_power_w() / r.avg_power_w();
    assert!(
        (0.5..=0.75).contains(&thr_ratio),
        "QD1 throughput ratio {thr_ratio:.2}"
    );
    assert!(
        (0.7..=0.9).contains(&pow_ratio),
        "QD1 power ratio {pow_ratio:.2}"
    );
}

#[test]
fn fig10_ssd2_dynamic_range_is_near_paper_headline() {
    // A reduced sweep spanning the extremes of the full Figure 10 grid.
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for (ps, chunk, depth) in [
        (0u8, 2 * MIB, 64),
        (0, 4 * KIB, 1),
        (2, 4 * KIB, 1),
        (2, 2 * MIB, 64),
        (1, 256 * KIB, 16),
    ] {
        let r = run("SSD2", ps, &job(Workload::RandWrite, chunk, depth));
        lo = lo.min(r.avg_power_w());
        hi = hi.max(r.avg_power_w());
    }
    let range = (hi - lo) / hi;
    // Paper: 59.4 % of max power.
    assert!(
        (0.45..=0.75).contains(&range),
        "SSD2 dynamic range {range:.3} (paper 0.594)"
    );
}

#[test]
fn fig10_hdd_throughput_collapses_at_the_bottom_of_the_model() {
    let best = run("HDD", 0, &job(Workload::RandWrite, 2 * MIB, 64));
    let worst = run("HDD", 0, &job(Workload::RandWrite, 4 * KIB, 1));
    let ratio = worst.io.throughput_mibs() / best.io.throughput_mibs();
    // Paper: "throughput can drop to 4% of the maximum".
    assert!(
        ratio < 0.08,
        "HDD worst/best throughput {ratio:.3} (paper ~0.04)"
    );
}
