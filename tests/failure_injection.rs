//! Failure injection: the control plane must degrade loudly, not wedge,
//! when devices reject commands mid-flight — the §4.1 transition-safety
//! concern ("local failures of the storage system to control power can
//! safely be identified").
//!
//! Faults come from [`FaultInjector`] wrapping real catalog devices, so
//! these tests exercise the same device models the rest of the suite
//! measures — no bespoke mocks.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use powadapt::core::{AdaptiveController, ControlError, RetryPolicy};
use powadapt::device::{catalog, FaultInjector, FaultPlan, PowerStateId, StorageDevice};
use powadapt::io::AccessPattern;
use powadapt::io::{
    run_fleet, Arrivals, BreakerConfig, BreakerState, CircuitBreakerRouter, LeastLoadedRouter,
    OpenLoopSpec, Workload,
};
use powadapt::model::{ConfigPoint, PowerThroughputModel};
use powadapt::sim::{SimDuration, SimTime};

const GIB: u64 = 1 << 30;

fn mk(device: &str, ps: u8, power: f64, thr: f64) -> ConfigPoint {
    ConfigPoint::new(
        device,
        Workload::RandWrite,
        PowerStateId(ps),
        256 * 1024,
        64,
        power,
        thr,
    )
}

fn ssd2_model() -> PowerThroughputModel {
    PowerThroughputModel::from_points(
        "SSD2",
        vec![
            mk("SSD2", 0, 15.0, 3.3e9),
            mk("SSD2", 1, 11.7, 2.3e9),
            mk("SSD2", 2, 9.7, 1.6e9),
        ],
    )
    .unwrap()
}

fn hdd_model() -> PowerThroughputModel {
    PowerThroughputModel::from_points("HDD", vec![mk("HDD", 0, 4.5, 130e6)]).unwrap()
}

/// SSD2 wrapped in an injector with the given plan, plus a healthy HDD.
fn faulted_pair(plan: FaultPlan) -> AdaptiveController {
    let ssd = FaultInjector::seeded(Box::new(catalog::ssd2_d7_p5510(1)), plan, 77);
    AdaptiveController::new(
        vec![Box::new(ssd), Box::new(catalog::hdd_exos_7e2000(2))],
        vec![ssd2_model(), hdd_model()],
    )
    .expect("labels match through the injector")
}

fn stream(rate: f64, ms: u64, seed: u64) -> OpenLoopSpec {
    OpenLoopSpec {
        arrivals: Arrivals::Poisson { rate_iops: rate },
        block_size: 64 * 1024,
        read_fraction: 0.7,
        pattern: AccessPattern::Random,
        region: (0, 4 * GIB),
        duration: SimDuration::from_millis(ms),
        seed,
        zipf_theta: None,
    }
}

// ---------------------------------------------------------------- controller

#[test]
fn controller_degrades_instead_of_failing_when_headroom_exists() {
    // SSD2's admin plane is down for good; the HDD is healthy.
    let mut ctl =
        faulted_pair(FaultPlan::none().admin_outage(SimTime::ZERO, SimTime::from_secs(3600)));
    let plan = ctl
        .apply_budget(30.0)
        .expect("degraded plan, not an error, when the rest of the fleet fits");
    assert!(!plan.is_clean());
    assert_eq!(plan.degraded.len(), 1);
    assert_eq!(plan.degraded[0].device, "SSD2");
    assert!(plan.degraded[0].error.is_transient());
    assert_eq!(plan.quarantined, vec!["SSD2".to_string()]);
    // The compliant remainder (HDD) got an action; the SSD sat out.
    assert_eq!(plan.actions.len(), 1);
    assert_eq!(plan.actions[0].0, "HDD");
    // Fleet-wide compliance: quarantined draw is counted, not ignored.
    assert!(plan.expected_power_w <= 30.0);
    assert!(ctl.is_quarantined(0));
    assert!(!ctl.is_quarantined(1));
}

#[test]
fn retries_are_bounded_and_recorded_in_health() {
    let mut ctl =
        faulted_pair(FaultPlan::none().admin_outage(SimTime::ZERO, SimTime::from_secs(3600)))
            .with_retry_policy(RetryPolicy::with_max_attempts(4));
    let plan = ctl.apply_budget(30.0).expect("degraded plan");
    assert_eq!(plan.degraded[0].attempts, 4, "retry bound honored");
    assert_eq!(ctl.health(0).failures(), 4);
    assert!(ctl.health(0).error_rate() > 0.5, "EWMA reflects the storm");
    assert_eq!(ctl.health(1).failures(), 0);
}

#[test]
fn stuck_device_quarantined_then_readmitted_after_cooldown() {
    // Power-state transitions wedge for the first 10 ms of sim time only.
    let mut ctl =
        faulted_pair(FaultPlan::none().stuck_power_state(SimTime::ZERO, SimTime::from_millis(10)));
    // 15 W forces the SSD out of ps0 -> set_power_state -> Timeout.
    let plan = ctl.apply_budget(15.0).expect("degraded plan");
    assert!(!plan.is_clean());
    assert!(
        plan.expected_power_w <= 15.0,
        "compliant despite the refusal"
    );
    assert!(ctl.is_quarantined(0));

    // The fault window passes while the device sits out its cooldown.
    ctl.device_mut(0).advance_to(SimTime::from_millis(20));
    let during_cooldown = ctl.apply_budget(15.0).expect("still degraded");
    assert!(during_cooldown.quarantined.contains(&"SSD2".to_string()));

    // Cooldown (default 2 rounds) expires: the probe succeeds and the
    // fleet is clean again.
    let recovered = ctl.apply_budget(15.0).expect("probe succeeds");
    assert!(recovered.is_clean(), "plan: {recovered}");
    assert_eq!(recovered.actions.len(), 2);
    assert!(!ctl.is_quarantined(0));
}

#[test]
fn budget_below_remaining_floor_is_still_infeasible() {
    let mut ctl =
        faulted_pair(FaultPlan::none().admin_outage(SimTime::ZERO, SimTime::from_secs(3600)));
    // 6 W: even with the SSD quarantined, its idle draw (~5 W) plus the
    // HDD floor cannot fit. Degradation must not hide infeasibility.
    match ctl.apply_budget(6.0) {
        Err(ControlError::Infeasible { .. }) | Err(ControlError::Device(_)) => {}
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn mismatched_fleet_wiring_is_rejected_up_front() {
    let ssd = FaultInjector::seeded(Box::new(catalog::ssd2_d7_p5510(1)), FaultPlan::none(), 1);
    let err = AdaptiveController::new(
        vec![Box::new(ssd) as Box<dyn StorageDevice>],
        vec![hdd_model()],
    );
    assert!(matches!(err, Err(ControlError::MismatchedModels)));
}

// --------------------------------------------------------------------- fleet

fn faulted_fleet(plans: Vec<FaultPlan>) -> Vec<Box<dyn StorageDevice>> {
    plans
        .into_iter()
        .enumerate()
        .map(|(i, plan)| {
            let inner = Box::new(catalog::ssd3_d3_p4510(100 + i as u64));
            Box::new(FaultInjector::seeded(inner, plan, 500 + i as u64)) as Box<dyn StorageDevice>
        })
        .collect()
}

#[test]
fn fleet_fails_over_under_poisson_arrivals() {
    // One device rejects 30% of submissions; two are healthy.
    let mut devices = faulted_fleet(vec![
        FaultPlan::none().io_errors(0.3),
        FaultPlan::none(),
        FaultPlan::none(),
    ]);
    let mut router =
        CircuitBreakerRouter::new(LeastLoadedRouter::default(), BreakerConfig::default());
    let spec = stream(3_000.0, 300, 21);
    let expected = powadapt::io::ArrivalGen::new(&spec).unwrap().count() as u64;
    let r = run_fleet(
        &mut devices,
        &mut router,
        &spec,
        SimDuration::from_millis(20),
    )
    .expect("run completes despite injected faults");
    assert!(r.io_errors > 0, "faults were actually injected");
    // Every arrival is accounted for: served somewhere or dropped.
    assert_eq!(r.total.ios() + r.dropped, expected);
    // With two healthy devices, re-routing keeps drops at zero.
    assert_eq!(r.dropped, 0, "healthy devices absorb the failovers");
}

#[test]
fn breaker_quarantines_through_dropout_and_readmits() {
    // Device 0 drops out for [50 ms, 150 ms); the breaker must open during
    // the outage and close again once probes succeed.
    let mut devices = faulted_fleet(vec![
        FaultPlan::none().dropout(SimTime::from_millis(50), SimTime::from_millis(150)),
        FaultPlan::none(),
    ]);
    let cfg = BreakerConfig {
        failure_threshold: 2,
        cooldown: SimDuration::from_millis(120),
        probe_successes: 1,
    };
    let mut router = CircuitBreakerRouter::new(LeastLoadedRouter::default(), cfg);
    let spec = stream(2_000.0, 600, 33);
    let r = run_fleet(
        &mut devices,
        &mut router,
        &spec,
        SimDuration::from_millis(20),
    )
    .expect("run completes");
    assert_eq!(r.dropped, 0);
    let entered: Vec<BreakerState> = router.events().iter().map(|e| e.entered).collect();
    assert!(
        entered.contains(&BreakerState::Open),
        "breaker opened during the dropout: {entered:?}"
    );
    assert_eq!(
        router.state(0),
        BreakerState::Closed,
        "device re-admitted after recovery: {entered:?}"
    );
    // Traffic flowed to device 0 again after re-admission.
    assert!(r.per_device[0].routed > 0);
}

#[test]
fn fully_faulted_fleet_drops_instead_of_wedging() {
    let mut devices = faulted_fleet(vec![FaultPlan::none().io_errors(1.0)]);
    let mut router =
        CircuitBreakerRouter::new(LeastLoadedRouter::default(), BreakerConfig::default());
    let spec = stream(500.0, 100, 5);
    let expected = powadapt::io::ArrivalGen::new(&spec).unwrap().count() as u64;
    let r = run_fleet(
        &mut devices,
        &mut router,
        &spec,
        SimDuration::from_millis(20),
    )
    .expect("run still terminates");
    assert_eq!(r.total.ios(), 0);
    assert_eq!(r.dropped, expected, "every arrival dropped, none wedged");
}

#[test]
fn latency_spikes_inflate_the_tail_not_the_count() {
    let run = |plan: FaultPlan| {
        let mut devices = faulted_fleet(vec![plan]);
        let mut router = LeastLoadedRouter::default();
        let spec = stream(1_000.0, 300, 8);
        run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(20),
        )
        .expect("run completes")
    };
    let clean = run(FaultPlan::none());
    let spiked = run(FaultPlan::none().latency_spikes(0.2, SimDuration::from_millis(30)));
    assert_eq!(clean.total.ios(), spiked.total.ios(), "no completion lost");
    assert!(
        spiked.total.p99_latency_us() > clean.total.p99_latency_us(),
        "p99 {} -> {}",
        clean.total.p99_latency_us(),
        spiked.total.p99_latency_us()
    );
}
