//! Failure injection: the control plane must degrade loudly, not wedge,
//! when devices reject commands mid-flight — the §4.1 transition-safety
//! concern ("local failures of the storage system to control power can
//! safely be identified").

use std::collections::VecDeque;

use powadapt::core::{AdaptiveController, ControlError};
use powadapt::device::{
    DeviceClass, DeviceError, DeviceSpec, IoCompletion, IoRequest, PowerStateDesc,
    PowerStateId, Protocol, StandbyState, StorageDevice,
};
use powadapt::model::{ConfigPoint, PowerThroughputModel};
use powadapt::io::Workload;
use powadapt::sim::SimTime;

/// A scripted device: behaves like a trivial storage device but fails
/// control operations according to an injected script.
#[derive(Debug)]
struct FlakyDevice {
    spec: DeviceSpec,
    states: Vec<PowerStateDesc>,
    current: PowerStateId,
    now: SimTime,
    /// Pop-front script of errors for `set_power_state`; `None` = succeed.
    set_ps_script: VecDeque<Option<DeviceError>>,
    standby_script: VecDeque<Option<DeviceError>>,
    set_ps_calls: usize,
}

impl FlakyDevice {
    fn new(label: &str) -> Self {
        FlakyDevice {
            spec: DeviceSpec::new(label, "Flaky 9000", Protocol::Nvme, DeviceClass::Ssd, 1 << 40),
            states: vec![
                PowerStateDesc::new(PowerStateId(0), 25.0),
                PowerStateDesc::new(PowerStateId(1), 12.0),
            ],
            current: PowerStateId(0),
            now: SimTime::ZERO,
            set_ps_script: VecDeque::new(),
            standby_script: VecDeque::new(),
            set_ps_calls: 0,
        }
    }

    fn fail_next_set_ps(mut self, err: DeviceError) -> Self {
        self.set_ps_script.push_back(Some(err));
        self
    }

    fn fail_next_standby(mut self, err: DeviceError) -> Self {
        self.standby_script.push_back(Some(err));
        self
    }
}

impl StorageDevice for FlakyDevice {
    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn submit(&mut self, _req: IoRequest) -> Result<(), DeviceError> {
        Ok(())
    }
    fn next_event(&mut self) -> Option<SimTime> {
        None
    }
    fn advance_to(&mut self, t: SimTime) -> Vec<IoCompletion> {
        self.now = t;
        Vec::new()
    }
    fn power_w(&self) -> f64 {
        5.0
    }
    fn set_power_state(&mut self, ps: PowerStateId) -> Result<(), DeviceError> {
        self.set_ps_calls += 1;
        if let Some(Some(err)) = self.set_ps_script.pop_front() {
            return Err(err);
        }
        if self.states.iter().all(|d| d.id != ps) {
            return Err(DeviceError::UnknownPowerState(ps));
        }
        self.current = ps;
        Ok(())
    }
    fn power_state(&self) -> PowerStateId {
        self.current
    }
    fn power_states(&self) -> &[PowerStateDesc] {
        &self.states
    }
    fn request_standby(&mut self) -> Result<(), DeviceError> {
        if let Some(Some(err)) = self.standby_script.pop_front() {
            return Err(err);
        }
        Ok(())
    }
    fn request_wake(&mut self) -> Result<(), DeviceError> {
        Ok(())
    }
    fn standby_state(&self) -> StandbyState {
        StandbyState::Active
    }
    fn standby_power_w(&self) -> Option<f64> {
        Some(1.0)
    }
    fn inflight(&self) -> usize {
        0
    }
}

fn model_for(label: &str) -> PowerThroughputModel {
    let mk = |ps: u8, power: f64, thr: f64| {
        ConfigPoint::new(
            label,
            Workload::RandWrite,
            PowerStateId(ps),
            65536,
            64,
            power,
            thr,
        )
    };
    PowerThroughputModel::from_points(label, vec![mk(0, 15.0, 3e9), mk(1, 11.0, 2e9)])
        .unwrap()
}

#[test]
fn controller_surfaces_device_rejections_as_errors() {
    let flaky = FlakyDevice::new("F1").fail_next_set_ps(DeviceError::UnknownPowerState(
        PowerStateId(1),
    ));
    let mut ctl = AdaptiveController::new(vec![Box::new(flaky)], vec![model_for("F1")])
        .expect("labels match");
    // A budget that forces ps1: the injected failure must surface.
    match ctl.apply_budget(12.0) {
        Err(ControlError::Device(e)) => {
            assert!(matches!(e, DeviceError::UnknownPowerState(_)));
        }
        other => panic!("expected a device error, got {other:?}"),
    }
}

#[test]
fn controller_recovers_after_a_transient_failure() {
    let flaky = FlakyDevice::new("F1").fail_next_set_ps(DeviceError::UnknownPowerState(
        PowerStateId(9),
    ));
    let mut ctl = AdaptiveController::new(vec![Box::new(flaky)], vec![model_for("F1")])
        .expect("labels match");
    assert!(ctl.apply_budget(12.0).is_err(), "first attempt fails");
    // Retry: the script is exhausted, so the same budget now applies.
    let plan = ctl.apply_budget(12.0).expect("transient failure clears");
    assert!(plan.expected_power_w <= 12.0);
    assert_eq!(ctl.devices()[0].power_state(), PowerStateId(1));
}

#[test]
fn standby_rejection_surfaces_and_devices_stay_consistent() {
    let flaky = FlakyDevice::new("F1").fail_next_standby(DeviceError::StandbyUnsupported);
    let mut ctl = AdaptiveController::new(vec![Box::new(flaky)], vec![model_for("F1")])
        .expect("labels match");
    // A budget only standby can satisfy (floor: standby 1.0 < 2.0 < min op 11).
    match ctl.apply_budget(2.0) {
        Err(ControlError::Device(DeviceError::StandbyUnsupported)) => {}
        other => panic!("expected standby rejection, got {other:?}"),
    }
    // The device is still in a coherent state and a feasible budget works.
    let plan = ctl.apply_budget(20.0).expect("operating budget fine");
    assert!(plan.expected_power_w <= 20.0);
}

#[test]
fn mismatched_fleet_wiring_is_rejected_up_front() {
    let err = AdaptiveController::new(
        vec![Box::new(FlakyDevice::new("F1")) as Box<dyn StorageDevice>],
        vec![model_for("OTHER")],
    );
    assert!(matches!(err, Err(ControlError::MismatchedModels)));
}

#[test]
fn flaky_device_honors_the_trait_contract_otherwise() {
    // Sanity on the mock itself so the tests above test the controller,
    // not mock bugs.
    let mut d = FlakyDevice::new("F1");
    assert_eq!(d.power_state(), PowerStateId(0));
    d.set_power_state(PowerStateId(1)).expect("scripted success");
    assert_eq!(d.power_state(), PowerStateId(1));
    assert!(d.set_power_state(PowerStateId(7)).is_err());
    assert_eq!(d.set_ps_calls, 2);
}
