//! Observability determinism suite: recording must be strictly write-only.
//!
//! Two invariants are pinned here, both required by the tracing subsystem's
//! design contract (see DESIGN.md §6):
//!
//! 1. **Tracing never perturbs results.** Every golden figure summary is
//!    byte-identical with a full `TraceRecorder` installed — the same
//!    fixtures `tests/parallel_equivalence.rs` checks with the recorder
//!    off.
//! 2. **Event counts are deterministic.** The canonical traced scenario
//!    (fault-injected fleet sweep + closed-loop controller rounds) produces
//!    the committed per-kind event counts at every worker count, even
//!    though the interleaving of events in the ring is scheduling-
//!    dependent.

// Tests assert on exact expected values; unwraps and bit-exact float
// comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::fs;
use std::sync::{Arc, Mutex, PoisonError};

use powadapt::io::ParallelConfig;
use powadapt::obs::{self, TraceRecorder};
use powadapt_bench::golden::{
    cluster_eval_summary, cluster_eval_summary_checkpointed, figure_summary, golden_scale,
    goldens_dir, obs_events_summary, placement_eval_summary, placement_eval_summary_checkpointed,
    CLUSTER_FIXTURE, FIGURES, GOLDEN_SEED, OBS_FIXTURE, PLACEMENT_FIXTURE,
};

/// The process-global recorder slot is shared across the test threads of
/// this binary; every test that installs a recorder serializes on this.
static GLOBAL_SLOT: Mutex<()> = Mutex::new(());

fn committed_fixture(name: &str) -> String {
    let path = goldens_dir().join(format!("{name}.json"));
    fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             regenerate with: cargo run -p powadapt-bench --bin regen_goldens",
            path.display()
        )
    })
}

#[test]
fn goldens_are_byte_identical_with_full_tracing_on() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let rec = Arc::new(TraceRecorder::new(1 << 16));
    obs::install(rec.clone());
    let scale = golden_scale();
    for name in FIGURES {
        let traced = figure_summary(name, scale, GOLDEN_SEED, &ParallelConfig::sequential());
        assert_eq!(
            traced,
            committed_fixture(name),
            "{name}: figure output changed while tracing was enabled — \
             a recorder must be write-only"
        );
    }
    obs::uninstall();
    assert!(
        rec.log().total() > 0,
        "tracing was enabled but the figure runs recorded nothing"
    );
}

#[test]
fn obs_event_counts_match_fixture_at_every_worker_count() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let seq = obs_events_summary(&ParallelConfig::sequential());
    assert_eq!(
        seq,
        committed_fixture(OBS_FIXTURE),
        "{OBS_FIXTURE}: event counts drifted from the committed fixture.\n\
         If the change is intentional, regenerate the fixtures with\n\
         `cargo run -p powadapt-bench --bin regen_goldens` and commit them."
    );
    for workers in [2usize, 8] {
        let par = obs_events_summary(&ParallelConfig::with_workers(workers));
        assert_eq!(seq, par, "obs event counts diverged at {workers} workers");
    }
}

/// The cluster evaluation — power-tree rebalancing, multi-tenant routing,
/// per-rack counter tracks and rebalance-decision events all enabled — is
/// byte-identical to its committed golden at every worker count. This test
/// lives in this binary (not `parallel_equivalence.rs`) because the summary
/// installs the process-global recorder and must serialize on the slot.
#[test]
fn cluster_eval_matches_golden_at_every_worker_count() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let seq = cluster_eval_summary(&ParallelConfig::sequential());
    assert_eq!(
        seq,
        committed_fixture(CLUSTER_FIXTURE),
        "{CLUSTER_FIXTURE}: summary drifted from the committed fixture.\n\
         If the change is intentional, regenerate the fixtures with\n\
         `cargo run -p powadapt-bench --bin regen_goldens` and commit them."
    );
    for workers in [2usize, 8] {
        let par = cluster_eval_summary(&ParallelConfig::with_workers(workers));
        assert_eq!(
            seq, par,
            "cluster_eval summary diverged at {workers} workers"
        );
    }
}

/// Checkpoint/restore is invisible to results and traces: every cluster
/// cell runs to its midpoint, serializes the complete simulation state to
/// a sealed snapshot, is dropped, resumes from the bytes, and finishes —
/// and the summary (reports, per-node accounting, win ratios, *and*
/// per-kind event counts) is byte-identical to the same committed
/// `cluster_eval` fixture the uninterrupted runs are pinned to, at every
/// worker count.
#[test]
fn checkpointed_cluster_eval_matches_golden_at_every_worker_count() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let seq = cluster_eval_summary_checkpointed(&ParallelConfig::sequential());
    assert_eq!(
        seq,
        committed_fixture(CLUSTER_FIXTURE),
        "{CLUSTER_FIXTURE}: a mid-run checkpoint/restore changed the summary — \
         snapshot state is incomplete or restore perturbed the run"
    );
    for workers in [2usize, 8] {
        let par = cluster_eval_summary_checkpointed(&ParallelConfig::with_workers(workers));
        assert_eq!(
            seq, par,
            "checkpointed cluster_eval summary diverged at {workers} workers"
        );
    }
}

/// The placement evaluation — temperature-tracked extents, capacity-aware
/// routing, rate-limited background migration, HDD spin-down pins,
/// system-account energy attribution — is byte-identical to its committed
/// golden at every worker count.
#[test]
fn placement_eval_matches_golden_at_every_worker_count() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let seq = placement_eval_summary(&ParallelConfig::sequential());
    assert_eq!(
        seq,
        committed_fixture(PLACEMENT_FIXTURE),
        "{PLACEMENT_FIXTURE}: summary drifted from the committed fixture.\n\
         If the change is intentional, regenerate the fixtures with\n\
         `cargo run -p powadapt-bench --bin regen_goldens` and commit them."
    );
    for workers in [2usize, 8] {
        let par = placement_eval_summary(&ParallelConfig::with_workers(workers));
        assert_eq!(
            seq, par,
            "placement_eval summary diverged at {workers} workers"
        );
    }
}

/// Mid-migration checkpoints are invisible: every placement cell is
/// interrupted at its quarter point — between `MigrationStarted` and
/// `MigrationCompleted` for the temperature-driven arm, with copy IOs in
/// flight and destination capacity reserved — snapshotted, dropped,
/// resumed from the bytes, and finished. The summary equals the same
/// committed `placement_eval` fixture the uninterrupted runs pin, at
/// every worker count.
#[test]
fn checkpointed_placement_eval_matches_golden_at_every_worker_count() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let seq = placement_eval_summary_checkpointed(&ParallelConfig::sequential());
    assert_eq!(
        seq,
        committed_fixture(PLACEMENT_FIXTURE),
        "{PLACEMENT_FIXTURE}: a mid-migration checkpoint/restore changed the \
         summary — placement state is incomplete or restore perturbed the run"
    );
    for workers in [2usize, 8] {
        let par = placement_eval_summary_checkpointed(&ParallelConfig::with_workers(workers));
        assert_eq!(
            seq, par,
            "checkpointed placement_eval summary diverged at {workers} workers"
        );
    }
}

/// Observability state rides checkpoints too: the `EventLog`'s per-kind
/// counters survive a snapshot/restore across a simulated process
/// boundary — the restored log continues accumulating on top of the
/// checkpointed counts (no double-count, no reset), ending with exactly
/// the counts an uninterrupted run records.
#[test]
fn event_log_counters_survive_restore_across_checkpoint() {
    use powadapt::cluster::{oversubscribed_cluster, ClusterSim, SelectionPolicy};
    use powadapt::obs::EventLog;
    use powadapt::sim::SimDuration;
    use powadapt_snap::{Restore, SnapReader, SnapWriter, Snapshot};

    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let spec = || oversubscribed_cluster(SelectionPolicy::ModelDriven, GOLDEN_SEED);

    // Uninterrupted run under its own log: the reference counts.
    let full_log = Arc::new(EventLog::new(1 << 16));
    obs::install(full_log.clone());
    let full_report = ClusterSim::new(spec()).unwrap().finish().unwrap();
    obs::uninstall();

    // First half under a fresh log; checkpoint both sim and log.
    let first = Arc::new(EventLog::new(1 << 16));
    obs::install(first.clone());
    let mut sim = ClusterSim::new(spec()).unwrap();
    let mid = sim.start_time()
        + SimDuration::from_nanos(sim.end_time().duration_since(sim.start_time()).as_nanos() / 2);
    sim.run_to(mid).unwrap();
    let sim_snap = sim.snapshot().unwrap();
    let mut w = SnapWriter::new();
    first.write_state(&mut w).unwrap();
    let log_snap = w.into_payload();
    drop(sim);
    obs::uninstall();

    // "New process": restore the log state into a fresh EventLog, install
    // it, resume the sim, and finish.
    let mut restored = EventLog::new(1 << 16);
    let mut r = SnapReader::new(&log_snap);
    restored.read_state(&mut r).unwrap();
    r.finish().unwrap();
    let resumed_log = Arc::new(restored);
    obs::install(resumed_log.clone());
    let resumed_report = ClusterSim::resume(spec(), &sim_snap)
        .unwrap()
        .finish()
        .unwrap();
    obs::uninstall();

    assert_eq!(resumed_report, full_report);
    assert_eq!(resumed_log.counts(), full_log.counts());
    assert_eq!(resumed_log.total(), full_log.total());
}

#[test]
fn traced_scenario_exports_chrome_trace_and_flamegraph() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let rec = Arc::new(TraceRecorder::new(1 << 16));
    obs::install(rec.clone());
    let spec = powadapt::io::OpenLoopSpec {
        arrivals: powadapt::io::Arrivals::Poisson { rate_iops: 1_000.0 },
        block_size: 64 * 1024,
        read_fraction: 0.5,
        pattern: powadapt::io::AccessPattern::Random,
        region: (0, powadapt::device::GIB),
        duration: powadapt::sim::SimDuration::from_millis(100),
        seed: 5,
        zipf_theta: None,
    };
    let mut devices: Vec<Box<dyn powadapt::device::StorageDevice>> = (0..2)
        .map(|i| {
            Box::new(powadapt::device::catalog::ssd3_d3_p4510(300 + i))
                as Box<dyn powadapt::device::StorageDevice>
        })
        .collect();
    let mut router = powadapt::io::LeastLoadedRouter::default();
    powadapt::io::run_fleet(
        &mut devices,
        &mut router,
        &spec,
        powadapt::sim::SimDuration::from_millis(20),
    )
    .expect("traced fleet runs");
    obs::uninstall();

    let events = rec.log().snapshot();
    assert!(!events.is_empty());
    let json = obs::chrome_trace(&events);
    assert!(json.starts_with('{'), "chrome trace must be a JSON object");
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\": \"X\""), "expected complete spans");
    assert!(
        json.contains("\"ph\": \"C\""),
        "expected power counter track"
    );
    let folded = obs::collapsed_stacks(&events);
    assert!(
        folded.lines().all(|l| l
            .rsplit_once(' ')
            .is_some_and(|(_, n)| n.parse::<u64>().is_ok())),
        "collapsed stacks must end in an integer self-time"
    );
    assert!(!folded.is_empty(), "die spans should fold into stacks");
}
