//! Observability determinism suite: recording must be strictly write-only.
//!
//! Two invariants are pinned here, both required by the tracing subsystem's
//! design contract (see DESIGN.md §6):
//!
//! 1. **Tracing never perturbs results.** Every golden figure summary is
//!    byte-identical with a full `TraceRecorder` installed — the same
//!    fixtures `tests/parallel_equivalence.rs` checks with the recorder
//!    off.
//! 2. **Event counts are deterministic.** The canonical traced scenario
//!    (fault-injected fleet sweep + closed-loop controller rounds) produces
//!    the committed per-kind event counts at every worker count, even
//!    though the interleaving of events in the ring is scheduling-
//!    dependent.

// Tests assert on exact expected values; unwraps and bit-exact float
// comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::fs;
use std::sync::{Arc, Mutex, PoisonError};

use powadapt::io::ParallelConfig;
use powadapt::obs::{self, TraceRecorder};
use powadapt_bench::golden::{
    cluster_eval_summary, figure_summary, golden_scale, goldens_dir, obs_events_summary,
    CLUSTER_FIXTURE, FIGURES, GOLDEN_SEED, OBS_FIXTURE,
};

/// The process-global recorder slot is shared across the test threads of
/// this binary; every test that installs a recorder serializes on this.
static GLOBAL_SLOT: Mutex<()> = Mutex::new(());

fn committed_fixture(name: &str) -> String {
    let path = goldens_dir().join(format!("{name}.json"));
    fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             regenerate with: cargo run -p powadapt-bench --bin regen_goldens",
            path.display()
        )
    })
}

#[test]
fn goldens_are_byte_identical_with_full_tracing_on() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let rec = Arc::new(TraceRecorder::new(1 << 16));
    obs::install(rec.clone());
    let scale = golden_scale();
    for name in FIGURES {
        let traced = figure_summary(name, scale, GOLDEN_SEED, &ParallelConfig::sequential());
        assert_eq!(
            traced,
            committed_fixture(name),
            "{name}: figure output changed while tracing was enabled — \
             a recorder must be write-only"
        );
    }
    obs::uninstall();
    assert!(
        rec.log().total() > 0,
        "tracing was enabled but the figure runs recorded nothing"
    );
}

#[test]
fn obs_event_counts_match_fixture_at_every_worker_count() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let seq = obs_events_summary(&ParallelConfig::sequential());
    assert_eq!(
        seq,
        committed_fixture(OBS_FIXTURE),
        "{OBS_FIXTURE}: event counts drifted from the committed fixture.\n\
         If the change is intentional, regenerate the fixtures with\n\
         `cargo run -p powadapt-bench --bin regen_goldens` and commit them."
    );
    for workers in [2usize, 8] {
        let par = obs_events_summary(&ParallelConfig::with_workers(workers));
        assert_eq!(seq, par, "obs event counts diverged at {workers} workers");
    }
}

/// The cluster evaluation — power-tree rebalancing, multi-tenant routing,
/// per-rack counter tracks and rebalance-decision events all enabled — is
/// byte-identical to its committed golden at every worker count. This test
/// lives in this binary (not `parallel_equivalence.rs`) because the summary
/// installs the process-global recorder and must serialize on the slot.
#[test]
fn cluster_eval_matches_golden_at_every_worker_count() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let seq = cluster_eval_summary(&ParallelConfig::sequential());
    assert_eq!(
        seq,
        committed_fixture(CLUSTER_FIXTURE),
        "{CLUSTER_FIXTURE}: summary drifted from the committed fixture.\n\
         If the change is intentional, regenerate the fixtures with\n\
         `cargo run -p powadapt-bench --bin regen_goldens` and commit them."
    );
    for workers in [2usize, 8] {
        let par = cluster_eval_summary(&ParallelConfig::with_workers(workers));
        assert_eq!(
            seq, par,
            "cluster_eval summary diverged at {workers} workers"
        );
    }
}

#[test]
fn traced_scenario_exports_chrome_trace_and_flamegraph() {
    let _slot = GLOBAL_SLOT.lock().unwrap_or_else(PoisonError::into_inner);
    let rec = Arc::new(TraceRecorder::new(1 << 16));
    obs::install(rec.clone());
    let spec = powadapt::io::OpenLoopSpec {
        arrivals: powadapt::io::Arrivals::Poisson { rate_iops: 1_000.0 },
        block_size: 64 * 1024,
        read_fraction: 0.5,
        pattern: powadapt::io::AccessPattern::Random,
        region: (0, powadapt::device::GIB),
        duration: powadapt::sim::SimDuration::from_millis(100),
        seed: 5,
        zipf_theta: None,
    };
    let mut devices: Vec<Box<dyn powadapt::device::StorageDevice>> = (0..2)
        .map(|i| {
            Box::new(powadapt::device::catalog::ssd3_d3_p4510(300 + i))
                as Box<dyn powadapt::device::StorageDevice>
        })
        .collect();
    let mut router = powadapt::io::LeastLoadedRouter::default();
    powadapt::io::run_fleet(
        &mut devices,
        &mut router,
        &spec,
        powadapt::sim::SimDuration::from_millis(20),
    )
    .expect("traced fleet runs");
    obs::uninstall();

    let events = rec.log().snapshot();
    assert!(!events.is_empty());
    let json = obs::chrome_trace(&events);
    assert!(json.starts_with('{'), "chrome trace must be a JSON object");
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\": \"X\""), "expected complete spans");
    assert!(
        json.contains("\"ph\": \"C\""),
        "expected power counter track"
    );
    let folded = obs::collapsed_stacks(&events);
    assert!(
        folded.lines().all(|l| l
            .rsplit_once(' ')
            .is_some_and(|(_, n)| n.parse::<u64>().is_ok())),
        "collapsed stacks must end in an integer self-time"
    );
    assert!(!folded.is_empty(), "die spans should fold into stacks");
}
