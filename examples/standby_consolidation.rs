//! Power-aware IO redirection over a diurnal demand curve (§4,
//! cf. SRCMap): consolidate load onto few devices at night, wake devices
//! for the daily peak, and account the energy saved. Also shows the tiered
//! spin-down break-even analysis for an HDD tier.
//!
//! Run with: `cargo run --release --example standby_consolidation`

use powadapt::core::{
    AbsorptionProfile, RedirectionConfig, RedirectionPolicy, SpinProfile, TieringPolicy,
};
use powadapt::sim::SimDuration;

fn main() {
    // A 16-SSD storage server (the paper's §2 sizing example): each device
    // serves ~3 GB/s active at ~12 W, or idles in standby near 1 W.
    let cfg = RedirectionConfig {
        per_device_capacity_bps: 3.0e9,
        active_power_w: 12.0,
        standby_power_w: 1.0,
        wake_latency: SimDuration::from_millis(1),
        grow_threshold: 0.85,
        shrink_threshold: 0.55,
    };
    let mut policy = RedirectionPolicy::new(16, cfg).expect("valid config");

    // A stylized 24-hour demand curve in GB/s (one step per hour).
    let demand_gbs = [
        8.0, 6.0, 4.0, 3.0, 2.5, 3.0, 6.0, 12.0, 20.0, 28.0, 34.0, 38.0, 40.0, 38.0, 36.0, 34.0,
        30.0, 26.0, 24.0, 22.0, 18.0, 14.0, 12.0, 10.0,
    ];

    println!("Hourly consolidation over a diurnal demand curve (16 devices):");
    println!(
        "  {:>4} {:>9} {:>7} {:>6} {:>6} {:>8} {:>9}",
        "hour", "demand", "active", "woken", "slept", "util", "power"
    );
    let mut adaptive_energy_j = 0.0;
    let mut static_energy_j = 0.0;
    for (hour, gbs) in demand_gbs.iter().enumerate() {
        let d = policy.step(gbs * 1e9);
        adaptive_energy_j += d.power_w * 3600.0;
        static_energy_j += 16.0 * 12.0 * 3600.0;
        println!(
            "  {hour:>4} {:>6.1}GB/s {:>7} {:>6} {:>6} {:>7.0}% {:>7.1}W",
            gbs,
            d.active,
            d.woken,
            d.slept,
            100.0 * d.utilization,
            d.power_w
        );
    }
    println!(
        "\nEnergy: adaptive {:.1} kWh vs always-on {:.1} kWh -> {:.0}% saved",
        adaptive_energy_j / 3.6e6,
        static_energy_j / 3.6e6,
        100.0 * (1.0 - adaptive_energy_j / static_energy_j)
    );
    println!();

    // Tiered storage: when is it worth spinning the HDD tier down, and can
    // the SSD tier mask the spin-up by absorbing writes (§4)?
    let tiering = TieringPolicy::new(
        SpinProfile {
            idle_w: 3.76,
            standby_w: 1.1,
            down: SimDuration::from_millis(1500),
            down_w: 2.5,
            up: SimDuration::from_secs(6),
            up_w: 5.2,
        },
        AbsorptionProfile {
            absorb_bw_bps: 500e6,
            absorb_capacity_bytes: 16 * 1024 * 1024 * 1024,
        },
    )
    .expect("valid profiles");

    println!("HDD tier spin-down analysis (Exos 7E2000 profile):");
    println!("  break-even idle period: {}", tiering.break_even());
    for idle_secs in [5u64, 30, 300, 3600] {
        let period = SimDuration::from_secs(idle_secs);
        println!(
            "  idle {:>5} s: standby {} ({:+.1} J)",
            idle_secs,
            if tiering.should_standby(period) {
                "YES"
            } else {
                "no "
            },
            tiering.savings_j(period)
        );
    }
    println!();
    println!("Write absorption while the disk sleeps (SSD stages the writes):");
    for rate_mbs in [50.0, 100.0, 400.0] {
        let max = tiering.max_maskable_period(rate_mbs * 1e6);
        println!("  at {rate_mbs:>5.0} MB/s of writes: maskable for up to {max}");
    }
}
