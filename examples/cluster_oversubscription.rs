//! Cluster-scale power oversubscription, end to end: run the canonical
//! two-rack power tree (`cluster 34 W → row0 ×1.2 → rack0/rack1 →
//! enclosures`) under three tenants, once with the model-driven selector
//! rebalancing budgets down the tree every control round and once with a
//! naive uniform per-device cap, then compare what each policy serves at
//! the same cluster cap.
//!
//! Run with: `cargo run --release --example cluster_oversubscription`
//!
//! Fully traceable: `POWADAPT_TRACE=perfetto:cluster_trace.json` exports
//! per-rack power counter tracks and every rebalance decision as a
//! Perfetto/Chrome trace plus a metrics snapshot.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use powadapt::cluster::{oversubscribed_cluster, run_cluster, SelectionPolicy};
use powadapt::obs::TraceSession;

fn main() {
    // Install the recorder before any devices are built so construction-
    // time captures land in the trace; finished (and written out) at the
    // bottom of main.
    let trace = TraceSession::from_env();

    let seed = 42;
    println!("== Can a storage cluster be power adaptive? ==\n");

    let spec = oversubscribed_cluster(SelectionPolicy::ModelDriven, seed);
    let root = spec.tree.root_id();
    println!(
        "Power tree: {:.0} W cluster cap, row advertises {:.1} W to racks \
         whose caps sum to 37 W (oversubscription bet).",
        spec.tree.cap_w(root),
        spec.tree.advertised_w(powadapt::cluster::NodeId(1)),
    );
    println!(
        "Tenants: {} offered streams over {} enclosures.\n",
        spec.tenants.len(),
        spec.enclosures.len()
    );

    println!("-- model-driven: Fig 10 models pick configurations, tree rebalances --");
    let model = run_cluster(spec).expect("model-driven run");
    print!("{model}");
    println!();

    println!("-- uniform static: cluster cap split evenly, set once --");
    let uniform = run_cluster(oversubscribed_cluster(SelectionPolicy::UniformStatic, seed))
        .expect("uniform run");
    print!("{uniform}");
    println!();

    let win = model.aggregate_throughput_bps() / uniform.aggregate_throughput_bps();
    assert!(model.caps_respected() && uniform.caps_respected());
    assert!(win >= 1.3, "expected >= 1.3x, measured {win:.2}x");
    println!(
        "Verdict: model-driven oversubscription serves {win:.2}x the bytes of the \
         uniform cap ({:.1} vs {:.1} MiB/s) without exceeding any breaker,",
        model.aggregate_throughput_bps() / (1024.0 * 1024.0),
        uniform.aggregate_throughput_bps() / (1024.0 * 1024.0),
    );
    println!(
        "because an 8.5 W uniform share strands SSD2 (10 W floor) and PM1743 \
         (9 W floor) while the tree routes the same watts to where they buy bytes."
    );

    if let Err(e) = trace.finish() {
        eprintln!("could not write trace output: {e}");
    }
}
