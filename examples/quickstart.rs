//! Quickstart: run one fio-style job against a simulated enterprise SSD,
//! meter its power with the paper's rig, then cap the device and watch the
//! write throughput fall while reads would not.
//!
//! Run with: `cargo run --release --example quickstart`

use powadapt::device::{catalog, PowerStateId, KIB, MIB};
use powadapt::io::{run_experiment, ExperimentError, JobSpec, Workload};
use powadapt::sim::SimDuration;

fn main() -> Result<(), ExperimentError> {
    // The Intel D7-P5510 model: ps0 (25 W), ps1 (12 W), ps2 (10 W).
    println!("Device: Intel D7-P5510 (\"SSD2\"), power states:");
    let dev = catalog::ssd2_d7_p5510(7);
    for ps in powadapt::device::StorageDevice::power_states(&dev) {
        println!("  {}: cap {:.0} W", ps.id, ps.cap_w);
    }
    println!();

    // A sequential write job, fio-style: bs=1MiB, iodepth=64.
    let job = JobSpec::new(Workload::SeqWrite)
        .block_size(MIB)
        .io_depth(64)
        .runtime(SimDuration::from_millis(800))
        .size_limit(4 * 1024 * MIB)
        .ramp(SimDuration::from_millis(150))
        .seed(7);

    println!("{job} under each power state:");
    let mut baseline = None;
    for ps in 0..3u8 {
        let mut dev = catalog::ssd2_d7_p5510(7);
        powadapt::device::StorageDevice::set_power_state(&mut dev, PowerStateId(ps))
            .expect("catalog device implements ps0-ps2");
        let r = run_experiment(&mut dev, &job)?;
        let thr = r.io.throughput_mibs();
        let base = *baseline.get_or_insert(thr);
        println!(
            "  ps{ps}: {:>6.0} MiB/s ({:>3.0}% of ps0) at {:>5.2} W, p99 {:>7.0} us",
            thr,
            100.0 * thr / base,
            r.avg_power_w(),
            r.io.p99_latency_us()
        );
    }
    println!();

    // The same cap barely touches a read workload (the paper's asymmetry).
    let job = JobSpec::new(Workload::RandRead)
        .block_size(4 * KIB)
        .io_depth(64)
        .runtime(SimDuration::from_millis(800))
        .size_limit(4 * 1024 * MIB)
        .ramp(SimDuration::from_millis(150))
        .seed(7);
    println!("{job} under each power state:");
    let mut baseline = None;
    for ps in 0..3u8 {
        let mut dev = catalog::ssd2_d7_p5510(7);
        powadapt::device::StorageDevice::set_power_state(&mut dev, PowerStateId(ps))
            .expect("catalog device implements ps0-ps2");
        let r = run_experiment(&mut dev, &job)?;
        let thr = r.io.throughput_mibs();
        let base = *baseline.get_or_insert(thr);
        println!(
            "  ps{ps}: {:>6.0} MiB/s ({:>3.0}% of ps0) at {:>5.2} W, p99 {:>7.0} us",
            thr,
            100.0 * thr / base,
            r.avg_power_w(),
            r.io.p99_latency_us()
        );
    }
    println!();
    println!("Takeaway: power caps are nearly free for reads and expensive for writes —");
    println!("the asymmetry the paper's §4 policies exploit.");
    Ok(())
}
