//! Leveraging asymmetric IO (§4): measure how a power cap affects reads vs
//! writes on the simulated D7-P5510, derive an asymmetric-IO profile from
//! those measurements, and plan write segregation for a 16-device pool.
//!
//! Run with: `cargo run --release --example asymmetric_io`

use powadapt::core::{plan_asymmetric, AsymmetricProfile};
use powadapt::device::{catalog, PowerStateId, StorageDevice, MIB};
use powadapt::io::{run_experiment, JobSpec, Workload};
use powadapt::sim::SimDuration;

fn measure(workload: Workload, ps: u8, seed: u64) -> (f64, f64) {
    let mut dev = catalog::ssd2_d7_p5510(seed);
    dev.set_power_state(PowerStateId(ps)).expect("ps exists");
    let job = JobSpec::new(workload)
        .block_size(MIB)
        .io_depth(64)
        .runtime(SimDuration::from_millis(700))
        .size_limit(4 * 1024 * MIB)
        .ramp(SimDuration::from_millis(150))
        .seed(seed);
    let r = run_experiment(&mut dev, &job).expect("experiment runs");
    (r.io.throughput_bps(), r.avg_power_w())
}

fn main() {
    println!("Measuring the cap asymmetry on SSD2 (seq 1 MiB, QD 64)...");
    let (w_bw, w_pw) = measure(Workload::SeqWrite, 0, 42);
    let (r_bw_capped, r_pw_capped) = measure(Workload::SeqRead, 2, 42);
    let (r_bw_uncapped, r_pw_uncapped) = measure(Workload::SeqRead, 0, 42);
    println!(
        "  writes, uncapped: {:>6.2} GB/s @ {:>5.2} W",
        w_bw / 1e9,
        w_pw
    );
    println!(
        "  reads,  capped  : {:>6.2} GB/s @ {:>5.2} W (ps2)",
        r_bw_capped / 1e9,
        r_pw_capped
    );
    println!(
        "  reads,  uncapped: {:>6.2} GB/s @ {:>5.2} W (ps0)",
        r_bw_uncapped / 1e9,
        r_pw_uncapped
    );
    println!(
        "  -> capping costs reads only {:.1}% of throughput",
        100.0 * (1.0 - r_bw_capped / r_bw_uncapped)
    );
    println!();

    let profile = AsymmetricProfile {
        write_bw_bps: w_bw,
        write_power_w: w_pw,
        read_bw_capped_bps: r_bw_capped,
        read_power_capped_w: r_pw_capped,
        read_power_uncapped_w: r_pw_uncapped,
    };

    println!("Write-segregation plans for a 16-device pool:");
    println!(
        "  {:>10} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "writes", "reads", "w-devs", "r-devs", "power", "saved"
    );
    for (write_gbs, read_gbs) in [(3.0, 30.0), (6.0, 24.0), (12.0, 18.0), (20.0, 10.0)] {
        match plan_asymmetric(16, write_gbs * 1e9, read_gbs * 1e9, &profile) {
            Some(plan) => println!(
                "  {:>7.0}GB/s {:>7.0}GB/s {:>8} {:>8} {:>8.1}W {:>8.1}W",
                write_gbs,
                read_gbs,
                plan.write_devices,
                plan.read_devices,
                plan.power_w,
                plan.savings_w()
            ),
            None => println!(
                "  {write_gbs:>7.0}GB/s {read_gbs:>7.0}GB/s        does not fit 16 devices"
            ),
        }
    }
    println!();
    println!("Read-heavy mixes benefit most: the capped read devices run ~full speed");
    println!("at reduced power, while the few write devices stay uncapped.");
}
