//! Bring-your-own-device measurement session: build a custom SSD from a
//! component spec, calibrate the measurement rig against a known load, and
//! characterize the device exactly as the paper characterizes its drives.
//!
//! Run with: `cargo run --release --example measure_device`

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use powadapt::device::{
    DeviceClass, DeviceSpec, PowerStateDesc, PowerStateId, Protocol, Ssd, SsdConfig, GIB, KIB,
};
use powadapt::io::{run_experiment, JobSpec, Workload, PAPER_CHUNKS};
use powadapt::meter::MeasurementChain;
use powadapt::model::{pareto_frontier, ConfigPoint, PowerThroughputModel};
use powadapt::sim::units::Micros;
use powadapt::sim::{SimDuration, SimRng};

fn main() {
    // 1. Calibrate a measurement chain against a 10 W reference load, as
    //    the paper's rig is calibrated before a session.
    let mut rng = SimRng::seed_from(2024);
    let mut chain = MeasurementChain::paper_rig(12.0, &mut rng);
    let mut cal_rng = rng.fork();
    chain.calibrate(10.0, 500, &mut cal_rng);
    println!(
        "Rig calibrated: correction factor {:.5} (sub-1% chain error)",
        chain.correction()
    );
    println!();

    // 2. Describe a hypothetical next-gen drive: more dies, faster NAND,
    //    a deeper power-state ladder.
    let spec = DeviceSpec::new(
        "PROTO",
        "Prototype Gen5",
        Protocol::Nvme,
        DeviceClass::Ssd,
        4096 * GIB,
    );
    let cfg = SsdConfig {
        dies: 128,
        interface_bw: 7.0e9,
        program_op: SimDuration::from_micros(400),
        idle_w: 6.0,
        die_prog_w: 0.12,
        die_read_w: 0.06,
        power_states: vec![
            PowerStateDesc::new(PowerStateId(0), 30.0),
            PowerStateDesc::new(PowerStateId(1), 18.0),
            PowerStateDesc::new(PowerStateId(2), 13.0),
            PowerStateDesc::new(PowerStateId(3), 9.0),
        ],
        ..SsdConfig::default()
    };
    println!(
        "Prototype device: {} dies, {:.1} GB/s NAND program bandwidth, {} power states",
        cfg.dies,
        cfg.nand_program_bw() / 1e9,
        cfg.power_states.len()
    );

    // 3. Characterize: randwrite across chunk sizes and states at QD 32.
    let mut points = Vec::new();
    for ps in 0..4u8 {
        for &chunk in &PAPER_CHUNKS {
            let mut dev = Ssd::new(spec.clone(), cfg.clone(), 99);
            powadapt::device::StorageDevice::set_power_state(&mut dev, PowerStateId(ps))
                .expect("state exists");
            let job = JobSpec::new(Workload::RandWrite)
                .block_size(chunk)
                .io_depth(32)
                .runtime(SimDuration::from_millis(400))
                .size_limit(4 * GIB)
                .ramp(SimDuration::from_millis(100))
                .seed(99);
            let r = run_experiment(&mut dev, &job).expect("experiment runs");
            points.push(
                ConfigPoint::new(
                    "PROTO",
                    Workload::RandWrite,
                    PowerStateId(ps),
                    chunk,
                    32,
                    r.avg_power_w(),
                    r.io.throughput_bps(),
                )
                .with_latencies(
                    Micros::new(r.io.avg_latency_us()),
                    Micros::new(r.io.p99_latency_us()),
                ),
            );
        }
    }

    // 4. Model it.
    let model = PowerThroughputModel::from_points("PROTO", points).expect("non-empty sweep");
    println!("{model}");
    println!();
    println!("Pareto frontier (power -> throughput):");
    for p in pareto_frontier(model.points()) {
        println!(
            "  {:>5.2} W -> {:>7.0} MiB/s  (bs={:>4} KiB, {})",
            p.power_w(),
            p.throughput_bps() / (1024.0 * 1024.0),
            p.chunk() / KIB,
            p.power_state()
        );
    }
    println!();
    println!(
        "Power dynamic range of the prototype: {:.1}% of max power",
        100.0 * model.power_dynamic_range()
    );
}
