//! The whole paper in one closed-loop simulation: a heterogeneous fleet
//! serves a bursty open-loop workload while a power-budget schedule
//! (oversubscription dip, demand-response window, recovery) drives live
//! device control through the measured power-throughput models. Fleet
//! power is metered at 1 kHz throughout, so budget compliance is verified
//! by measurement rather than by expectation.
//!
//! Run with: `cargo run --release --example fleet_scenario`

use powadapt::core::{AdaptiveScenarioRouter, BudgetSchedule, PowerEventCause};
use powadapt::device::{catalog, StorageDevice, GIB, KIB};
use powadapt::io::{
    full_sweep, run_fleet, AccessPattern, Arrivals, OpenLoopSpec, SweepScale, Workload,
};
use powadapt::model::PowerThroughputModel;
use powadapt::sim::{SimDuration, SimTime};

fn model_for(label: &str, seed: u64) -> PowerThroughputModel {
    let factory = move || catalog::by_label(label, seed).expect("known label");
    let states: Vec<_> = factory().power_states().iter().map(|d| d.id).collect();
    let sweep = full_sweep(
        factory,
        &[Workload::RandWrite],
        &[64 * KIB, 256 * KIB],
        &[1, 16, 64],
        &states,
        SweepScale {
            runtime: SimDuration::from_millis(400),
            size_limit: GIB,
            ramp: SimDuration::from_millis(100),
        },
        seed,
    )
    .expect("sweep runs");
    PowerThroughputModel::from_sweep(&sweep)
        .into_iter()
        .next()
        .expect("one model per device")
}

fn main() {
    println!("Building per-device models (one sweep per device)...");
    let labels = ["SSD1", "SSD2", "860EVO"];
    let models: Vec<PowerThroughputModel> = labels.iter().map(|l| model_for(l, 42)).collect();
    for m in &models {
        println!("  {m}");
    }

    let mut devices: Vec<Box<dyn StorageDevice>> = vec![
        Box::new(catalog::ssd1_pm9a3(42)),
        Box::new(catalog::ssd2_d7_p5510(43)),
        Box::new(catalog::evo_860(44)),
    ];
    let standby_w: Vec<Option<f64>> = devices.iter().map(|d| d.standby_power_w()).collect();

    // The day's power script.
    let mut schedule = BudgetSchedule::new(30.0);
    schedule.push(
        SimTime::from_millis(600),
        16.0,
        PowerEventCause::Oversubscription,
    );
    schedule.push(
        SimTime::from_millis(1200),
        22.0,
        PowerEventCause::DemandResponse,
    );
    schedule.push(SimTime::from_millis(1800), 30.0, PowerEventCause::Recovery);
    println!("\nBudget schedule:");
    println!("  t=0.0s    30 W (initial)");
    for e in schedule.events() {
        println!("  t={}  {:.0} W ({})", e.at, e.available_w, e.cause);
    }

    // Bursty mixed traffic for 2.4 s.
    let spec = OpenLoopSpec {
        arrivals: Arrivals::OnOff {
            burst_rate_iops: 20_000.0,
            mean_on: SimDuration::from_millis(60),
            mean_off: SimDuration::from_millis(40),
        },
        block_size: 256 * KIB,
        read_fraction: 0.3,
        pattern: AccessPattern::Random,
        region: (0, 8 * GIB),
        duration: SimDuration::from_millis(2400),
        seed: 42,
        zipf_theta: None,
    };

    let mut router = AdaptiveScenarioRouter::new(schedule.clone(), models, standby_w);
    let result = run_fleet(
        &mut devices,
        &mut router,
        &spec,
        SimDuration::from_millis(50),
    )
    .expect("scenario runs");

    println!("\nMeasured fleet power vs budget (100 ms windows):");
    println!(
        "  {:>8} {:>10} {:>10} {:>9}",
        "t", "budget", "measured", "ok?"
    );
    let window = SimDuration::from_millis(100);
    let mut t = SimTime::ZERO;
    while t + window <= SimTime::from_millis(2400) {
        let seg = result.power.between(t, t + window);
        if seg.is_empty() {
            break;
        }
        let budget = schedule.budget_at(t + window);
        let measured = seg.mean();
        // Allow transitions a settling window after each event.
        let near_event = schedule
            .events()
            .iter()
            .any(|e| t < e.at + SimDuration::from_millis(200) && t + window > e.at);
        let ok = measured <= budget * 1.05 || near_event;
        println!(
            "  {:>7.1}s {:>8.0} W {:>8.1} W {:>9}",
            t.as_secs_f64(),
            budget,
            measured,
            if ok { "yes" } else { "OVER" }
        );
        t += window;
    }

    println!("\nOutcome:");
    println!(
        "  replans: {}, infeasible events: {}",
        router.replans(),
        router.infeasible_events()
    );
    println!("  served: {}", result.total);
    println!(
        "  reads:  avg {:.0} us, p99 {:.0} us | writes: avg {:.0} us, p99 {:.0} us",
        result.reads.avg_latency_us(),
        result.reads.p99_latency_us(),
        result.writes.avg_latency_us(),
        result.writes.p99_latency_us()
    );
    println!("  energy: {:.1} J over the scenario", result.energy_j);
}
