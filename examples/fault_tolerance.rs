//! Fault tolerance end to end: a fleet serves a Poisson stream while one
//! device drops out mid-run. The circuit breaker quarantines it, the
//! healthy devices absorb the failover, and the device is probed and
//! re-admitted once it recovers — all deterministic, so the whole incident
//! replays bit-for-bit from the seeds.
//!
//! Run with: `cargo run --release --example fault_tolerance`

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use powadapt::core::{AdaptiveController, RetryPolicy};
use powadapt::device::{catalog, FaultInjector, FaultPlan, PowerStateId, StorageDevice};
use powadapt::io::{
    run_fleet, AccessPattern, Arrivals, BreakerConfig, CircuitBreakerRouter, LeastLoadedRouter,
    OpenLoopSpec, Workload,
};
use powadapt::model::{ConfigPoint, PowerThroughputModel};
use powadapt::sim::{SimDuration, SimTime};

const GIB: u64 = 1 << 30;

fn main() {
    fleet_failover();
    degraded_control();
}

/// Part 1: the IO path. Device 0 is unreachable for [100 ms, 400 ms).
fn fleet_failover() {
    println!("== Fleet failover under a device dropout ==");
    let outage = FaultPlan::none()
        .io_errors(0.02)
        .dropout(SimTime::from_millis(100), SimTime::from_millis(400));
    let mut devices: Vec<Box<dyn StorageDevice>> = (0..3)
        .map(|i| {
            let inner = Box::new(catalog::ssd3_d3_p4510(100 + i));
            let plan = if i == 0 {
                outage.clone()
            } else {
                FaultPlan::none()
            };
            Box::new(FaultInjector::seeded(inner, plan, 7 + i)) as Box<dyn StorageDevice>
        })
        .collect();

    let cfg = BreakerConfig {
        failure_threshold: 3,
        cooldown: SimDuration::from_millis(150),
        probe_successes: 2,
    };
    let mut router = CircuitBreakerRouter::new(LeastLoadedRouter::default(), cfg);
    let spec = OpenLoopSpec {
        arrivals: Arrivals::Poisson { rate_iops: 4_000.0 },
        block_size: 64 * 1024,
        read_fraction: 0.7,
        pattern: AccessPattern::Random,
        region: (0, 4 * GIB),
        duration: SimDuration::from_millis(800),
        seed: 42,
        zipf_theta: None,
    };

    let result = run_fleet(
        &mut devices,
        &mut router,
        &spec,
        SimDuration::from_millis(20),
    )
    .expect("the run completes despite the outage");

    println!("breaker timeline (device 0 drops out at t=0.100s, back at t=0.400s):");
    for e in router.events() {
        println!(
            "  t={:.3}s  device {}  -> {}",
            e.at.as_secs_f64(),
            e.device,
            e.entered
        );
    }
    println!("{result}");
    for (i, d) in devices.iter().enumerate() {
        println!("  device {i} final breaker state: {}", router.state(i));
        let _ = d;
    }
    println!();
}

/// Part 2: the control path. The SSD's admin queue misbehaves while the
/// controller is trying to enforce a tightened budget.
fn degraded_control() {
    println!("== Degraded budget control with a refusing device ==");
    let mk = |device: &str, ps: u8, power: f64, thr: f64| {
        ConfigPoint::new(
            device,
            Workload::RandWrite,
            PowerStateId(ps),
            256 * 1024,
            64,
            power,
            thr,
        )
    };
    let models = vec![
        PowerThroughputModel::from_points(
            "SSD2",
            vec![
                mk("SSD2", 0, 15.0, 3.3e9),
                mk("SSD2", 1, 11.7, 2.3e9),
                mk("SSD2", 2, 9.7, 1.6e9),
            ],
        )
        .unwrap(),
        PowerThroughputModel::from_points("HDD", vec![mk("HDD", 0, 4.5, 130e6)]).unwrap(),
    ];
    // The SSD's power-state transitions wedge for the first 50 ms.
    let ssd = FaultInjector::seeded(
        Box::new(catalog::ssd2_d7_p5510(1)),
        FaultPlan::none().stuck_power_state(SimTime::ZERO, SimTime::from_millis(50)),
        9,
    );
    let mut ctl = AdaptiveController::new(
        vec![Box::new(ssd), Box::new(catalog::hdd_exos_7e2000(2))],
        models,
    )
    .expect("wiring matches")
    .with_retry_policy(RetryPolicy::with_max_attempts(3));

    println!("round 1: budget 15 W while the SSD is stuck");
    let plan = ctl.apply_budget(15.0).expect("degraded but compliant");
    print!("{plan}");
    println!(
        "  SSD health: error rate {:.2} after {} attempts",
        ctl.health(0).error_rate(),
        ctl.health(0).commands()
    );

    // Time passes; the wedge clears while the device sits out its cooldown.
    ctl.device_mut(0).advance_to(SimTime::from_millis(60));
    println!("round 2: still cooling down");
    print!("{}", ctl.apply_budget(15.0).expect("still degraded"));

    println!("round 3: probe succeeds, fleet is clean again");
    let recovered = ctl.apply_budget(15.0).expect("probe succeeds");
    print!("{recovered}");
    println!("  clean: {}", recovered.is_clean());
}
