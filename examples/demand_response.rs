//! Demand response, end to end: build power-throughput models for a small
//! heterogeneous fleet by sweeping the simulated devices, then drive the
//! adaptive controller through a day of power events — an oversubscription
//! emergency, a grid demand-response window, and recovery — while checking
//! the §4.1 deployment-safety rules.
//!
//! Run with: `cargo run --release --example demand_response`

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use powadapt::core::{AdaptiveController, BudgetSchedule, PowerDomain, PowerEventCause};
use powadapt::device::{catalog, StorageDevice, KIB};
use powadapt::io::{full_sweep, SweepScale, Workload};
use powadapt::model::PowerThroughputModel;
use powadapt::sim::{SimDuration, SimTime};

fn model_for(label: &str, seed: u64) -> PowerThroughputModel {
    // A trimmed sweep is enough to model the frontier: two shapes per state.
    let factory = || catalog::by_label(label, seed).expect("known label");
    let states: Vec<_> = factory().power_states().iter().map(|d| d.id).collect();
    let scale = SweepScale {
        runtime: SimDuration::from_millis(500),
        size_limit: 2 * 1024 * 1024 * 1024,
        ramp: SimDuration::from_millis(100),
    };
    let sweep = full_sweep(
        factory,
        &[Workload::RandWrite],
        &[64 * KIB, 256 * KIB],
        &[1, 64],
        &states,
        scale,
        seed,
    )
    .expect("sweep runs");
    PowerThroughputModel::from_sweep(&sweep)
        .into_iter()
        .next()
        .expect("one device, one model")
}

fn main() {
    // 1. Check the deployment is safe to roll out (§4.1): breakers hold the
    //    worst case, and the adaptive pilot is spread across domains.
    let rack = |name: &str| {
        PowerDomain::new(name, 60.0)
            .device(format!("{name}/ssd1"), 13.5, true)
            .device(format!("{name}/ssd2"), 15.1, true)
            .device(format!("{name}/hdd"), 5.3, true)
    };
    let row = PowerDomain::new("row-A", 400.0)
        .child(rack("rack-1"))
        .child(rack("rack-2"));
    let violations = row.check_safety(0.6);
    assert!(
        violations.is_empty(),
        "deployment must be safe: {violations:?}"
    );
    println!(
        "Deployment check: OK (worst case {:.0} W across {} racks, breakers hold)",
        row.worst_case_w(),
        row.children().len()
    );
    println!();

    // 2. Model the fleet by measurement (one rack's worth).
    println!("Building power-throughput models from sweeps...");
    let labels = ["SSD1", "SSD2", "HDD"];
    let models: Vec<PowerThroughputModel> = labels.iter().map(|l| model_for(l, 42)).collect();
    for m in &models {
        println!("  {m}");
    }
    println!();

    // 3. The power schedule: normal -> emergency -> demand response -> recovery.
    let mut schedule = BudgetSchedule::new(40.0);
    schedule.push(
        SimTime::from_secs(10),
        14.0,
        PowerEventCause::Oversubscription,
    );
    schedule.push(
        SimTime::from_secs(20),
        22.0,
        PowerEventCause::DemandResponse,
    );
    schedule.push(SimTime::from_secs(40), 40.0, PowerEventCause::Recovery);

    // 4. Drive the controller through the schedule.
    let devices: Vec<Box<dyn StorageDevice>> = vec![
        Box::new(catalog::ssd1_pm9a3(42)),
        Box::new(catalog::ssd2_d7_p5510(43)),
        Box::new(catalog::hdd_exos_7e2000(44)),
    ];
    let mut controller = AdaptiveController::new(devices, models).expect("labels line up");
    println!(
        "Fleet floor (everything standby / min-power): {:.1} W",
        controller.floor_w()
    );
    println!();

    let mut points: Vec<(SimTime, f64)> = vec![(SimTime::ZERO, schedule.initial_w())];
    points.extend(schedule.events().iter().map(|e| (e.at, e.available_w)));
    for (at, budget) in points {
        let cause = schedule
            .events()
            .iter()
            .find(|e| e.at == at)
            .map_or_else(|| "initial".to_string(), |e| e.cause.to_string());
        println!("t={at} budget {budget:.0} W ({cause}):");
        match controller.apply_budget(budget) {
            Ok(plan) => print!("{plan}"),
            Err(e) => println!("  cannot satisfy: {e}"),
        }
        println!();
    }

    println!("Note: during the 14 W emergency the HDD sleeps and the SSDs downshift;");
    println!("recovery restores ps0 everywhere and wakes the disk.");
}
