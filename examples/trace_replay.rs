//! Trace-driven what-if analysis: record a skewed production-like workload
//! to CSV, then replay the *same* trace under different power policies and
//! compare measured energy and latency — the workflow an operator would use
//! to evaluate power adaptivity before deploying it.
//!
//! Run with: `cargo run --release --example trace_replay`

use powadapt::core::{ExcesCachingRouter, RedirectionConfig};
use powadapt::device::{catalog, StorageDevice, GIB, KIB};
use powadapt::io::{
    run_fleet_trace, AccessPattern, ArrivalGen, ArrivalTrace, Arrivals, FleetResult,
    LeastLoadedRouter, OpenLoopSpec, Router,
};
use powadapt::sim::SimDuration;

fn fleet() -> Vec<Box<dyn StorageDevice>> {
    (0..4)
        .map(|i| Box::new(catalog::evo_860(50 + i as u64)) as Box<dyn StorageDevice>)
        .collect()
}

fn replay(name: &str, trace: &ArrivalTrace, router: &mut dyn Router) -> FleetResult {
    let mut devices = fleet();
    let r = run_fleet_trace(
        &mut devices,
        router,
        trace,
        7,
        SimDuration::from_millis(100),
    )
    .expect("trace replays");
    println!(
        "  {name:<22} {:>7.2} W avg  {:>8.1} J  reads p99 {:>7.0} us  ({} absorbed)",
        r.avg_power_w(),
        r.energy_j,
        if r.reads.ios() > 0 {
            r.reads.p99_latency_us()
        } else {
            r.absorbed.p99_latency_us()
        },
        r.absorbed.ios()
    );
    r
}

fn main() {
    // 1. Record a bursty, Zipf-skewed, read-mostly stream — and round-trip
    //    it through the CSV format a real trace would arrive in.
    let spec = OpenLoopSpec {
        arrivals: Arrivals::OnOff {
            burst_rate_iops: 4_000.0,
            mean_on: SimDuration::from_millis(80),
            mean_off: SimDuration::from_millis(120),
        },
        block_size: 16 * KIB,
        read_fraction: 0.9,
        pattern: AccessPattern::Random,
        region: (0, 2 * GIB),
        duration: SimDuration::from_secs(3),
        seed: 7,
        zipf_theta: Some(1.05),
    };
    let recorded =
        ArrivalTrace::record(ArrivalGen::new(&spec).expect("valid spec")).expect("ordered");
    let mut csv = Vec::new();
    recorded.write_csv(&mut csv).expect("serializes");
    let trace = ArrivalTrace::from_csv(csv.as_slice()).expect("parses back");
    println!(
        "Recorded trace: {} requests, {:.1} MiB, {:.2} s ({} bytes of CSV)",
        trace.len(),
        trace.total_bytes() as f64 / (1024.0 * 1024.0),
        trace.duration().as_secs_f64(),
        csv.len()
    );
    println!();

    // 2. Replay under three configurations.
    println!("Replaying the identical trace under three policies (4x 860 EVO):");
    let mut baseline = LeastLoadedRouter::default();
    let base = replay("baseline", &trace, &mut baseline);

    let cfg = RedirectionConfig {
        per_device_capacity_bps: 0.4e9,
        active_power_w: 2.0,
        standby_power_w: 0.17,
        wake_latency: SimDuration::from_millis(400),
        grow_threshold: 0.85,
        shrink_threshold: 0.6,
    };
    let mut consolidating = powadapt::core::ConsolidatingRouter::new(4, cfg).expect("valid config");
    let cons = replay("consolidation", &trace, &mut consolidating);

    let mut cached = ExcesCachingRouter::new(
        powadapt::core::ConsolidatingRouter::new(4, cfg).expect("valid config"),
        16 * KIB,
        8_192, // 128 MiB of cache
        SimDuration::from_micros(5),
    );
    let both = replay("consolidation+cache", &trace, &mut cached);

    println!();
    println!(
        "Energy vs baseline: consolidation {:.0}%, consolidation+cache {:.0}% (hit rate {:.0}%)",
        100.0 * (1.0 - cons.energy_j / base.energy_j),
        100.0 * (1.0 - both.energy_j / base.energy_j),
        100.0 * cached.hit_rate()
    );
    println!("Same requests, same timing — the differences are pure policy.");
}
