//! Tracing a fleet incident end to end: install a [`TraceRecorder`], run a
//! fault-injected fleet under closed-loop budget control, then read the
//! story back out of the trace — the controller's decision log as a table,
//! per-kind event counts, derived latency/power metrics, and the sim-time
//! flamegraph.
//!
//! Run with: `cargo run --release --example trace_fleet`
//!
//! The same instrumentation drives the figure binaries: set
//! `POWADAPT_TRACE=perfetto:out.json` on any of them (or pass
//! `--trace-out out.json`) and load the result at <https://ui.perfetto.dev>.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::sync::Arc;

use powadapt::core::AdaptiveController;
use powadapt::device::{catalog, FaultInjector, FaultPlan, PowerStateId, StorageDevice};
use powadapt::io::{
    run_fleet, AccessPattern, Arrivals, BreakerConfig, CircuitBreakerRouter, LeastLoadedRouter,
    OpenLoopSpec, Workload,
};
use powadapt::model::{ConfigPoint, PowerThroughputModel};
use powadapt::obs::{self, span_totals, EventKind, TraceRecorder};
use powadapt::sim::{SimDuration, SimTime};

const GIB: u64 = 1 << 30;

fn main() {
    // One recorder for the whole process: devices, routers, the meter rig,
    // and the controller all capture it when they are constructed.
    let rec = Arc::new(TraceRecorder::new(1 << 20));
    obs::install(rec.clone());

    traced_outage();
    traced_control_rounds();

    obs::uninstall();
    report(&rec);
}

/// A three-SSD fleet serving a Poisson stream while device 0 drops out for
/// [80 ms, 280 ms); the circuit breaker quarantines and re-admits it.
fn traced_outage() {
    let outage = FaultPlan::none()
        .io_errors(0.02)
        .dropout(SimTime::from_millis(80), SimTime::from_millis(280));
    let mut devices: Vec<Box<dyn StorageDevice>> = (0..3)
        .map(|i| {
            let inner = Box::new(catalog::ssd3_d3_p4510(600 + i));
            let plan = if i == 0 {
                outage.clone()
            } else {
                FaultPlan::none()
            };
            Box::new(FaultInjector::seeded(inner, plan, 17 + i)) as Box<dyn StorageDevice>
        })
        .collect();
    let mut router = CircuitBreakerRouter::new(
        LeastLoadedRouter::default(),
        BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_millis(100),
            probe_successes: 2,
        },
    );
    let spec = OpenLoopSpec {
        arrivals: Arrivals::Poisson { rate_iops: 3_000.0 },
        block_size: 64 * 1024,
        read_fraction: 0.7,
        pattern: AccessPattern::Random,
        region: (0, 4 * GIB),
        duration: SimDuration::from_millis(500),
        seed: 23,
        zipf_theta: None,
    };
    let result = run_fleet(
        &mut devices,
        &mut router,
        &spec,
        SimDuration::from_millis(20),
    )
    .expect("the run completes despite the outage");
    println!("== Fault-injected fleet run (fully traced) ==");
    println!("{result}");
}

/// A mixed SSD+HDD fleet walked through three budget rounds, so the trace
/// carries a controller decision log.
fn traced_control_rounds() {
    let mk = |device: &str, ps: u8, power: f64, thr: f64| {
        ConfigPoint::new(
            device,
            Workload::RandWrite,
            PowerStateId(ps),
            256 * 1024,
            64,
            power,
            thr,
        )
    };
    let models = vec![
        PowerThroughputModel::from_points(
            "SSD2",
            vec![
                mk("SSD2", 0, 15.0, 3.3e9),
                mk("SSD2", 1, 11.7, 2.3e9),
                mk("SSD2", 2, 9.7, 1.6e9),
            ],
        )
        .unwrap(),
        PowerThroughputModel::from_points("HDD", vec![mk("HDD", 0, 4.5, 130e6)]).unwrap(),
    ];
    let mut ctl = AdaptiveController::new(
        vec![
            Box::new(catalog::ssd2_d7_p5510(31)),
            Box::new(catalog::hdd_exos_7e2000(32)),
        ],
        models,
    )
    .expect("wiring matches");
    for budget_w in [30.0, 14.0, 30.0] {
        ctl.apply_budget(budget_w).expect("budget is feasible");
    }
}

/// Everything below reads the finished trace; nothing here could have
/// influenced the run.
fn report(rec: &TraceRecorder) {
    let events = rec.log().snapshot();

    println!("\n== Controller decision log ==");
    println!(
        "{:>10}  {:>8}  {:>10}  {:>10}  {:>9}  {:>11}  degraded",
        "t (ms)", "budget W", "measured W", "expected W", "thr GiB/s", "quarantined"
    );
    for e in &events {
        if let EventKind::ControllerDecision(d) = &e.kind {
            println!(
                "{:>10.1}  {:>8.1}  {:>10.2}  {:>10.2}  {:>9.2}  {:>11}  {}",
                e.at.as_secs_f64() * 1e3,
                d.budget_w,
                d.measured_w,
                d.expected_power_w,
                d.expected_throughput_bps / f64::from(1u32 << 30),
                d.quarantined.len(),
                if d.degraded.is_empty() {
                    "-".to_string()
                } else {
                    d.degraded.join(",")
                }
            );
        }
    }

    println!("\n== Event counts ==");
    for (kind, n) in rec.log().counts() {
        println!("{kind:>24}  {n}");
    }
    println!(
        "{:>24}  {} ({} evicted from ring)",
        "total",
        rec.log().total(),
        rec.log().dropped()
    );

    let snap = rec.metrics().snapshot();
    println!("\n== Derived metrics ==");
    for h in &snap.histograms {
        println!(
            "{}: n={} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
            h.name, h.count, h.p50, h.p95, h.p99, h.max
        );
    }

    println!("\n== Sim-time profile (top spans by self time) ==");
    let mut totals: Vec<_> = span_totals(&events).into_iter().collect();
    totals.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));
    for (label, stat) in totals.iter().take(8) {
        println!(
            "{label:>28}  count={:<6} self={:.3} ms  total={:.3} ms",
            stat.count,
            stat.self_ns as f64 / 1e6,
            stat.total_ns as f64 / 1e6
        );
    }
    println!(
        "\n(full exports: POWADAPT_TRACE=perfetto:out.json on any figure binary \
         writes the Chrome trace, metrics snapshot, and collapsed stacks)"
    );
}
