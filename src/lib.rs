//! # powadapt — power-adaptive storage, simulated end to end
//!
//! A full Rust reproduction of *"Can Storage Devices be Power Adaptive?"*
//! (Xie et al., HotStorage '24). The paper is a hardware measurement study;
//! this suite replaces the hardware with calibrated discrete-event device
//! simulators and rebuilds the entire pipeline on top:
//!
//! | Layer | Crate | What it models |
//! |-------|-------|----------------|
//! | [`sim`] | `powadapt-sim` | event queue, virtual time, deterministic RNG, rolling averages |
//! | [`obs`] | `powadapt-obs` | sim-time event tracing, metrics registry, Perfetto/flamegraph export |
//! | [`device`] | `powadapt-device` | the paper's SSDs and HDD: NAND dies, write buffers, power-cap governors, ALPM standby, spin-up/down |
//! | [`meter`] | `powadapt-meter` | the shunt → amplifier → 24-bit-ADC rig sampling at 1 kHz |
//! | [`io`] | `powadapt-io` | fio-like jobs, the experiment runner, parameter sweeps |
//! | [`model`] | `powadapt-model` | power-throughput models, Pareto frontiers, budget solvers |
//! | [`core`] | `powadapt-core` | the §4 policies and the adaptive control loop |
//! | [`cluster`] | `powadapt-cluster` | the power tree: oversubscribed caps, multi-tenant workloads, budget rebalancing |
//!
//! # Quick start
//!
//! ```
//! use powadapt::device::{catalog, KIB};
//! use powadapt::io::{run_experiment, JobSpec, Workload};
//! use powadapt::sim::SimDuration;
//!
//! // Run the paper's Figure 2 workload on the simulated Samsung PM9A3.
//! let mut ssd = catalog::ssd1_pm9a3(42);
//! let job = JobSpec::new(Workload::RandWrite)
//!     .block_size(256 * KIB)
//!     .io_depth(64)
//!     .runtime(SimDuration::from_millis(100))
//!     .size_limit(256 * 1024 * KIB);
//! let result = run_experiment(&mut ssd, &job)?;
//! println!("{:.2} GiB/s at {:.2} W", result.io.throughput_bps() / (1 << 30) as f64,
//!          result.avg_power_w());
//! # Ok::<(), powadapt::io::ExperimentError>(())
//! ```
//!
//! See the `examples/` directory for the paper's headline scenarios:
//! demand-response control, write segregation, and standby consolidation.

#![warn(missing_docs)]
// Tests assert on exact expected values: unwraps and bit-exact float
// comparisons are the point there, not a hazard (see workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub use powadapt_cluster as cluster;
pub use powadapt_core as core;
pub use powadapt_device as device;
pub use powadapt_io as io;
pub use powadapt_meter as meter;
pub use powadapt_model as model;
pub use powadapt_obs as obs;
pub use powadapt_sim as sim;
pub use powadapt_snap as snap;
